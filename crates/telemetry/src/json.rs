//! A minimal JSON value, parser, and writer.
//!
//! The telemetry exporters, the simulator report codec, and the harness
//! result store all serialize to JSON lines, and the workspace builds
//! offline, so this module hand-rolls the small JSON subset they need:
//! objects, arrays, strings, numbers, booleans, and null. Numbers keep
//! their raw token so `u64` counters round-trip exactly (no detour
//! through `f64`).

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw token for lossless integer round-trips.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as an ordered key/value list (no duplicate handling).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Wraps an unsigned counter.
    pub fn u64(v: u64) -> Value {
        Value::Num(v.to_string())
    }

    /// Wraps a float. Non-finite values become `null` (JSON has no NaN).
    pub fn f64(v: f64) -> Value {
        if v.is_finite() {
            Value::Num(format!("{v:?}"))
        } else {
            Value::Null
        }
    }

    /// Wraps a string.
    pub fn str(s: &str) -> Value {
        Value::Str(s.to_string())
    }

    /// The value under `key`, when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, when `self` is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(xs) => Some(xs),
            _ => None,
        }
    }

    /// The string contents, when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, when `self` is an integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as `f64`; `null` reads as NaN (the writer's encoding
    /// of non-finite floats).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => write_escaped(s, out),
            Value::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax
    /// error, or trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if raw.parse::<f64>().is_err() {
            return Err(format!("bad number {raw:?} at byte {start}"));
        }
        Ok(Value::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not needed for the
                            // store's ASCII field names; reject them.
                            let c =
                                char::from_u32(cp).ok_or_else(|| format!("bad \\u{hex} escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one multi-byte UTF-8 scalar. Decode from a
                    // bounded window — validating the whole remaining
                    // input per character is quadratic on large files.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(chunk) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()]).unwrap()
                        }
                        Err(e) => return Err(e.to_string()),
                    };
                    let c = valid.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(xs));
        }
        loop {
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(xs));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "2.5", "\"hi\""] {
            let v = Value::parse(text).unwrap();
            assert_eq!(v.render(), text, "{text}");
        }
    }

    #[test]
    fn u64_counters_round_trip_exactly() {
        let big = u64::MAX - 3;
        let v = Value::parse(&Value::u64(big).render()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn nested_structure_round_trips() {
        let text = r#"{"a":[1,2.5,null],"b":{"c":"x\ny","d":true}}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.render(), text);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::f64(f64::NAN).render(), "null");
        assert_eq!(Value::f64(f64::INFINITY).render(), "null");
        assert!(Value::parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::str("quote \" slash \\ tab \t nl \n ctl \u{1}");
        let back = Value::parse(&v.render()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn multibyte_strings_round_trip() {
        // Exercises the bounded UTF-8 decode path: 2-, 3-, and 4-byte
        // scalars, including one flush against the end of input.
        let v = Value::str("é ✓ 🚀");
        let back = Value::parse(&v.render()).unwrap();
        assert_eq!(back, v);
        let tail = Value::parse("\"🚀\"").unwrap();
        assert_eq!(tail.as_str(), Some("🚀"));
    }

    #[test]
    fn large_documents_parse_in_linear_time() {
        // A ~3 MB array of small string-bearing objects; quadratic
        // string scanning would turn this into minutes.
        let mut doc = String::from("[");
        for i in 0..40_000 {
            if i > 0 {
                doc.push(',');
            }
            doc.push_str(r#"{"name":"pipeline stage","ph":"X","ts":"#);
            doc.push_str(&i.to_string());
            doc.push('}');
        }
        doc.push(']');
        let v = Value::parse(&doc).unwrap();
        assert_eq!(v.as_arr().unwrap().len(), 40_000);
    }

    #[test]
    fn syntax_errors_are_reported() {
        for text in ["{", "[1,", "tru", "\"open", "{\"a\" 1}", "1 2", "{'a':1}"] {
            assert!(Value::parse(text).is_err(), "{text} should fail");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.render(), r#"{"a":[1,2]}"#);
    }
}
