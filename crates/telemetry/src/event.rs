//! Pipeline events and the preallocated ring that stores them.
//!
//! The hot loop never allocates: the ring's backing vector is sized
//! once at construction, and a full ring overwrites its oldest entry
//! (counting the loss) rather than growing.

/// One pipeline stage, as seen by the event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipeStage {
    /// A fetch group left the front end (trace cache or icache).
    Fetch,
    /// Rename accepted the instruction; it waits for a dispatch port.
    Dispatch,
    /// The instruction sat in a reservation station awaiting operands.
    Issue,
    /// The functional unit executed the instruction.
    Execute,
    /// The instruction completed and waited for in-order retirement.
    Retire,
}

impl PipeStage {
    /// The stable lowercase name used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            PipeStage::Fetch => "fetch",
            PipeStage::Dispatch => "dispatch",
            PipeStage::Issue => "issue",
            PipeStage::Execute => "execute",
            PipeStage::Retire => "retire",
        }
    }
}

/// One time span in the pipeline: stage `stage` of instruction `seq`
/// occupied cycles `[ts, ts + dur)` on cluster `cluster`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Start cycle.
    pub ts: u64,
    /// Duration in cycles (0 for instantaneous stages).
    pub dur: u64,
    /// Which stage this span covers.
    pub stage: PipeStage,
    /// Retirement sequence number (0 for fetch-group events).
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// Executing cluster, or [`FETCH_LANE`] for front-end events.
    pub cluster: u8,
}

/// The `cluster` tag used for front-end (fetch) events, which are not
/// bound to any execution cluster.
pub const FETCH_LANE: u8 = u8::MAX;

/// The per-retired-instruction stage timestamps the engine hands to a
/// probe. The recorder expands this into [`SpanEvent`]s; keeping the
/// expansion out of the engine keeps the probe call a single pass-by-
/// reference even when sampling drops the instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstTimeline {
    /// Global dynamic sequence number (dense, program order).
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// Cluster the instruction executed on.
    pub cluster: u8,
    /// Cycle rename accepted the instruction into the window.
    pub renamed_at: u64,
    /// Cycle the instruction won a dispatch port into its RS.
    pub dispatched_at: u64,
    /// Cycle execution began.
    pub exec_start: u64,
    /// Cycle the result completed.
    pub complete_at: u64,
    /// Cycle the instruction retired.
    pub retired_at: u64,
}

/// One inter-cluster operand forward, rendered into Chrome traces as a
/// flow (`"s"`/`"f"`) arrow from the producer's completion on its
/// cluster lane to the value's arrival on the consumer's lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEvent {
    /// Unique flow id within one trace file.
    pub id: u64,
    /// Cycle the producer's result completed (arrow tail).
    pub from_ts: u64,
    /// Cluster the producer executed on.
    pub from_cluster: u8,
    /// Cycle the value arrived at the consumer's cluster (arrow head).
    pub to_ts: u64,
    /// Cluster the consumer executed on.
    pub to_cluster: u8,
    /// The consumer's sequence number (ties the arrow to its spans).
    pub seq: u64,
    /// The consumer's program counter.
    pub pc: u64,
}

/// A fixed-capacity overwrite-oldest ring of [`SpanEvent`]s.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<SpanEvent>,
    cap: usize,
    /// Next write slot once the ring has wrapped.
    next: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events. The backing storage is
    /// reserved up front; a zero capacity ring discards everything.
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            next: 0,
            dropped: 0,
        }
    }

    /// Records `ev`, overwriting the oldest event when full.
    pub fn push(&mut self, ev: SpanEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events lost to overwriting (or to a zero-capacity ring).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held events, oldest first.
    pub fn to_vec(&self) -> Vec<SpanEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> SpanEvent {
        SpanEvent {
            ts,
            dur: 1,
            stage: PipeStage::Execute,
            seq: ts,
            pc: 0x40,
            cluster: 0,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = EventRing::new(3);
        for t in 0..5 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let ts: Vec<u64> = r.to_vec().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn ring_under_capacity_is_in_order() {
        let mut r = EventRing::new(8);
        for t in 0..4 {
            r.push(ev(t));
        }
        assert_eq!(r.dropped(), 0);
        let ts: Vec<u64> = r.to_vec().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_capacity_ring_discards_everything() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
        assert!(r.to_vec().is_empty());
    }
}
