//! Typed counters and fixed-bucket histograms.
//!
//! The registry is deliberately closed: every counter and histogram the
//! pipeline can report is an enum variant, so probe call sites are
//! checked at compile time, lookups are array indexing (no hashing in
//! the hot loop), and exporters can enumerate everything without a
//! schema side-channel.

use crate::json::Value;

/// A named monotonic counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Simulated cycles elapsed.
    Cycles,
    /// Instructions retired.
    Retired,
    /// Fetch groups delivered to rename (trace cache or icache).
    FetchGroups,
    /// Instructions delivered from the trace cache.
    InstsFromTc,
    /// Instructions delivered from the instruction cache.
    InstsFromIcache,
    /// Traces constructed by the fill unit.
    TracesBuilt,
    /// Instructions packed into constructed traces.
    InstsInTraces,
    /// Conditional branches retired.
    CondBranches,
    /// Conditional branches mispredicted.
    CondMispredicts,
    /// Direction-predictor lookups (including trace-cache multi-branch
    /// lookups that never reach retire).
    PredictorLookups,
    /// Pipeline events recorded into the ring (post-sampling).
    EventsSampled,
    /// Pipeline events overwritten because the ring was full.
    EventsDropped,
    /// Instructions whose execution completed (scheduler completion
    /// events; equals the completion-wheel pops on the event path).
    SchedCompletions,
    /// Source operands resolved by a producer's completion (wakeup
    /// fan-out; one per `Waiting → Forwarded` transition).
    SchedWakeups,
    /// Retire-progress watchdog trips (a simulation aborted with
    /// `SimError::Livelock` instead of spinning forever).
    WatchdogTrips,
    /// Harness jobs whose final outcome was a failure (after retries).
    HarnessJobFailures,
    /// Harness job re-executions after a transient failure.
    HarnessRetries,
    /// Result-store lines quarantined as corrupt at load time.
    StoreQuarantined,
    /// Requests accepted by the sweep service (`ctcp serve`).
    ServeRequests,
    /// Service requests that had to queue behind a running batch.
    ServeQueued,
    /// Sweep cells the service answered from its warm shared cache.
    ServeCacheHits,
    /// Service requests rejected with 503 because the shared cell
    /// queue was at its admission limit.
    ServeRejected,
    /// Queued (not yet running) cells dropped because their request's
    /// client disconnected before they were scheduled.
    ServeCancelledCells,
    /// Journaled requests re-enqueued when the daemon restarted.
    ServeJournalReplayed,
    /// Scheduler workers respawned with a fresh arena after a panic.
    ServeWorkerRespawns,
    /// Cells quarantined (`CellPoisoned`) after repeated panics.
    ServeCellsPoisoned,
    /// Client streams re-attached to a live or journaled request via
    /// a resume token.
    ServeResumedStreams,
}

impl Counter {
    /// Every counter, in export order.
    pub const ALL: [Counter; 27] = [
        Counter::Cycles,
        Counter::Retired,
        Counter::FetchGroups,
        Counter::InstsFromTc,
        Counter::InstsFromIcache,
        Counter::TracesBuilt,
        Counter::InstsInTraces,
        Counter::CondBranches,
        Counter::CondMispredicts,
        Counter::PredictorLookups,
        Counter::EventsSampled,
        Counter::EventsDropped,
        Counter::SchedCompletions,
        Counter::SchedWakeups,
        Counter::WatchdogTrips,
        Counter::HarnessJobFailures,
        Counter::HarnessRetries,
        Counter::StoreQuarantined,
        Counter::ServeRequests,
        Counter::ServeQueued,
        Counter::ServeCacheHits,
        Counter::ServeRejected,
        Counter::ServeCancelledCells,
        Counter::ServeJournalReplayed,
        Counter::ServeWorkerRespawns,
        Counter::ServeCellsPoisoned,
        Counter::ServeResumedStreams,
    ];

    /// Number of distinct counters.
    pub const COUNT: usize = Counter::ALL.len();

    /// The stable snake_case name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Cycles => "cycles",
            Counter::Retired => "retired",
            Counter::FetchGroups => "fetch_groups",
            Counter::InstsFromTc => "insts_from_tc",
            Counter::InstsFromIcache => "insts_from_icache",
            Counter::TracesBuilt => "traces_built",
            Counter::InstsInTraces => "insts_in_traces",
            Counter::CondBranches => "cond_branches",
            Counter::CondMispredicts => "cond_mispredicts",
            Counter::PredictorLookups => "predictor_lookups",
            Counter::EventsSampled => "events_sampled",
            Counter::EventsDropped => "events_dropped",
            Counter::SchedCompletions => "sched_completions",
            Counter::SchedWakeups => "sched_wakeups",
            Counter::WatchdogTrips => "watchdog_trips",
            Counter::HarnessJobFailures => "harness_job_failures",
            Counter::HarnessRetries => "harness_retries",
            Counter::StoreQuarantined => "store_quarantined",
            Counter::ServeRequests => "serve_requests",
            Counter::ServeQueued => "serve_queued",
            Counter::ServeCacheHits => "serve_cache_hits",
            Counter::ServeRejected => "serve_rejected",
            Counter::ServeCancelledCells => "serve_cancelled_cells",
            Counter::ServeJournalReplayed => "serve_journal_replayed",
            Counter::ServeWorkerRespawns => "serve_worker_respawns",
            Counter::ServeCellsPoisoned => "serve_cells_poisoned",
            Counter::ServeResumedStreams => "serve_resumed_streams",
        }
    }

    fn index(self) -> usize {
        // Variant order matches `ALL`, so the discriminant is the slot.
        self as usize
    }
}

/// A named fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hist {
    /// Instructions issued per cluster per cycle (only cycles where the
    /// cluster issued at least one instruction are... no — every tick
    /// samples every cluster, so bucket 0 counts idle cluster-cycles).
    ClusterIssueOccupancy,
    /// Latency in cycles of a critical inter-cluster operand forward.
    ForwardLatency,
    /// Instructions per constructed trace-cache line.
    TraceSize,
    /// Fill-unit reorder distance: |physical slot - program order| for
    /// each instruction placed into a trace line.
    ReorderDistance,
    /// MSHRs in flight, sampled once per cycle.
    MshrOccupancy,
    /// Load-queue entries, sampled once per cycle.
    LoadQueueOccupancy,
    /// Reservation-station residents per cluster, sampled once per
    /// cluster per cycle (all five stations summed).
    RsOccupancy,
}

impl Hist {
    /// Every histogram, in export order.
    pub const ALL: [Hist; 7] = [
        Hist::ClusterIssueOccupancy,
        Hist::ForwardLatency,
        Hist::TraceSize,
        Hist::ReorderDistance,
        Hist::MshrOccupancy,
        Hist::LoadQueueOccupancy,
        Hist::RsOccupancy,
    ];

    /// Number of distinct histograms.
    pub const COUNT: usize = Hist::ALL.len();

    /// The stable snake_case name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            Hist::ClusterIssueOccupancy => "cluster_issue_occupancy",
            Hist::ForwardLatency => "forward_latency",
            Hist::TraceSize => "trace_size",
            Hist::ReorderDistance => "reorder_distance",
            Hist::MshrOccupancy => "mshr_occupancy",
            Hist::LoadQueueOccupancy => "load_queue_occupancy",
            Hist::RsOccupancy => "rs_occupancy",
        }
    }

    fn index(self) -> usize {
        // Variant order matches `ALL`, so the discriminant is the slot.
        self as usize
    }
}

/// Bucket count shared by every histogram. Values are clamped into the
/// last bucket, so bucket `i < 32` holds exact value `i` and bucket 32
/// holds everything `>= 32`.
pub const HIST_BUCKETS: usize = 33;

/// A fixed-bucket histogram over small unsigned values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// `counts[i]` observations of value `i`; the last bucket clamps.
    pub counts: [u64; HIST_BUCKETS],
    /// Total observations.
    pub total: u64,
    /// Sum of the *unclamped* observed values (for exact means).
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            counts: [0; HIST_BUCKETS],
            total: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let i = (value as usize).min(HIST_BUCKETS - 1);
        self.counts[i] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// Mean of observed values, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The `p`-th percentile bucket value (`p` in percent, e.g. 95.0):
    /// the smallest bucket whose cumulative count covers at least
    /// `p/100` of all observations. Returns 0 when empty; values
    /// clamped into the last bucket report `HIST_BUCKETS - 1`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return i as u64;
            }
        }
        (HIST_BUCKETS - 1) as u64
    }

    fn to_value(&self) -> Value {
        let last = self
            .counts
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| i + 1);
        Value::Obj(vec![
            ("total".into(), Value::u64(self.total)),
            ("sum".into(), Value::u64(self.sum)),
            ("p50".into(), Value::u64(self.percentile(50.0))),
            ("p95".into(), Value::u64(self.percentile(95.0))),
            ("p99".into(), Value::u64(self.percentile(99.0))),
            (
                "counts".into(),
                Value::Arr(self.counts[..last].iter().map(|&c| Value::u64(c)).collect()),
            ),
        ])
    }
}

/// The full registry: one slot per [`Counter`] and per [`Hist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metrics {
    counters: [u64; Counter::COUNT],
    hists: [Histogram; Hist::COUNT],
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            counters: [0; Counter::COUNT],
            hists: std::array::from_fn(|_| Histogram::default()),
        }
    }
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `delta` to counter `c`.
    pub fn add(&mut self, c: Counter, delta: u64) {
        self.counters[c.index()] += delta;
    }

    /// Current value of counter `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Records one observation into histogram `h`.
    pub fn observe(&mut self, h: Hist, value: u64) {
        self.hists[h.index()].observe(value);
    }

    /// The histogram for `h`.
    pub fn hist(&self, h: Hist) -> &Histogram {
        &self.hists[h.index()]
    }

    /// Renders the registry as a JSON object with `counters` and
    /// `hists` sub-objects keyed by stable metric names.
    pub fn to_value(&self) -> Value {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name().to_string(), Value::u64(self.get(c))))
            .collect();
        let hists = Hist::ALL
            .iter()
            .map(|&h| (h.name().to_string(), self.hist(h).to_value()))
            .collect();
        Value::Obj(vec![
            ("counters".into(), Value::Obj(counters)),
            ("hists".into(), Value::Obj(hists)),
        ])
    }
}

/// Renders one JSONL metrics record for a finished job: the envelope
/// identifies the workload and strategy, the payload is
/// [`Metrics::to_value`].
pub fn metrics_line(workload: &str, strategy: &str, metrics: &Metrics) -> String {
    Value::Obj(vec![
        ("workload".into(), Value::str(workload)),
        ("strategy".into(), Value::str(strategy)),
        ("metrics".into(), metrics.to_value()),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_clamps_into_last_bucket() {
        let mut h = Histogram::default();
        h.observe(0);
        h.observe(3);
        h.observe(3);
        h.observe(500);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[3], 2);
        assert_eq!(h.counts[HIST_BUCKETS - 1], 1);
        assert_eq!(h.total, 4);
        assert_eq!(h.sum, 506);
        assert!((h.mean() - 126.5).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        assert_eq!(Histogram::default().mean(), 0.0);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = Histogram::default();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(95.0), 0);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn single_bucket_histogram_percentiles_are_that_bucket() {
        let mut h = Histogram::default();
        for _ in 0..7 {
            h.observe(5);
        }
        assert_eq!(h.percentile(50.0), 5);
        assert_eq!(h.percentile(95.0), 5);
        assert_eq!(h.percentile(99.0), 5);
    }

    #[test]
    fn saturated_histogram_percentiles_clamp_to_last_bucket() {
        let mut h = Histogram::default();
        for v in [100u64, 200, 5000] {
            h.observe(v);
        }
        let last = (HIST_BUCKETS - 1) as u64;
        assert_eq!(h.percentile(50.0), last);
        assert_eq!(h.percentile(99.0), last);
    }

    #[test]
    fn percentiles_split_a_mixed_distribution() {
        let mut h = Histogram::default();
        // 90 observations of 1, 9 of 10, 1 of 31.
        for _ in 0..90 {
            h.observe(1);
        }
        for _ in 0..9 {
            h.observe(10);
        }
        h.observe(31);
        assert_eq!(h.percentile(50.0), 1);
        assert_eq!(h.percentile(95.0), 10);
        assert_eq!(h.percentile(99.0), 10);
        assert_eq!(h.percentile(100.0), 31);
    }

    #[test]
    fn counters_accumulate_by_name() {
        let mut m = Metrics::new();
        m.add(Counter::Retired, 10);
        m.add(Counter::Retired, 5);
        m.add(Counter::Cycles, 7);
        assert_eq!(m.get(Counter::Retired), 15);
        assert_eq!(m.get(Counter::Cycles), 7);
        assert_eq!(m.get(Counter::TracesBuilt), 0);
    }

    #[test]
    fn export_is_valid_json_with_stable_names() {
        let mut m = Metrics::new();
        m.add(Counter::Retired, 42);
        m.observe(Hist::TraceSize, 12);
        let line = metrics_line("gzip", "fdrt", &m);
        let v = Value::parse(&line).unwrap();
        assert_eq!(v.get("workload").unwrap().as_str(), Some("gzip"));
        let counters = v.get("metrics").unwrap().get("counters").unwrap();
        assert_eq!(counters.get("retired").unwrap().as_u64(), Some(42));
        let ts = v
            .get("metrics")
            .unwrap()
            .get("hists")
            .unwrap()
            .get("trace_size")
            .unwrap();
        assert_eq!(ts.get("total").unwrap().as_u64(), Some(1));
        assert_eq!(ts.get("sum").unwrap().as_u64(), Some(12));
        assert_eq!(ts.get("p50").unwrap().as_u64(), Some(12));
        assert_eq!(ts.get("p99").unwrap().as_u64(), Some(12));
        assert_eq!(ts.get("counts").unwrap().as_arr().unwrap().len(), 13);
    }

    #[test]
    fn all_order_matches_discriminants() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{}", c.name());
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i, "{}", h.name());
        }
    }

    #[test]
    fn counter_and_hist_names_are_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
        let mut names: Vec<&str> = Hist::ALL.iter().map(|h| h.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Hist::COUNT);
    }
}
