//! Per-instruction cycle attribution.
//!
//! Three pieces live here, all downstream of the [`Probe`] hooks the
//! engine fires at retirement:
//!
//! * [`InstAttrib`] — one lifecycle record per retired instruction:
//!   stage cycle stamps plus, per source operand, *where the value came
//!   from* (register file, same-cluster bypass, or an inter-cluster
//!   forward and its hop count).
//! * [`CpiStack`] — the retirement-driven cycle accounting. Every cycle
//!   the machine owns `retire_width` retire slots; each slot either
//!   retires an instruction (charged to *base*) or stalls, and the
//!   stalled slots are charged to exactly one of five blame buckets
//!   keyed by what the ROB head was waiting for.
//! * [`walk_critical_path`] — a last-arriving-operand walker over the
//!   lifecycle records that reports how many critical dependence edges
//!   crossed a cluster boundary, the paper's core mechanism.
//!
//! [`Probe`]: crate::probe::Probe

use crate::json::Value;
use std::collections::HashMap;

/// Blame bucket for one cycle-slot of retire bandwidth.
///
/// Classification is by priority at the ROB head (first match wins):
/// an empty ROB is a front-end problem (*branch-mispredict* while
/// refetching after a squash, *fetch/trace-miss* otherwise); a head
/// waiting on an operand still crossing the interconnect is
/// *inter-cluster-delay*; a head executing a load is *memory*; a head
/// with ready operands that has not issued (or not dispatched) is
/// *RS/dispatch-stall*; everything else — including slots that did
/// retire an instruction — is *base*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetireSlotKind {
    /// The slot retired an instruction, or stalled on plain in-order
    /// drain (head completing this cycle, register-file read latency).
    Base,
    /// Head waits on an operand in flight on the inter-cluster
    /// interconnect.
    InterCluster,
    /// Head has its operands but has not won a dispatch port or an
    /// issue slot (structural/RS pressure).
    RsDispatch,
    /// ROB empty because fetch could not supply instructions (icache or
    /// trace-cache miss, delivery bubble).
    FetchMiss,
    /// ROB empty because fetch is squashed awaiting a mispredicted
    /// branch redirect.
    BranchMispredict,
    /// Head is a load still executing (cache miss / MSHR queueing).
    Memory,
}

impl RetireSlotKind {
    /// Every bucket, in export order.
    pub const ALL: [RetireSlotKind; 6] = [
        RetireSlotKind::Base,
        RetireSlotKind::InterCluster,
        RetireSlotKind::RsDispatch,
        RetireSlotKind::FetchMiss,
        RetireSlotKind::BranchMispredict,
        RetireSlotKind::Memory,
    ];

    /// Number of distinct buckets.
    pub const COUNT: usize = RetireSlotKind::ALL.len();

    /// The stable snake_case name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            RetireSlotKind::Base => "base",
            RetireSlotKind::InterCluster => "inter_cluster",
            RetireSlotKind::RsDispatch => "rs_dispatch",
            RetireSlotKind::FetchMiss => "fetch",
            RetireSlotKind::BranchMispredict => "branch_mispredict",
            RetireSlotKind::Memory => "memory",
        }
    }

    /// The bucket's slot in [`CpiStack::slots`].
    pub fn index(self) -> usize {
        // Variant order matches `ALL`, so the discriminant is the slot.
        self as usize
    }
}

/// Where a source operand's value came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SrcKind {
    /// The instruction has no register source in this slot.
    #[default]
    Absent,
    /// Read from the register file (producer already retired or value
    /// architectural at rename).
    RegFile,
    /// Bypassed from a producer on the *same* cluster (zero hops).
    Bypass,
    /// Forwarded from a producer on *another* cluster across the
    /// interconnect.
    Forward,
}

impl SrcKind {
    /// The stable snake_case name used by every exporter.
    pub fn name(self) -> &'static str {
        match self {
            SrcKind::Absent => "absent",
            SrcKind::RegFile => "reg_file",
            SrcKind::Bypass => "bypass",
            SrcKind::Forward => "forward",
        }
    }
}

/// Provenance of one source operand of a retired instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SrcAttrib {
    /// How the value reached the consumer.
    pub kind: SrcKind,
    /// Producer's sequence number (0 when `kind` is `Absent`/`RegFile`
    /// with no in-window producer).
    pub producer_seq: u64,
    /// Cluster the producer executed on (meaningful for
    /// `Bypass`/`Forward`).
    pub producer_cluster: u8,
    /// Interconnect hops the value crossed (0 for everything but
    /// `Forward`).
    pub hops: u8,
    /// Cycle the producer's result completed (0 when not applicable).
    pub complete: u64,
    /// Cycle the value became usable at the consumer's cluster.
    pub arrival: u64,
}

/// One retired instruction's lifecycle, as handed to
/// [`Probe::retire_attrib`](crate::probe::Probe::retire_attrib).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstAttrib {
    /// Global dynamic sequence number (dense, program order).
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// Cluster the instruction executed on.
    pub cluster: u8,
    /// Cycle rename accepted the instruction into the window.
    pub renamed_at: u64,
    /// Cycle the instruction won a dispatch port into its RS.
    pub dispatched_at: u64,
    /// Cycle execution began (issue).
    pub exec_start: u64,
    /// Cycle the result completed.
    pub complete_at: u64,
    /// Cycle the instruction retired.
    pub retired_at: u64,
    /// Provenance of each source operand.
    pub srcs: [SrcAttrib; 2],
    /// Which source arrived last and gated issue, when any did.
    pub critical_src: Option<usize>,
}

/// The retirement-driven CPI stack: every cycle-slot of retire
/// bandwidth charged to exactly one [`RetireSlotKind`], so the slots
/// always sum to `cycles * retire_width`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CpiStack {
    /// Slot counts indexed by [`RetireSlotKind::index`].
    pub slots: [u64; RetireSlotKind::COUNT],
    /// Cycles accounted (one [`charge`](CpiStack::charge) call each).
    pub cycles: u64,
}

impl CpiStack {
    /// Accounts one cycle: `retired` slots to *base* and `stalled`
    /// slots to `stall`.
    pub fn charge(&mut self, retired: u64, stalled: u64, stall: RetireSlotKind) {
        self.slots[RetireSlotKind::Base.index()] += retired;
        self.slots[stall.index()] += stalled;
        self.cycles += 1;
    }

    /// Sum of every slot — must equal `cycles * retire_width`.
    pub fn total(&self) -> u64 {
        self.slots.iter().sum()
    }

    /// The count charged to `kind`.
    pub fn get(&self, kind: RetireSlotKind) -> u64 {
        self.slots[kind.index()]
    }

    /// Fraction of all slots charged to `kind` (0.0 when empty).
    pub fn fraction(&self, kind: RetireSlotKind) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(kind) as f64 / total as f64
        }
    }

    /// Renders the stack as `{"cycles": n, "slots": {name: n, ...}}`.
    pub fn to_value(&self) -> Value {
        let slots = RetireSlotKind::ALL
            .iter()
            .map(|&k| (k.name().to_string(), Value::u64(self.get(k))))
            .collect();
        Value::Obj(vec![
            ("cycles".into(), Value::u64(self.cycles)),
            ("slots".into(), Value::Obj(slots)),
        ])
    }

    /// Parses [`CpiStack::to_value`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_value(v: &Value) -> Result<CpiStack, String> {
        let cycles = v
            .get("cycles")
            .and_then(Value::as_u64)
            .ok_or("cpi stack: missing cycles")?;
        let slots_obj = v.get("slots").ok_or("cpi stack: missing slots")?;
        let mut slots = [0u64; RetireSlotKind::COUNT];
        for k in RetireSlotKind::ALL {
            slots[k.index()] = slots_obj
                .get(k.name())
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("cpi stack: missing slot {}", k.name()))?;
        }
        Ok(CpiStack { slots, cycles })
    }
}

/// One aggregated critical-path dependence edge (producer PC →
/// consumer PC) and how often the walker crossed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CritEdge {
    /// Producer's program counter.
    pub from_pc: u64,
    /// Consumer's program counter.
    pub to_pc: u64,
    /// Interconnect hops between the two clusters (0 = same cluster).
    pub hops: u8,
    /// Dynamic traversals of this edge.
    pub count: u64,
}

/// What the critical-path walker found.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CriticalSummary {
    /// Dynamic dependence edges walked.
    pub edges: u64,
    /// Of those, edges whose value crossed a cluster boundary.
    pub cross_cluster: u64,
    /// The hottest static edges, by dynamic count (descending).
    pub top: Vec<CritEdge>,
}

impl CriticalSummary {
    /// Fraction of critical edges that crossed clusters (0.0 when the
    /// walk found no edges).
    pub fn cross_fraction(&self) -> f64 {
        if self.edges == 0 {
            0.0
        } else {
            self.cross_cluster as f64 / self.edges as f64
        }
    }

    /// Renders the summary as JSON.
    pub fn to_value(&self) -> Value {
        let top = self
            .top
            .iter()
            .map(|e| {
                Value::Obj(vec![
                    ("from_pc".into(), Value::u64(e.from_pc)),
                    ("to_pc".into(), Value::u64(e.to_pc)),
                    ("hops".into(), Value::u64(u64::from(e.hops))),
                    ("count".into(), Value::u64(e.count)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("edges".into(), Value::u64(self.edges)),
            ("cross_cluster".into(), Value::u64(self.cross_cluster)),
            ("top".into(), Value::Arr(top)),
        ])
    }

    /// Parses [`CriticalSummary::to_value`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_value(v: &Value) -> Result<CriticalSummary, String> {
        let edges = v
            .get("edges")
            .and_then(Value::as_u64)
            .ok_or("critical summary: missing edges")?;
        let cross_cluster = v
            .get("cross_cluster")
            .and_then(Value::as_u64)
            .ok_or("critical summary: missing cross_cluster")?;
        let raw = v
            .get("top")
            .and_then(Value::as_arr)
            .ok_or("critical summary: missing top")?;
        let mut top = Vec::with_capacity(raw.len());
        for (i, e) in raw.iter().enumerate() {
            let field = |name: &str| {
                e.get(name)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("critical summary: edge {i} missing {name}"))
            };
            top.push(CritEdge {
                from_pc: field("from_pc")?,
                to_pc: field("to_pc")?,
                hops: field("hops")? as u8,
                count: field("count")?,
            });
        }
        Ok(CriticalSummary {
            edges,
            cross_cluster,
            top,
        })
    }
}

/// A run's full attribution result: the CPI stack plus the critical-
/// path summary. Attached to a `SimReport` by attribution-enabled runs
/// and persisted through the harness result store.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttribReport {
    /// The retirement-driven CPI stack.
    pub stack: CpiStack,
    /// The last-arriving-operand critical-path summary.
    pub critical: CriticalSummary,
}

impl AttribReport {
    /// Renders the report as JSON.
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("stack".into(), self.stack.to_value()),
            ("critical".into(), self.critical.to_value()),
        ])
    }

    /// Parses [`AttribReport::to_value`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_value(v: &Value) -> Result<AttribReport, String> {
        Ok(AttribReport {
            stack: CpiStack::from_value(v.get("stack").ok_or("attrib: missing stack")?)?,
            critical: CriticalSummary::from_value(
                v.get("critical").ok_or("attrib: missing critical")?,
            )?,
        })
    }
}

/// Walks the last-arriving-operand critical path backwards through
/// `records` (which must be in ascending `seq` order — retirement
/// order guarantees this).
///
/// Starting from the last retired instruction, the walker follows the
/// critical (last-arriving) source to its producer whenever that value
/// was bypassed or forwarded from an in-window producer, counting one
/// dependence edge per hop of the walk. When the chain breaks — the
/// head of a dependence chain reads the register file, or has no
/// critical source — the walk restarts from the instruction preceding
/// the break point, so the whole run decomposes into chain segments.
pub fn walk_critical_path(records: &[InstAttrib], top_n: usize) -> CriticalSummary {
    let mut edge_counts: HashMap<(u64, u64, u8), u64> = HashMap::new();
    let mut edges = 0u64;
    let mut cross_cluster = 0u64;

    let mut idx = match records.len() {
        0 => return CriticalSummary::default(),
        n => n - 1,
    };
    loop {
        let cur = &records[idx];
        let producer_idx = cur
            .critical_src
            .map(|c| cur.srcs[c])
            .filter(|s| matches!(s.kind, SrcKind::Bypass | SrcKind::Forward))
            .and_then(|s| {
                records
                    .binary_search_by_key(&s.producer_seq, |r| r.seq)
                    .ok()
                    .map(|pi| (pi, s.hops))
            });
        match producer_idx {
            Some((pi, hops)) if pi < idx => {
                let producer = &records[pi];
                edges += 1;
                if hops > 0 {
                    cross_cluster += 1;
                }
                *edge_counts.entry((producer.pc, cur.pc, hops)).or_insert(0) += 1;
                idx = pi;
            }
            _ => {
                // Chain head (or a producer outside the record window):
                // resume from the instruction just before it.
                if idx == 0 {
                    break;
                }
                idx -= 1;
            }
        }
    }

    let mut top: Vec<CritEdge> = edge_counts
        .into_iter()
        .map(|((from_pc, to_pc, hops), count)| CritEdge {
            from_pc,
            to_pc,
            hops,
            count,
        })
        .collect();
    top.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then(a.from_pc.cmp(&b.from_pc))
            .then(a.to_pc.cmp(&b.to_pc))
    });
    top.truncate(top_n);
    CriticalSummary {
        edges,
        cross_cluster,
        top,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, pc: u64, critical: Option<(usize, SrcAttrib)>) -> InstAttrib {
        let mut srcs = [SrcAttrib::default(); 2];
        let critical_src = critical.map(|(i, s)| {
            srcs[i] = s;
            i
        });
        InstAttrib {
            seq,
            pc,
            cluster: 0,
            renamed_at: seq,
            dispatched_at: seq + 1,
            exec_start: seq + 2,
            complete_at: seq + 3,
            retired_at: seq + 4,
            srcs,
            critical_src,
        }
    }

    fn fwd(producer_seq: u64, hops: u8) -> SrcAttrib {
        SrcAttrib {
            kind: if hops == 0 {
                SrcKind::Bypass
            } else {
                SrcKind::Forward
            },
            producer_seq,
            producer_cluster: hops,
            hops,
            complete: 0,
            arrival: 0,
        }
    }

    #[test]
    fn stack_charges_and_conserves() {
        let mut s = CpiStack::default();
        s.charge(3, 13, RetireSlotKind::InterCluster);
        s.charge(16, 0, RetireSlotKind::Base);
        s.charge(0, 16, RetireSlotKind::Memory);
        assert_eq!(s.cycles, 3);
        assert_eq!(s.total(), 48);
        assert_eq!(s.get(RetireSlotKind::Base), 19);
        assert_eq!(s.get(RetireSlotKind::InterCluster), 13);
        assert_eq!(s.get(RetireSlotKind::Memory), 16);
        assert!((s.fraction(RetireSlotKind::Memory) - 16.0 / 48.0).abs() < 1e-12);
    }

    #[test]
    fn stack_json_round_trips() {
        let mut s = CpiStack::default();
        s.charge(5, 11, RetireSlotKind::FetchMiss);
        let back = CpiStack::from_value(&s.to_value()).unwrap();
        assert_eq!(back, s);
        assert!(CpiStack::from_value(&Value::Obj(vec![])).is_err());
    }

    #[test]
    fn walker_follows_chains_and_counts_crossings() {
        // 0 -> 1 (cross, 2 hops) -> 2 (same cluster) ; 3 independent.
        let records = vec![
            rec(0, 0x100, None),
            rec(1, 0x104, Some((0, fwd(0, 2)))),
            rec(2, 0x108, Some((1, fwd(1, 0)))),
            rec(3, 0x10c, None),
        ];
        let s = walk_critical_path(&records, 8);
        assert_eq!(s.edges, 2);
        assert_eq!(s.cross_cluster, 1);
        assert!((s.cross_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(s.top.len(), 2);
        // Deterministic order: equal counts break ties by from_pc.
        assert_eq!(s.top[0].from_pc, 0x100);
        assert_eq!(s.top[1].from_pc, 0x104);
    }

    #[test]
    fn walker_handles_empty_and_missing_producers() {
        assert_eq!(walk_critical_path(&[], 4), CriticalSummary::default());
        // Producer seq 99 is outside the window: no edge, walk restarts.
        let records = vec![rec(5, 0x100, None), rec(6, 0x104, Some((0, fwd(99, 1))))];
        let s = walk_critical_path(&records, 4);
        assert_eq!(s.edges, 0);
        assert_eq!(s.cross_cluster, 0);
    }

    #[test]
    fn attrib_report_json_round_trips() {
        let mut r = AttribReport::default();
        r.stack.charge(4, 12, RetireSlotKind::BranchMispredict);
        r.critical = CriticalSummary {
            edges: 10,
            cross_cluster: 3,
            top: vec![CritEdge {
                from_pc: 0x40,
                to_pc: 0x44,
                hops: 1,
                count: 7,
            }],
        };
        let text = r.to_value().render();
        let back = AttribReport::from_value(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back, r);
    }
}
