//! The accumulating probe implementation.

use crate::event::{EventRing, InstTimeline, PipeStage, SpanEvent, FETCH_LANE};
use crate::metrics::{Counter, Hist, Metrics};
use crate::probe::Probe;
use std::cell::RefCell;

/// Capture settings for a [`Recorder`].
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// Maximum events the ring holds; older events are overwritten.
    pub event_capacity: usize,
    /// Record the timeline of every `sample_every`-th retired
    /// instruction (1 = all). 0 disables the event trace entirely and
    /// keeps only metrics — the right mode for long sweeps.
    pub sample_every: u64,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig {
            event_capacity: 1 << 16,
            sample_every: 1,
        }
    }
}

impl RecorderConfig {
    /// A metrics-only configuration: no event ring, no sampling.
    pub fn metrics_only() -> RecorderConfig {
        RecorderConfig {
            event_capacity: 0,
            sample_every: 0,
        }
    }
}

struct Inner {
    metrics: Metrics,
    ring: EventRing,
    sample_every: u64,
}

/// A [`Probe`] that accumulates metrics and a ring-buffered event
/// trace. Interior mutability (a `RefCell`) lets one `Rc<Recorder>` be
/// shared across pipeline components; simulations are single-threaded,
/// so the borrow is never contended.
pub struct Recorder {
    inner: RefCell<Inner>,
}

impl Recorder {
    /// A recorder with the given capture settings.
    pub fn new(cfg: RecorderConfig) -> Recorder {
        Recorder {
            inner: RefCell::new(Inner {
                metrics: Metrics::new(),
                ring: EventRing::new(cfg.event_capacity),
                sample_every: cfg.sample_every,
            }),
        }
    }

    /// Snapshot of the accumulated metrics. The events-dropped counter
    /// is folded in at snapshot time so exported counters always agree
    /// with the exported event set.
    pub fn metrics(&self) -> Metrics {
        let inner = self.inner.borrow();
        let mut m = inner.metrics.clone();
        let already = m.get(Counter::EventsDropped);
        m.add(
            Counter::EventsDropped,
            inner.ring.dropped().saturating_sub(already),
        );
        m
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.inner.borrow().ring.to_vec()
    }

    /// Events lost to ring overwriting.
    pub fn dropped_events(&self) -> u64 {
        self.inner.borrow().ring.dropped()
    }
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new(RecorderConfig::default())
    }
}

impl Probe for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, c: Counter, delta: u64) {
        self.inner.borrow_mut().metrics.add(c, delta);
    }

    fn observe(&self, h: Hist, value: u64) {
        self.inner.borrow_mut().metrics.observe(h, value);
    }

    fn fetch_group(&self, ts: u64, pc: u64, size: u32, from_tc: bool) {
        let mut inner = self.inner.borrow_mut();
        inner.metrics.add(Counter::FetchGroups, 1);
        if inner.sample_every == 0 {
            return;
        }
        inner.metrics.add(Counter::EventsSampled, 1);
        inner.ring.push(SpanEvent {
            ts,
            dur: 1,
            stage: PipeStage::Fetch,
            // Fetch groups predate renaming; encode the source and the
            // group size in the seq field's absence (args carry them).
            seq: u64::from(size),
            pc,
            cluster: if from_tc { FETCH_LANE } else { FETCH_LANE - 1 },
        });
    }

    fn timeline(&self, t: &InstTimeline) {
        let mut inner = self.inner.borrow_mut();
        if inner.sample_every == 0 || !t.seq.is_multiple_of(inner.sample_every) {
            return;
        }
        let spans = [
            (PipeStage::Dispatch, t.renamed_at, t.dispatched_at),
            (PipeStage::Issue, t.dispatched_at, t.exec_start),
            (PipeStage::Execute, t.exec_start, t.complete_at),
            (PipeStage::Retire, t.complete_at, t.retired_at),
        ];
        for (stage, start, end) in spans {
            inner.metrics.add(Counter::EventsSampled, 1);
            inner.ring.push(SpanEvent {
                ts: start,
                dur: end.saturating_sub(start),
                stage,
                seq: t.seq,
                pc: t.pc,
                cluster: t.cluster,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(seq: u64) -> InstTimeline {
        InstTimeline {
            seq,
            pc: 0x100 + seq * 4,
            cluster: (seq % 4) as u8,
            renamed_at: seq,
            dispatched_at: seq + 1,
            exec_start: seq + 3,
            complete_at: seq + 5,
            retired_at: seq + 8,
        }
    }

    #[test]
    fn timeline_expands_to_four_spans() {
        let r = Recorder::default();
        r.timeline(&timeline(1));
        let evs = r.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].stage, PipeStage::Dispatch);
        assert_eq!(evs[2].stage, PipeStage::Execute);
        assert_eq!(evs[2].ts, 4);
        assert_eq!(evs[2].dur, 2);
        assert_eq!(r.metrics().get(Counter::EventsSampled), 4);
    }

    #[test]
    fn sampling_keeps_every_nth_instruction() {
        let r = Recorder::new(RecorderConfig {
            event_capacity: 1024,
            sample_every: 10,
        });
        for seq in 1..=100 {
            r.timeline(&timeline(seq));
        }
        // seq 10, 20, ..., 100 → 10 instructions × 4 spans.
        assert_eq!(r.events().len(), 40);
    }

    #[test]
    fn metrics_only_mode_records_no_events() {
        let r = Recorder::new(RecorderConfig::metrics_only());
        r.timeline(&timeline(1));
        r.fetch_group(0, 0x40, 8, true);
        assert!(r.events().is_empty());
        assert_eq!(r.metrics().get(Counter::EventsSampled), 0);
        assert_eq!(r.metrics().get(Counter::FetchGroups), 1);
    }

    #[test]
    fn dropped_counter_matches_ring_after_snapshot() {
        let r = Recorder::new(RecorderConfig {
            event_capacity: 4,
            sample_every: 1,
        });
        for seq in 1..=3 {
            r.timeline(&timeline(seq)); // 12 spans into a 4-slot ring
        }
        assert_eq!(r.dropped_events(), 8);
        assert_eq!(r.metrics().get(Counter::EventsDropped), 8);
        // Snapshot twice: the fold-in must not double count.
        assert_eq!(r.metrics().get(Counter::EventsDropped), 8);
    }
}
