//! The accumulating probe implementation.

use crate::attrib::{
    walk_critical_path, AttribReport, CpiStack, InstAttrib, RetireSlotKind, SrcKind,
};
use crate::event::{EventRing, FlowEvent, InstTimeline, PipeStage, SpanEvent, FETCH_LANE};
use crate::metrics::{Counter, Hist, Metrics};
use crate::probe::Probe;
use std::cell::RefCell;

/// Static edges reported by [`Recorder::attrib_report`]'s critical-path
/// summary.
const CRITICAL_TOP_N: usize = 8;

/// Capture settings for a [`Recorder`].
#[derive(Debug, Clone, Copy)]
pub struct RecorderConfig {
    /// Maximum events the ring holds; older events are overwritten.
    pub event_capacity: usize,
    /// Record the timeline of every `sample_every`-th retired
    /// instruction (1 = all). 0 disables the event trace entirely and
    /// keeps only metrics — the right mode for long sweeps.
    pub sample_every: u64,
    /// Keep every per-instruction attribution record so
    /// [`Recorder::attrib_report`] can run the critical-path walker.
    /// The CPI stack accumulates regardless of this flag.
    pub collect_attrib: bool,
}

impl Default for RecorderConfig {
    fn default() -> RecorderConfig {
        RecorderConfig {
            event_capacity: 1 << 16,
            sample_every: 1,
            collect_attrib: false,
        }
    }
}

impl RecorderConfig {
    /// A metrics-only configuration: no event ring, no sampling.
    pub fn metrics_only() -> RecorderConfig {
        RecorderConfig {
            event_capacity: 0,
            sample_every: 0,
            collect_attrib: false,
        }
    }

    /// An attribution configuration: no event ring, but full lifecycle
    /// records for the CPI stack and critical-path walker.
    pub fn attrib() -> RecorderConfig {
        RecorderConfig {
            event_capacity: 0,
            sample_every: 0,
            collect_attrib: true,
        }
    }
}

struct Inner {
    metrics: Metrics,
    ring: EventRing,
    sample_every: u64,
    collect_attrib: bool,
    stack: CpiStack,
    records: Vec<InstAttrib>,
    flows: Vec<FlowEvent>,
    next_flow_id: u64,
}

/// A [`Probe`] that accumulates metrics and a ring-buffered event
/// trace. Interior mutability (a `RefCell`) lets one `Rc<Recorder>` be
/// shared across pipeline components; simulations are single-threaded,
/// so the borrow is never contended.
pub struct Recorder {
    inner: RefCell<Inner>,
}

impl Recorder {
    /// A recorder with the given capture settings.
    pub fn new(cfg: RecorderConfig) -> Recorder {
        Recorder {
            inner: RefCell::new(Inner {
                metrics: Metrics::new(),
                ring: EventRing::new(cfg.event_capacity),
                sample_every: cfg.sample_every,
                collect_attrib: cfg.collect_attrib,
                stack: CpiStack::default(),
                records: Vec::new(),
                flows: Vec::new(),
                next_flow_id: 0,
            }),
        }
    }

    /// Snapshot of the accumulated metrics. The events-dropped counter
    /// is folded in at snapshot time so exported counters always agree
    /// with the exported event set.
    pub fn metrics(&self) -> Metrics {
        let inner = self.inner.borrow();
        let mut m = inner.metrics.clone();
        let already = m.get(Counter::EventsDropped);
        m.add(
            Counter::EventsDropped,
            inner.ring.dropped().saturating_sub(already),
        );
        m
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.inner.borrow().ring.to_vec()
    }

    /// Events lost to ring overwriting.
    pub fn dropped_events(&self) -> u64 {
        self.inner.borrow().ring.dropped()
    }

    /// The accumulated CPI stack (empty unless the pipeline fired
    /// [`Probe::retire_slots`]).
    pub fn cpi_stack(&self) -> CpiStack {
        self.inner.borrow().stack.clone()
    }

    /// Inter-cluster forward flows derived from sampled instructions,
    /// for Chrome-trace export.
    pub fn flows(&self) -> Vec<FlowEvent> {
        self.inner.borrow().flows.clone()
    }

    /// The full attribution result: the CPI stack plus the critical-
    /// path walk over the collected lifecycle records (empty unless
    /// constructed with [`RecorderConfig::collect_attrib`]).
    pub fn attrib_report(&self) -> AttribReport {
        self.attrib_report_top(CRITICAL_TOP_N)
    }

    /// [`Recorder::attrib_report`] with a caller-chosen cap on how many
    /// critical-path edges are kept.
    pub fn attrib_report_top(&self, top_n: usize) -> AttribReport {
        let inner = self.inner.borrow();
        AttribReport {
            stack: inner.stack.clone(),
            critical: walk_critical_path(&inner.records, top_n),
        }
    }
}

impl Default for Recorder {
    fn default() -> Recorder {
        Recorder::new(RecorderConfig::default())
    }
}

impl Probe for Recorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, c: Counter, delta: u64) {
        self.inner.borrow_mut().metrics.add(c, delta);
    }

    fn observe(&self, h: Hist, value: u64) {
        self.inner.borrow_mut().metrics.observe(h, value);
    }

    fn fetch_group(&self, ts: u64, pc: u64, size: u32, from_tc: bool) {
        let mut inner = self.inner.borrow_mut();
        inner.metrics.add(Counter::FetchGroups, 1);
        if inner.sample_every == 0 {
            return;
        }
        inner.metrics.add(Counter::EventsSampled, 1);
        inner.ring.push(SpanEvent {
            ts,
            dur: 1,
            stage: PipeStage::Fetch,
            // Fetch groups predate renaming; encode the source and the
            // group size in the seq field's absence (args carry them).
            seq: u64::from(size),
            pc,
            cluster: if from_tc { FETCH_LANE } else { FETCH_LANE - 1 },
        });
    }

    fn timeline(&self, t: &InstTimeline) {
        let mut inner = self.inner.borrow_mut();
        if inner.sample_every == 0 || !t.seq.is_multiple_of(inner.sample_every) {
            return;
        }
        let spans = [
            (PipeStage::Dispatch, t.renamed_at, t.dispatched_at),
            (PipeStage::Issue, t.dispatched_at, t.exec_start),
            (PipeStage::Execute, t.exec_start, t.complete_at),
            (PipeStage::Retire, t.complete_at, t.retired_at),
        ];
        for (stage, start, end) in spans {
            inner.metrics.add(Counter::EventsSampled, 1);
            inner.ring.push(SpanEvent {
                ts: start,
                dur: end.saturating_sub(start),
                stage,
                seq: t.seq,
                pc: t.pc,
                cluster: t.cluster,
            });
        }
    }

    fn retire_attrib(&self, rec: &InstAttrib) {
        let mut inner = self.inner.borrow_mut();
        if inner.collect_attrib {
            inner.records.push(*rec);
        }
        // Flow arrows ride the sampled event trace: one per forwarded
        // (cross-cluster) source of each sampled instruction.
        if inner.sample_every == 0 || !rec.seq.is_multiple_of(inner.sample_every) {
            return;
        }
        for src in rec.srcs {
            if src.kind != SrcKind::Forward {
                continue;
            }
            let id = inner.next_flow_id;
            inner.next_flow_id += 1;
            inner.flows.push(FlowEvent {
                id,
                from_ts: src.complete,
                from_cluster: src.producer_cluster,
                to_ts: src.arrival.max(src.complete),
                to_cluster: rec.cluster,
                seq: rec.seq,
                pc: rec.pc,
            });
        }
    }

    fn retire_slots(&self, _now: u64, retired: u64, stalled: u64, stall: RetireSlotKind) {
        self.inner
            .borrow_mut()
            .stack
            .charge(retired, stalled, stall);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(seq: u64) -> InstTimeline {
        InstTimeline {
            seq,
            pc: 0x100 + seq * 4,
            cluster: (seq % 4) as u8,
            renamed_at: seq,
            dispatched_at: seq + 1,
            exec_start: seq + 3,
            complete_at: seq + 5,
            retired_at: seq + 8,
        }
    }

    #[test]
    fn timeline_expands_to_four_spans() {
        let r = Recorder::default();
        r.timeline(&timeline(1));
        let evs = r.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].stage, PipeStage::Dispatch);
        assert_eq!(evs[2].stage, PipeStage::Execute);
        assert_eq!(evs[2].ts, 4);
        assert_eq!(evs[2].dur, 2);
        assert_eq!(r.metrics().get(Counter::EventsSampled), 4);
    }

    #[test]
    fn sampling_keeps_every_nth_instruction() {
        let r = Recorder::new(RecorderConfig {
            event_capacity: 1024,
            sample_every: 10,
            collect_attrib: false,
        });
        for seq in 1..=100 {
            r.timeline(&timeline(seq));
        }
        // seq 10, 20, ..., 100 → 10 instructions × 4 spans.
        assert_eq!(r.events().len(), 40);
    }

    #[test]
    fn metrics_only_mode_records_no_events() {
        let r = Recorder::new(RecorderConfig::metrics_only());
        r.timeline(&timeline(1));
        r.fetch_group(0, 0x40, 8, true);
        assert!(r.events().is_empty());
        assert_eq!(r.metrics().get(Counter::EventsSampled), 0);
        assert_eq!(r.metrics().get(Counter::FetchGroups), 1);
    }

    #[test]
    fn attrib_recorder_accumulates_stack_and_records() {
        use crate::attrib::{SrcAttrib, SrcKind};
        let r = Recorder::new(RecorderConfig::attrib());
        r.retire_slots(1, 16, 0, RetireSlotKind::Base);
        r.retire_slots(2, 3, 13, RetireSlotKind::InterCluster);
        let mk = |seq: u64, src: SrcAttrib, critical: Option<usize>| InstAttrib {
            seq,
            pc: 0x100 + seq * 4,
            cluster: 1,
            renamed_at: seq,
            dispatched_at: seq + 1,
            exec_start: seq + 3,
            complete_at: seq + 5,
            retired_at: seq + 8,
            srcs: [src, SrcAttrib::default()],
            critical_src: critical,
        };
        r.retire_attrib(&mk(1, SrcAttrib::default(), None));
        r.retire_attrib(&mk(
            2,
            SrcAttrib {
                kind: SrcKind::Forward,
                producer_seq: 1,
                producer_cluster: 0,
                hops: 2,
                complete: 6,
                arrival: 10,
            },
            Some(0),
        ));
        let report = r.attrib_report();
        assert_eq!(report.stack.cycles, 2);
        assert_eq!(report.stack.total(), 32);
        assert_eq!(report.stack.get(RetireSlotKind::InterCluster), 13);
        assert_eq!(report.critical.edges, 1);
        assert_eq!(report.critical.cross_cluster, 1);
        // attrib mode samples no events, so no flows are derived.
        assert!(r.flows().is_empty());
    }

    #[test]
    fn sampled_forward_sources_become_flows() {
        use crate::attrib::{SrcAttrib, SrcKind};
        let r = Recorder::default(); // sample_every = 1
        r.retire_attrib(&InstAttrib {
            seq: 4,
            pc: 0x200,
            cluster: 3,
            renamed_at: 1,
            dispatched_at: 2,
            exec_start: 12,
            complete_at: 13,
            retired_at: 15,
            srcs: [
                SrcAttrib {
                    kind: SrcKind::Forward,
                    producer_seq: 2,
                    producer_cluster: 0,
                    hops: 3,
                    complete: 5,
                    arrival: 11,
                },
                SrcAttrib {
                    kind: SrcKind::Bypass,
                    producer_seq: 3,
                    producer_cluster: 3,
                    hops: 0,
                    complete: 9,
                    arrival: 9,
                },
            ],
            critical_src: Some(0),
        });
        let flows = r.flows();
        assert_eq!(flows.len(), 1, "only the cross-cluster source flows");
        assert_eq!(flows[0].from_cluster, 0);
        assert_eq!(flows[0].to_cluster, 3);
        assert_eq!(flows[0].from_ts, 5);
        assert_eq!(flows[0].to_ts, 11);
        assert_eq!(flows[0].seq, 4);
    }

    #[test]
    fn dropped_counter_matches_ring_after_snapshot() {
        let r = Recorder::new(RecorderConfig {
            event_capacity: 4,
            sample_every: 1,
            collect_attrib: false,
        });
        for seq in 1..=3 {
            r.timeline(&timeline(seq)); // 12 spans into a 4-slot ring
        }
        assert_eq!(r.dropped_events(), 8);
        assert_eq!(r.metrics().get(Counter::EventsDropped), 8);
        // Snapshot twice: the fold-in must not double count.
        assert_eq!(r.metrics().get(Counter::EventsDropped), 8);
    }
}
