//! Fault injection for crash tests.
//!
//! A *fail point* is a named site in the workspace where a test (or the
//! `CTCP_FAIL_POINT` environment variable) can force a failure that is
//! hard to provoke organically: a panicking sweep cell, a truncated
//! result-store write, a retire stage that silently stalls. Production
//! code queries [`is_active`] at the site; when the point is not armed
//! the query is one atomic load plus a lock-free fast path, so leaving
//! the hooks compiled in costs nothing measurable.
//!
//! ## Spec format
//!
//! The configuration is a comma-separated list of `name` or `name=arg`
//! entries:
//!
//! ```text
//! CTCP_FAIL_POINT=job-panic=twolf:fdrt ctcp sweep ...
//! CTCP_FAIL_POINT=stall-retire,store-truncate repro table1
//! ```
//!
//! The workspace's registered points:
//!
//! | name             | site                         | effect                         |
//! |------------------|------------------------------|--------------------------------|
//! | `job-panic`      | `ctcp_harness::Job::simulate` | panics the worker running the matching `workload[:strategy]` cell (no arg = every cell) |
//! | `stall-retire`   | `ctcp_sim` cycle loop        | drops all retirements, stalling the pipeline until the watchdog trips |
//! | `store-truncate` | `ctcp_harness` result store  | writes only half of each appended envelope, simulating a crash mid-write; a numeric arg (`store-truncate=3`) tears only that shard index |
//! | `journal-truncate` | `ctcp_harness` request journal | writes only half of one appended journal record (then disarms itself), simulating a crash mid-append |
//! | `disk-full`      | `ctcp_harness` result store  | every store append fails with a synthetic `ENOSPC`, driving the daemon into read-only degradation |
//! | `serve-partial-write` | `ctcp_serve` chunked writer | writes only half of one stream chunk, then fails the write (then disarms itself) |
//! | `serve-disconnect` | `ctcp_serve` chunked writer | fails the stream after `N` chunks (`serve-disconnect=N`; then disarms itself), simulating a mid-stream peer loss |
//! | `serve-accept-storm` | `ctcp_serve` accept loop   | drops the first `N` accepted connections on the floor (`serve-accept-storm=N`), simulating a thundering reconnect herd |
//! | `serve-slow-reader` | `ctcp_serve` chunked writer | sleeps `ms` per chunk (`serve-slow-reader=250`), simulating a stalled reader |
//!
//! ## Test use
//!
//! Tests arm points programmatically with [`set`] (which overrides the
//! environment) and must disarm with `set(None)` when done. The
//! configuration is process-global, so tests that arm fail points must
//! serialise themselves (e.g. behind a shared mutex) — the fail-point
//! registry deliberately does not try to hide that.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;

/// Fast path: false until the first [`set`] call or until the
/// environment variable has been seen. Lets [`is_active`] bail with one
/// atomic load in the common (nothing armed) case.
static ARMED: AtomicBool = AtomicBool::new(false);

/// The parsed spec: `(name, arg)` pairs. `None` = environment not read
/// yet; `Some(vec)` may be empty (explicitly disarmed).
static SPEC: RwLock<Option<Vec<(String, String)>>> = RwLock::new(None);

fn parse(spec: &str) -> Vec<(String, String)> {
    spec.split(',')
        .filter(|s| !s.is_empty())
        .map(|entry| match entry.split_once('=') {
            Some((name, arg)) => (name.trim().to_string(), arg.trim().to_string()),
            None => (entry.trim().to_string(), String::new()),
        })
        .collect()
}

fn ensure_loaded() {
    let needs_init = SPEC.read().map(|g| g.is_none()).unwrap_or(false);
    if needs_init {
        let mut g = SPEC.write().expect("fail-point registry poisoned");
        if g.is_none() {
            let parsed = std::env::var("CTCP_FAIL_POINT")
                .map(|v| parse(&v))
                .unwrap_or_default();
            if !parsed.is_empty() {
                ARMED.store(true, Ordering::Release);
            }
            *g = Some(parsed);
        }
    }
}

/// Arms the given spec (see the module docs for the format), replacing
/// both any previous [`set`] and the environment variable. `set(None)`
/// disarms every point. Intended for tests; the process environment is
/// the production interface.
pub fn set(spec: Option<&str>) {
    let parsed = spec.map(parse).unwrap_or_default();
    ARMED.store(!parsed.is_empty(), Ordering::Release);
    *SPEC.write().expect("fail-point registry poisoned") = Some(parsed);
}

/// True when fail point `name` is armed (with any argument).
pub fn is_active(name: &str) -> bool {
    arg(name).is_some()
}

/// The argument of fail point `name` when armed: `Some("")` for a bare
/// `name` entry, `Some(arg)` for `name=arg`, `None` when not armed.
pub fn arg(name: &str) -> Option<String> {
    if !ARMED.load(Ordering::Acquire) {
        // One more possibility: the env var is set but not yet parsed.
        ensure_loaded();
        if !ARMED.load(Ordering::Acquire) {
            return None;
        }
    }
    let g = SPEC.read().expect("fail-point registry poisoned");
    g.as_ref()?
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, a)| a.clone())
}

/// Consumes fail point `name`: returns its argument like [`arg`] and
/// disarms that one entry, so the fault fires exactly once per arming.
/// One-shot points (`serve-disconnect`, `serve-partial-write`,
/// `journal-truncate`) use this so a retried operation succeeds — the
/// fault models a transient event, not a broken component.
pub fn take(name: &str) -> Option<String> {
    if !ARMED.load(Ordering::Acquire) {
        ensure_loaded();
        if !ARMED.load(Ordering::Acquire) {
            return None;
        }
    }
    let mut g = SPEC.write().expect("fail-point registry poisoned");
    let spec = g.as_mut()?;
    let i = spec.iter().position(|(n, _)| n == name)?;
    let (_, a) = spec.remove(i);
    if spec.is_empty() {
        ARMED.store(false, Ordering::Release);
    }
    Some(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Fail-point state is process-global; these tests serialise.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn unarmed_by_default_and_after_disarm() {
        let _g = LOCK.lock().unwrap();
        set(None);
        assert!(!is_active("job-panic"));
        assert_eq!(arg("job-panic"), None);
    }

    #[test]
    fn bare_and_valued_entries() {
        let _g = LOCK.lock().unwrap();
        set(Some("stall-retire,job-panic=twolf:fdrt"));
        assert!(is_active("stall-retire"));
        assert_eq!(arg("stall-retire").as_deref(), Some(""));
        assert_eq!(arg("job-panic").as_deref(), Some("twolf:fdrt"));
        assert!(!is_active("store-truncate"));
        set(None);
    }

    #[test]
    fn take_fires_once_then_disarms_that_entry() {
        let _g = LOCK.lock().unwrap();
        set(Some("serve-disconnect=3,stall-retire"));
        assert_eq!(take("serve-disconnect").as_deref(), Some("3"));
        assert_eq!(take("serve-disconnect"), None, "one-shot");
        assert!(is_active("stall-retire"), "other entries survive");
        assert_eq!(take("stall-retire").as_deref(), Some(""));
        assert!(!is_active("stall-retire"));
        set(None);
    }

    #[test]
    fn set_replaces_previous_spec() {
        let _g = LOCK.lock().unwrap();
        set(Some("store-truncate"));
        assert!(is_active("store-truncate"));
        set(Some("stall-retire"));
        assert!(!is_active("store-truncate"));
        assert!(is_active("stall-retire"));
        set(None);
    }
}
