//! Fixed-size ring time-series for the resident service.
//!
//! `/status` originally reported only lifetime counters, which cannot
//! answer "what is the daemon doing *now*": a burst an hour ago and a
//! burst this second are indistinguishable. [`SeriesRing`] keeps one
//! slot per second for the last [`SERIES_SECONDS`] seconds (120 by
//! default), each holding the second's cell completions, request
//! completions, and two log2-bucketed latency histograms (request
//! wall time and per-cell run time). Slots are recycled in place by
//! `sec % capacity` — no allocation after construction, and a scrape
//! merges at most `window` histograms.
//!
//! The log2 millisecond bucketing is shared with the service's
//! lifetime latency histogram: bucket `i` covers
//! `[2^i - 1, 2^(i+1) - 2]` ms, so [`bucket_upper_ms`] gives the
//! Prometheus `le` upper bound and [`bucket_lower_ms`] the
//! conservative lower bound used for percentile reporting.

use crate::metrics::{Histogram, HIST_BUCKETS};

/// Seconds of history a default-sized ring retains.
pub const SERIES_SECONDS: usize = 120;

/// Maps a millisecond latency onto its log2 bucket index.
pub fn latency_bucket(ms: u64) -> u64 {
    (ms + 1).ilog2() as u64
}

/// Inclusive lower bound (ms) of log2 bucket `i`.
pub fn bucket_lower_ms(i: u64) -> u64 {
    (1u64 << i.min(62)) - 1
}

/// Inclusive upper bound (ms) of log2 bucket `i`; the last histogram
/// bucket is unbounded and reported as `u64::MAX`.
pub fn bucket_upper_ms(i: u64) -> u64 {
    if i as usize >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (i + 1).min(62)) - 2
    }
}

/// One second of activity.
#[derive(Debug, Clone)]
struct Slot {
    /// Which absolute second this slot currently holds; `u64::MAX`
    /// marks a never-written slot.
    sec: u64,
    cells: u64,
    requests: u64,
    req_lat: Histogram,
    cell_lat: Histogram,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            sec: u64::MAX,
            cells: 0,
            requests: 0,
            req_lat: Histogram::default(),
            cell_lat: Histogram::default(),
        }
    }

    fn reset(&mut self, sec: u64) {
        *self = Slot::empty();
        self.sec = sec;
    }
}

/// A windowed merge of the ring, ready for rate / percentile queries.
#[derive(Debug, Clone)]
pub struct SeriesWindow {
    /// Window length in seconds the merge covered.
    pub seconds: u64,
    /// Cells completed inside the window.
    pub cells: u64,
    /// Requests completed inside the window.
    pub requests: u64,
    /// Merged request-latency histogram (log2 ms buckets).
    pub req_lat: Histogram,
    /// Merged per-cell latency histogram (log2 ms buckets).
    pub cell_lat: Histogram,
}

impl SeriesWindow {
    /// Cell completions per second over the window.
    pub fn cells_per_sec(&self) -> f64 {
        if self.seconds == 0 {
            0.0
        } else {
            self.cells as f64 / self.seconds as f64
        }
    }

    /// Conservative request-latency percentile in ms (bucket lower
    /// bound, matching `/status`'s lifetime percentiles). `p` is in
    /// percent, e.g. `95.0`.
    pub fn req_percentile_ms(&self, p: f64) -> u64 {
        bucket_lower_ms(self.req_lat.percentile(p))
    }

    /// Conservative per-cell latency percentile in ms.
    pub fn cell_percentile_ms(&self, p: f64) -> u64 {
        bucket_lower_ms(self.cell_lat.percentile(p))
    }
}

/// The ring itself. All methods take the caller's clock as an
/// absolute second so the ring never reads wall time — that keeps it
/// deterministic under test and free of syscalls on the hot path.
#[derive(Debug)]
pub struct SeriesRing {
    slots: Vec<Slot>,
}

impl SeriesRing {
    /// A ring holding `seconds` one-second slots (min 1).
    pub fn new(seconds: usize) -> SeriesRing {
        SeriesRing {
            slots: vec![Slot::empty(); seconds.max(1)],
        }
    }

    fn slot(&mut self, sec: u64) -> &mut Slot {
        let idx = (sec as usize) % self.slots.len();
        let slot = &mut self.slots[idx];
        if slot.sec != sec {
            slot.reset(sec);
        }
        slot
    }

    /// Records one cell completion that took `took_ms`.
    pub fn record_cell(&mut self, sec: u64, took_ms: u64) {
        let s = self.slot(sec);
        s.cells += 1;
        s.cell_lat.observe(latency_bucket(took_ms));
    }

    /// Records one completed request with wall latency `latency_ms`.
    pub fn record_request(&mut self, sec: u64, latency_ms: u64) {
        let s = self.slot(sec);
        s.requests += 1;
        s.req_lat.observe(latency_bucket(latency_ms));
    }

    /// Merges the slots covering `(now_sec - window, now_sec]`. Slots
    /// recycled for older seconds are skipped, so a freshly idle ring
    /// reports zero activity rather than stale history.
    pub fn window(&self, now_sec: u64, window: u64) -> SeriesWindow {
        let window = window.max(1).min(self.slots.len() as u64);
        let oldest = now_sec.saturating_sub(window - 1);
        let mut out = SeriesWindow {
            seconds: window,
            cells: 0,
            requests: 0,
            req_lat: Histogram::default(),
            cell_lat: Histogram::default(),
        };
        for slot in &self.slots {
            if slot.sec == u64::MAX || slot.sec < oldest || slot.sec > now_sec {
                continue;
            }
            out.cells += slot.cells;
            out.requests += slot.requests;
            merge(&mut out.req_lat, &slot.req_lat);
            merge(&mut out.cell_lat, &slot.cell_lat);
        }
        out
    }
}

fn merge(into: &mut Histogram, from: &Histogram) {
    for i in 0..HIST_BUCKETS {
        into.counts[i] += from.counts[i];
    }
    into.total += from.total;
    into.sum += from.sum;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_consistent_with_bucketing() {
        for ms in [0, 1, 2, 3, 10, 100, 4095, 4096] {
            let b = latency_bucket(ms);
            assert!(bucket_lower_ms(b) <= ms, "{ms}");
            assert!(ms <= bucket_upper_ms(b), "{ms}");
        }
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(bucket_lower_ms(0), 0);
        assert_eq!(bucket_upper_ms(0), 0);
        assert_eq!(bucket_upper_ms(1), 2);
        assert_eq!(bucket_upper_ms((HIST_BUCKETS - 1) as u64), u64::MAX);
    }

    #[test]
    fn window_counts_only_recent_seconds() {
        let mut ring = SeriesRing::new(4);
        ring.record_cell(10, 5);
        ring.record_cell(10, 5);
        ring.record_cell(12, 7);
        ring.record_request(12, 40);
        let w = ring.window(12, 4);
        assert_eq!(w.cells, 3);
        assert_eq!(w.requests, 1);
        assert!(w.cells_per_sec() > 0.7 && w.cells_per_sec() < 0.8);
        // Narrow window excludes second 10.
        let w = ring.window(12, 2);
        assert_eq!(w.cells, 1);
        // Far future: everything aged out.
        let w = ring.window(1000, 4);
        assert_eq!(w.cells, 0);
        assert_eq!(w.requests, 0);
    }

    #[test]
    fn slots_recycle_in_place() {
        let mut ring = SeriesRing::new(2);
        ring.record_cell(0, 1);
        ring.record_cell(1, 1);
        // Second 2 reuses second 0's slot.
        ring.record_cell(2, 1);
        let w = ring.window(2, 2);
        assert_eq!(w.cells, 2, "seconds 1 and 2 only");
        let w = ring.window(2, 10);
        assert_eq!(w.seconds, 2, "window clamps to capacity");
    }

    #[test]
    fn window_percentiles_use_bucket_lower_bounds() {
        let mut ring = SeriesRing::new(8);
        for _ in 0..99 {
            ring.record_request(5, 10);
        }
        ring.record_request(5, 4000);
        let w = ring.window(5, 8);
        assert_eq!(
            w.req_percentile_ms(50.0),
            bucket_lower_ms(latency_bucket(10))
        );
        assert_eq!(
            w.req_percentile_ms(100.0),
            bucket_lower_ms(latency_bucket(4000))
        );
    }
}
