//! Structured, leveled JSON logging for the resident service.
//!
//! One JSON object per line, written to stderr by default or to a
//! file chosen with `ctcp serve --log-file`. The level filter is a
//! process-global atomic read before any formatting happens, so a
//! disabled level costs one relaxed load and nothing else — the
//! no-observer-effect guarantee the serve tests pin down. The filter
//! is seeded from the `CTCP_LOG` environment variable
//! (`off|error|warn|info|debug`, default `warn`) and can be
//! overridden programmatically with [`set_level`].
//!
//! Records look like:
//!
//! ```json
//! {"ts_ms":1754700000000,"level":"warn","target":"serve","msg":"slow cell","token":"00ff..","took_ms":412}
//! ```
//!
//! `target` names the subsystem (`serve`, `sched`, `journal`, …) and
//! the caller-supplied fields carry the correlation id (`token`) so
//! one request's records can be grepped across layers. The last few
//! warn/error records are additionally kept in a small in-memory ring
//! ([`recent`]) so `/status` can expose a log tail to `ctcp top`
//! without the daemon ever re-reading its own log file.

use crate::json::Value;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Severity levels, ordered so that a numeric comparison implements
/// the filter: a record is emitted when `record level <= filter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is emitted, ever.
    Off = 0,
    /// Unrecoverable request or daemon faults.
    Error = 1,
    /// Degradations the operator should know about (default filter).
    Warn = 2,
    /// Request lifecycle milestones.
    Info = 3,
    /// Per-cell chatter.
    Debug = 4,
}

impl Level {
    /// The lowercase wire name used in records and in `CTCP_LOG`.
    pub fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    /// Parses a `CTCP_LOG` / `--log-level` word, case-insensitively.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// 255 means "not initialised yet"; first use reads `CTCP_LOG`.
static LEVEL: AtomicU8 = AtomicU8::new(u8::MAX);

/// `None` sinks to stderr; `Some(file)` appends to the chosen file.
static SINK: OnceLock<Mutex<Option<std::fs::File>>> = OnceLock::new();

/// Ring of the most recent warn/error records, oldest first once full.
static RECENT: OnceLock<Mutex<Vec<Value>>> = OnceLock::new();

/// How many warn/error records [`recent`] retains.
pub const RECENT_CAP: usize = 32;

fn sink() -> MutexGuard<'static, Option<std::fs::File>> {
    let m = SINK.get_or_init(|| Mutex::new(None));
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn recent_ring() -> MutexGuard<'static, Vec<Value>> {
    let m = RECENT.get_or_init(|| Mutex::new(Vec::new()));
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The current filter level, initialising from `CTCP_LOG` on first use.
pub fn level() -> Level {
    let raw = LEVEL.load(Ordering::Relaxed);
    if raw != u8::MAX {
        return decode(raw);
    }
    let from_env = std::env::var("CTCP_LOG")
        .ok()
        .and_then(|s| Level::parse(&s))
        .unwrap_or(Level::Warn);
    // A racing set_level wins: only replace the sentinel.
    let _ = LEVEL.compare_exchange(
        u8::MAX,
        from_env as u8,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    decode(LEVEL.load(Ordering::Relaxed))
}

fn decode(raw: u8) -> Level {
    match raw {
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        _ => Level::Off,
    }
}

/// Overrides the filter (e.g. from `ctcp serve --log-level`).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Redirects records to `path` (append mode) instead of stderr.
pub fn set_file(path: &str) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    *sink() = Some(file);
    Ok(())
}

/// True when a record at `l` would be emitted — callers can guard
/// expensive field construction behind this.
pub fn enabled(l: Level) -> bool {
    l != Level::Off && l <= level()
}

/// Milliseconds since the Unix epoch, 0 if the clock is broken.
fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Emits one structured record. `fields` are appended after the
/// standard `ts_ms`/`level`/`target`/`msg` keys; use a `token` field
/// for the per-request correlation id.
pub fn log(l: Level, target: &str, msg: &str, fields: &[(&str, Value)]) {
    if !enabled(l) {
        return;
    }
    let mut obj = vec![
        ("ts_ms".to_string(), Value::u64(now_ms())),
        ("level".to_string(), Value::str(l.name())),
        ("target".to_string(), Value::str(target)),
        ("msg".to_string(), Value::str(msg)),
    ];
    for (k, v) in fields {
        obj.push((k.to_string(), v.clone()));
    }
    let record = Value::Obj(obj);
    if l <= Level::Warn {
        let mut ring = recent_ring();
        if ring.len() >= RECENT_CAP {
            ring.remove(0);
        }
        ring.push(record.clone());
    }
    let mut line = record.render();
    line.push('\n');
    let mut guard = sink();
    match guard.as_mut() {
        Some(file) => {
            let _ = file.write_all(line.as_bytes());
        }
        None => {
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
    }
}

/// [`log`] at [`Level::Error`].
pub fn error(target: &str, msg: &str, fields: &[(&str, Value)]) {
    log(Level::Error, target, msg, fields);
}

/// [`log`] at [`Level::Warn`].
pub fn warn(target: &str, msg: &str, fields: &[(&str, Value)]) {
    log(Level::Warn, target, msg, fields);
}

/// [`log`] at [`Level::Info`].
pub fn info(target: &str, msg: &str, fields: &[(&str, Value)]) {
    log(Level::Info, target, msg, fields);
}

/// [`log`] at [`Level::Debug`].
pub fn debug(target: &str, msg: &str, fields: &[(&str, Value)]) {
    log(Level::Debug, target, msg, fields);
}

/// The most recent warn/error records, oldest first. `/status`
/// serves these as `recent_logs` for the `ctcp top` log tail.
pub fn recent() -> Vec<Value> {
    recent_ring().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Level state is process-global; these tests serialise on a lock
    // and restore the filter so other tests see the default.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Debug);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::Debug.name(), "debug");
    }

    #[test]
    fn filter_gates_emission_and_recent_ring_holds_warnings() {
        let _g = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_file("/dev/null").ok();
        set_level(Level::Off);
        let before = recent().len();
        warn("test", "suppressed", &[]);
        assert_eq!(recent().len(), before, "off must emit nothing");
        assert!(!enabled(Level::Error));

        set_level(Level::Warn);
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        warn("test", "kept", &[("token", Value::str("00ff"))]);
        let ring = recent();
        let last = ring.last().expect("ring entry");
        assert_eq!(last.get("msg").and_then(Value::as_str), Some("kept"));
        assert_eq!(last.get("token").and_then(Value::as_str), Some("00ff"));
        assert_eq!(last.get("level").and_then(Value::as_str), Some("warn"));
        assert!(last.get("ts_ms").and_then(Value::as_u64).is_some());
        // Info records never enter the warn/error ring.
        let n = recent().len();
        set_level(Level::Debug);
        info("test", "chatty", &[]);
        assert_eq!(recent().len(), n);
        set_level(Level::Warn);
    }

    #[test]
    fn recent_ring_is_bounded() {
        let _g = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_file("/dev/null").ok();
        set_level(Level::Warn);
        for i in 0..(RECENT_CAP + 8) {
            warn("test", &format!("fill-{i}"), &[]);
        }
        assert_eq!(recent().len(), RECENT_CAP);
    }
}
