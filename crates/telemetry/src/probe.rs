//! The probe trait the pipeline reports into.
//!
//! Every hook has an empty default body, so a sink that observes
//! nothing ([`NullProbe`]) is a zero-sized type whose calls compile to
//! nothing. Components additionally cache `enabled()` at attach time so
//! the *off* path costs one branch per hook site, not a virtual call.

use crate::attrib::{InstAttrib, RetireSlotKind};
use crate::event::InstTimeline;
use crate::metrics::{Counter, Hist};

/// A sink for pipeline telemetry.
///
/// Methods take `&self`: implementations that accumulate (see
/// `Recorder`) use interior mutability, which lets one probe be shared
/// by the simulation front end and the execution engine without
/// threading `&mut` borrows through the pipeline.
pub trait Probe {
    /// Whether this probe wants any data at all. Components may skip
    /// hook sites (and any work to compute their arguments) when false.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `delta` to counter `c`.
    fn counter(&self, c: Counter, delta: u64) {
        let _ = (c, delta);
    }

    /// Records one histogram observation.
    fn observe(&self, h: Hist, value: u64) {
        let _ = (h, value);
    }

    /// Reports a fetch group of `size` instructions delivered at cycle
    /// `ts` from the trace cache (`from_tc`) or the icache.
    fn fetch_group(&self, ts: u64, pc: u64, size: u32, from_tc: bool) {
        let _ = (ts, pc, size, from_tc);
    }

    /// Reports the full stage timeline of one retired instruction.
    fn timeline(&self, t: &InstTimeline) {
        let _ = t;
    }

    /// Reports one retired instruction's lifecycle and operand
    /// provenance for cycle attribution.
    fn retire_attrib(&self, rec: &InstAttrib) {
        let _ = rec;
    }

    /// Accounts one cycle of retire bandwidth: `retired` slots used
    /// and `stalled` slots lost to `stall` at cycle `now`.
    fn retire_slots(&self, now: u64, retired: u64, stalled: u64, stall: RetireSlotKind) {
        let _ = (now, retired, stalled, stall);
    }
}

/// The default sink: observes nothing, costs nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProbe;

impl Probe for NullProbe {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_disabled_and_inert() {
        let p = NullProbe;
        assert!(!p.enabled());
        p.counter(Counter::Retired, 1);
        p.observe(Hist::TraceSize, 4);
        p.fetch_group(0, 0x40, 8, true);
        p.timeline(&InstTimeline {
            seq: 1,
            pc: 0x40,
            cluster: 0,
            renamed_at: 1,
            dispatched_at: 2,
            exec_start: 3,
            complete_at: 4,
            retired_at: 5,
        });
        p.retire_attrib(&InstAttrib {
            seq: 1,
            pc: 0x40,
            cluster: 0,
            renamed_at: 1,
            dispatched_at: 2,
            exec_start: 3,
            complete_at: 4,
            retired_at: 5,
            srcs: [crate::attrib::SrcAttrib::default(); 2],
            critical_src: None,
        });
        p.retire_slots(5, 4, 12, RetireSlotKind::InterCluster);
    }
}
