//! Chrome trace-event JSON export.
//!
//! The output is the "JSON array format" understood by
//! `about://tracing` and [Perfetto]: one complete (`"ph":"X"`) event
//! per pipeline span, with `pid` 0 and one `tid` lane per cluster plus
//! dedicated lanes for the front end. Events are emitted sorted by
//! `(tid, ts)` so timestamps are monotone within every lane — viewers
//! do not require this, but it makes the file diffable and lets the
//! validator below double as a regression test.
//!
//! [Perfetto]: https://perfetto.dev

use crate::event::{FlowEvent, PipeStage, SpanEvent, FETCH_LANE};
use crate::json::Value;
use std::collections::{HashMap, HashSet};

/// Lane (tid) assignment for one event: clusters keep their index,
/// front-end lanes are pushed above every plausible cluster count.
fn tid_of(ev: &SpanEvent) -> u64 {
    u64::from(ev.cluster)
}

fn lane_name(tid: u64) -> String {
    if tid == u64::from(FETCH_LANE) {
        "fetch: trace cache".to_string()
    } else if tid == u64::from(FETCH_LANE - 1) {
        "fetch: icache".to_string()
    } else {
        format!("cluster {tid}")
    }
}

/// Renders `events` as a Chrome trace-event JSON array.
///
/// The events need not be ordered; the exporter sorts a copy by
/// `(tid, ts, seq)`. Thread-name metadata events (`"ph":"M"`) are
/// emitted first so lanes are labelled in the viewer.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    chrome_trace_with_flows(events, &[])
}

/// Renders `events` plus inter-cluster forward `flows` as a Chrome
/// trace-event JSON array. Each flow becomes a `"s"`/`"f"` pair tying
/// the producer's completion on its cluster lane to the value's arrival
/// on the consumer's lane — the viewer draws them as arrows.
pub fn chrome_trace_with_flows(events: &[SpanEvent], flows: &[FlowEvent]) -> String {
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (tid_of(e), e.ts, e.seq));

    let mut out: Vec<Value> = Vec::new();
    let mut lanes: Vec<u64> = sorted.iter().map(|e| tid_of(e)).collect();
    lanes.dedup();
    for tid in &lanes {
        out.push(Value::Obj(vec![
            ("name".into(), Value::str("thread_name")),
            ("ph".into(), Value::str("M")),
            ("pid".into(), Value::u64(0)),
            ("tid".into(), Value::u64(*tid)),
            (
                "args".into(),
                Value::Obj(vec![("name".into(), Value::str(&lane_name(*tid)))]),
            ),
        ]));
    }
    for ev in sorted {
        let mut args = vec![("pc".into(), Value::str(&format!("{:#x}", ev.pc)))];
        if ev.stage == PipeStage::Fetch {
            args.push(("group_size".into(), Value::u64(ev.seq)));
        } else {
            args.push(("seq".into(), Value::u64(ev.seq)));
        }
        out.push(Value::Obj(vec![
            ("name".into(), Value::str(ev.stage.name())),
            ("cat".into(), Value::str("pipeline")),
            ("ph".into(), Value::str("X")),
            ("ts".into(), Value::u64(ev.ts)),
            ("dur".into(), Value::u64(ev.dur.max(1))),
            ("pid".into(), Value::u64(0)),
            ("tid".into(), Value::u64(tid_of(ev))),
            ("args".into(), Value::Obj(args)),
        ]));
    }
    let mut flows: Vec<&FlowEvent> = flows.iter().collect();
    flows.sort_by_key(|f| f.id);
    for f in flows {
        let args = Value::Obj(vec![
            ("seq".into(), Value::u64(f.seq)),
            ("pc".into(), Value::str(&format!("{:#x}", f.pc))),
        ]);
        out.push(Value::Obj(vec![
            ("name".into(), Value::str("forward")),
            ("cat".into(), Value::str("forward")),
            ("ph".into(), Value::str("s")),
            ("ts".into(), Value::u64(f.from_ts)),
            ("pid".into(), Value::u64(0)),
            ("tid".into(), Value::u64(u64::from(f.from_cluster))),
            ("id".into(), Value::u64(f.id)),
            ("args".into(), args.clone()),
        ]));
        out.push(Value::Obj(vec![
            ("name".into(), Value::str("forward")),
            ("cat".into(), Value::str("forward")),
            ("ph".into(), Value::str("f")),
            ("bp".into(), Value::str("e")),
            ("ts".into(), Value::u64(f.to_ts)),
            ("pid".into(), Value::u64(0)),
            ("tid".into(), Value::u64(u64::from(f.to_cluster))),
            ("id".into(), Value::u64(f.id)),
            ("args".into(), args),
        ]));
    }
    Value::Arr(out).render()
}

/// One request-scoped service span: admission, queueing, a cell's run
/// on a worker, or a client stream/drain — free-form `name`, one lane
/// per actor (service lane, one lane per pool worker).
///
/// Unlike [`SpanEvent`] these are not pipeline stages; the service
/// records them with wall-clock microsecond timestamps relative to
/// daemon start and exports a request's spans on demand via
/// `GET /trace/<token>`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReqSpan {
    /// Span label shown in the viewer (e.g. `"admit"`, `"cell gzip/fdrt"`).
    pub name: String,
    /// Lane (`tid`) the span renders on.
    pub lane: u64,
    /// Human label for the lane's thread-name metadata.
    pub lane_name: String,
    /// Start, µs since daemon start.
    pub ts_us: u64,
    /// Duration in µs (rendered as at least 1).
    pub dur_us: u64,
    /// Extra key/values for the viewer's args pane (token, workload, …).
    pub args: Vec<(String, Value)>,
}

/// Renders request spans as a Chrome trace-event JSON array that
/// [`validate_chrome_trace`] accepts: thread-name metadata first, then
/// `"X"` spans sorted by `(lane, ts)`. Because cell durations are
/// measured in the worker but recorded when the progress event reaches
/// the service, two spans on one lane can overlap by scheduling skew;
/// the exporter clamps each span's start to its lane predecessor's end
/// so lanes are strictly sequential, which viewers render correctly
/// and tests can assert.
pub fn request_trace(spans: &[ReqSpan]) -> String {
    let mut sorted: Vec<ReqSpan> = spans.to_vec();
    sorted.sort_by_key(|s| (s.lane, s.ts_us));

    let mut out: Vec<Value> = Vec::new();
    let mut seen_lanes: HashSet<u64> = HashSet::new();
    for sp in &sorted {
        if seen_lanes.insert(sp.lane) {
            out.push(Value::Obj(vec![
                ("name".into(), Value::str("thread_name")),
                ("ph".into(), Value::str("M")),
                ("pid".into(), Value::u64(0)),
                ("tid".into(), Value::u64(sp.lane)),
                (
                    "args".into(),
                    Value::Obj(vec![("name".into(), Value::str(&sp.lane_name))]),
                ),
            ]));
        }
    }
    let mut lane_end: HashMap<u64, u64> = HashMap::new();
    for sp in &sorted {
        let end = lane_end.entry(sp.lane).or_insert(0);
        let ts = sp.ts_us.max(*end);
        let dur = sp.dur_us.max(1);
        *end = ts + dur;
        out.push(Value::Obj(vec![
            ("name".into(), Value::str(&sp.name)),
            ("cat".into(), Value::str("request")),
            ("ph".into(), Value::str("X")),
            ("ts".into(), Value::u64(ts)),
            ("dur".into(), Value::u64(dur)),
            ("pid".into(), Value::u64(0)),
            ("tid".into(), Value::u64(sp.lane)),
            ("args".into(), Value::Obj(sp.args.clone())),
        ]));
    }
    Value::Arr(out).render()
}

/// What [`validate_chrome_trace`] learned about a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Complete (`"X"`) span events.
    pub spans: usize,
    /// Metadata (`"M"`) events.
    pub metadata: usize,
    /// Distinct `(pid, tid)` lanes.
    pub lanes: usize,
    /// Matched flow (`"s"`/`"f"`) pairs — inter-cluster forwards.
    pub flows: usize,
}

/// Checks that `text` is a well-formed Chrome trace-event JSON array:
/// every element is an object with a `ph` phase, every `"X"` event
/// carries `name`/`ts`/`dur`/`pid`/`tid`, `ts` is monotonically
/// non-decreasing within each `(pid, tid)` lane, and every flow
/// (`"s"`/`"f"`) is a matched pair — same id, start no later than
/// finish, and a consumer that actually retired (its `seq` has a
/// `"retire"` span in the file).
///
/// # Errors
///
/// Returns a message naming the first offending event.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceSummary, String> {
    let v = Value::parse(text)?;
    let events = v.as_arr().ok_or("trace root is not a JSON array")?;
    let mut last_ts: Vec<((u64, u64), u64)> = Vec::new();
    let mut flow_starts: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut flow_ends: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut retired_seqs: HashSet<u64> = HashSet::new();
    let mut summary = ChromeTraceSummary {
        spans: 0,
        metadata: 0,
        lanes: 0,
        flows: 0,
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        match ph {
            "M" => summary.metadata += 1,
            "X" => {
                summary.spans += 1;
                let name = ev
                    .get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: X event missing name"))?;
                if name == "retire" {
                    if let Some(seq) = ev
                        .get("args")
                        .and_then(|a| a.get("seq"))
                        .and_then(Value::as_u64)
                    {
                        retired_seqs.insert(seq);
                    }
                }
                let ts = ev
                    .get("ts")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: X event missing ts"))?;
                ev.get("dur")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: X event missing dur"))?;
                let pid = ev
                    .get("pid")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: X event missing pid"))?;
                let tid = ev
                    .get("tid")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: X event missing tid"))?;
                match last_ts.iter_mut().find(|(lane, _)| *lane == (pid, tid)) {
                    Some((_, last)) => {
                        if ts < *last {
                            return Err(format!(
                                "event {i}: ts {ts} goes backwards in lane pid={pid} tid={tid} \
                                 (previous ts {last})"
                            ));
                        }
                        *last = ts;
                    }
                    None => last_ts.push(((pid, tid), ts)),
                }
            }
            "s" | "f" => {
                ev.get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: flow event missing name"))?;
                let id = ev
                    .get("id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: flow event missing id"))?;
                let ts = ev
                    .get("ts")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: flow event missing ts"))?;
                ev.get("pid")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: flow event missing pid"))?;
                ev.get("tid")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: flow event missing tid"))?;
                let seq = ev
                    .get("args")
                    .and_then(|a| a.get("seq"))
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: flow event missing args.seq"))?;
                let map = if ph == "s" {
                    &mut flow_starts
                } else {
                    &mut flow_ends
                };
                if map.insert(id, (ts, seq)).is_some() {
                    return Err(format!("event {i}: duplicate flow {ph:?} for id {id}"));
                }
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    for (id, (ts_s, seq_s)) in &flow_starts {
        let Some((ts_f, seq_f)) = flow_ends.get(id) else {
            return Err(format!("flow {id}: start without matching finish"));
        };
        if seq_f != seq_s {
            return Err(format!(
                "flow {id}: start seq {seq_s} does not match finish seq {seq_f}"
            ));
        }
        if ts_f < ts_s {
            return Err(format!(
                "flow {id}: finish ts {ts_f} precedes start ts {ts_s}"
            ));
        }
        if !retired_seqs.contains(seq_s) {
            return Err(format!(
                "flow {id}: consumer seq {seq_s} has no retire span in the trace"
            ));
        }
    }
    for id in flow_ends.keys() {
        if !flow_starts.contains_key(id) {
            return Err(format!("flow {id}: finish without matching start"));
        }
    }
    summary.flows = flow_starts.len();
    summary.lanes = last_ts.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{InstTimeline, SpanEvent};
    use crate::probe::Probe;
    use crate::recorder::Recorder;

    #[test]
    fn exported_trace_validates_and_orders_lanes() {
        let r = Recorder::default();
        // Deliberately out of order and across clusters.
        for seq in [5u64, 1, 3, 2, 4] {
            r.timeline(&InstTimeline {
                seq,
                pc: 0x1000 + seq * 4,
                cluster: (seq % 2) as u8,
                renamed_at: seq * 10,
                dispatched_at: seq * 10 + 1,
                exec_start: seq * 10 + 3,
                complete_at: seq * 10 + 6,
                retired_at: seq * 10 + 9,
            });
        }
        r.fetch_group(2, 0x1000, 8, true);
        r.fetch_group(7, 0x1020, 4, false);
        let text = chrome_trace(&r.events());
        let summary = validate_chrome_trace(&text).expect("exporter output must validate");
        assert_eq!(summary.spans, 5 * 4 + 2);
        assert_eq!(summary.lanes, 4); // two clusters + two fetch lanes
        assert_eq!(summary.metadata, 4);
    }

    #[test]
    fn validator_rejects_backwards_timestamps() {
        let mk = |ts| SpanEvent {
            ts,
            dur: 1,
            stage: PipeStage::Execute,
            seq: ts,
            pc: 0,
            cluster: 0,
        };
        // Hand-build an unsorted file: same lane, ts goes 5 then 2.
        let bad = format!("[{},{}]", span_json(&mk(5)), span_json(&mk(2)),);
        let err = validate_chrome_trace(&bad).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
    }

    fn span_json(ev: &SpanEvent) -> String {
        Value::Obj(vec![
            ("name".into(), Value::str(ev.stage.name())),
            ("ph".into(), Value::str("X")),
            ("ts".into(), Value::u64(ev.ts)),
            ("dur".into(), Value::u64(ev.dur)),
            ("pid".into(), Value::u64(0)),
            ("tid".into(), Value::u64(u64::from(ev.cluster))),
        ])
        .render()
    }

    #[test]
    fn validator_rejects_non_array_and_unknown_phase() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"[{"ph":"Q"}]"#).is_err());
        assert!(validate_chrome_trace(r#"[{"ts":1}]"#).is_err());
    }

    #[test]
    fn flow_events_pair_and_require_a_retired_consumer() {
        use crate::event::FlowEvent;
        let retire = SpanEvent {
            ts: 10,
            dur: 2,
            stage: PipeStage::Retire,
            seq: 3,
            pc: 0x40,
            cluster: 1,
        };
        let flow = FlowEvent {
            id: 1,
            from_ts: 4,
            from_cluster: 0,
            to_ts: 8,
            to_cluster: 1,
            seq: 3,
            pc: 0x40,
        };
        let text = chrome_trace_with_flows(&[retire], &[flow]);
        let summary = validate_chrome_trace(&text).expect("flow trace must validate");
        assert_eq!(summary.flows, 1);
        assert_eq!(summary.spans, 1);

        // A flow whose consumer never retired must be rejected.
        let orphan = FlowEvent { seq: 99, ..flow };
        let err = validate_chrome_trace(&chrome_trace_with_flows(&[retire], &[orphan]))
            .expect_err("orphan flow must fail");
        assert!(err.contains("no retire span"), "{err}");
    }

    #[test]
    fn validator_rejects_unmatched_flow_halves() {
        let s = r#"[{"name":"forward","ph":"s","ts":1,"pid":0,"tid":0,"id":7,"args":{"seq":1}}]"#;
        let err = validate_chrome_trace(s).unwrap_err();
        assert!(err.contains("start without matching finish"), "{err}");
        let f = r#"[{"name":"forward","ph":"f","ts":1,"pid":0,"tid":0,"id":7,"args":{"seq":1}}]"#;
        let err = validate_chrome_trace(f).unwrap_err();
        assert!(err.contains("finish without matching start"), "{err}");
    }

    #[test]
    fn empty_event_set_exports_an_empty_valid_trace() {
        let text = chrome_trace(&[]);
        let summary = validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.spans, 0);
        assert_eq!(summary.lanes, 0);
    }

    #[test]
    fn request_trace_validates_labels_lanes_and_untangles_overlap() {
        let sp = |name: &str, lane: u64, lane_name: &str, ts: u64, dur: u64| ReqSpan {
            name: name.into(),
            lane,
            lane_name: lane_name.into(),
            ts_us: ts,
            dur_us: dur,
            args: vec![("token".into(), Value::str("00ff"))],
        };
        let spans = vec![
            sp("cell gzip/fdrt", 1, "worker 0", 100, 50),
            sp("admit", 0, "service", 0, 10),
            // Overlaps its lane predecessor by 20µs of recording skew.
            sp("cell twolf/fdrt", 1, "worker 0", 130, 40),
            sp("stream", 0, "service", 10, 200),
        ];
        let text = request_trace(&spans);
        let summary = validate_chrome_trace(&text).expect("request trace must validate");
        assert_eq!(summary.spans, 4);
        assert_eq!(summary.lanes, 2);
        assert_eq!(summary.metadata, 2);
        // The overlapping cell span was pushed past its predecessor.
        let doc = Value::parse(&text).unwrap();
        let arr = doc.as_arr().unwrap();
        let second_cell = arr
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("cell twolf/fdrt"))
            .unwrap();
        assert_eq!(second_cell.get("ts").and_then(Value::as_u64), Some(150));
        // Zero-duration spans render as 1µs.
        let text = request_trace(&[sp("admit", 0, "service", 5, 0)]);
        assert!(validate_chrome_trace(&text).is_ok());
        assert!(text.contains("\"dur\":1"));
    }
}
