//! Chrome trace-event JSON export.
//!
//! The output is the "JSON array format" understood by
//! `about://tracing` and [Perfetto]: one complete (`"ph":"X"`) event
//! per pipeline span, with `pid` 0 and one `tid` lane per cluster plus
//! dedicated lanes for the front end. Events are emitted sorted by
//! `(tid, ts)` so timestamps are monotone within every lane — viewers
//! do not require this, but it makes the file diffable and lets the
//! validator below double as a regression test.
//!
//! [Perfetto]: https://perfetto.dev

use crate::event::{PipeStage, SpanEvent, FETCH_LANE};
use crate::json::Value;

/// Lane (tid) assignment for one event: clusters keep their index,
/// front-end lanes are pushed above every plausible cluster count.
fn tid_of(ev: &SpanEvent) -> u64 {
    u64::from(ev.cluster)
}

fn lane_name(tid: u64) -> String {
    if tid == u64::from(FETCH_LANE) {
        "fetch: trace cache".to_string()
    } else if tid == u64::from(FETCH_LANE - 1) {
        "fetch: icache".to_string()
    } else {
        format!("cluster {tid}")
    }
}

/// Renders `events` as a Chrome trace-event JSON array.
///
/// The events need not be ordered; the exporter sorts a copy by
/// `(tid, ts, seq)`. Thread-name metadata events (`"ph":"M"`) are
/// emitted first so lanes are labelled in the viewer.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (tid_of(e), e.ts, e.seq));

    let mut out: Vec<Value> = Vec::new();
    let mut lanes: Vec<u64> = sorted.iter().map(|e| tid_of(e)).collect();
    lanes.dedup();
    for tid in &lanes {
        out.push(Value::Obj(vec![
            ("name".into(), Value::str("thread_name")),
            ("ph".into(), Value::str("M")),
            ("pid".into(), Value::u64(0)),
            ("tid".into(), Value::u64(*tid)),
            (
                "args".into(),
                Value::Obj(vec![("name".into(), Value::str(&lane_name(*tid)))]),
            ),
        ]));
    }
    for ev in sorted {
        let mut args = vec![("pc".into(), Value::str(&format!("{:#x}", ev.pc)))];
        if ev.stage == PipeStage::Fetch {
            args.push(("group_size".into(), Value::u64(ev.seq)));
        } else {
            args.push(("seq".into(), Value::u64(ev.seq)));
        }
        out.push(Value::Obj(vec![
            ("name".into(), Value::str(ev.stage.name())),
            ("cat".into(), Value::str("pipeline")),
            ("ph".into(), Value::str("X")),
            ("ts".into(), Value::u64(ev.ts)),
            ("dur".into(), Value::u64(ev.dur.max(1))),
            ("pid".into(), Value::u64(0)),
            ("tid".into(), Value::u64(tid_of(ev))),
            ("args".into(), Value::Obj(args)),
        ]));
    }
    Value::Arr(out).render()
}

/// What [`validate_chrome_trace`] learned about a trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Complete (`"X"`) span events.
    pub spans: usize,
    /// Metadata (`"M"`) events.
    pub metadata: usize,
    /// Distinct `(pid, tid)` lanes.
    pub lanes: usize,
}

/// Checks that `text` is a well-formed Chrome trace-event JSON array:
/// every element is an object with a `ph` phase, every `"X"` event
/// carries `name`/`ts`/`dur`/`pid`/`tid`, and `ts` is monotonically
/// non-decreasing within each `(pid, tid)` lane.
///
/// # Errors
///
/// Returns a message naming the first offending event.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceSummary, String> {
    let v = Value::parse(text)?;
    let events = v.as_arr().ok_or("trace root is not a JSON array")?;
    let mut last_ts: Vec<((u64, u64), u64)> = Vec::new();
    let mut summary = ChromeTraceSummary {
        spans: 0,
        metadata: 0,
        lanes: 0,
    };
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        match ph {
            "M" => summary.metadata += 1,
            "X" => {
                summary.spans += 1;
                ev.get("name")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("event {i}: X event missing name"))?;
                let ts = ev
                    .get("ts")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: X event missing ts"))?;
                ev.get("dur")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: X event missing dur"))?;
                let pid = ev
                    .get("pid")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: X event missing pid"))?;
                let tid = ev
                    .get("tid")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: X event missing tid"))?;
                match last_ts.iter_mut().find(|(lane, _)| *lane == (pid, tid)) {
                    Some((_, last)) => {
                        if ts < *last {
                            return Err(format!(
                                "event {i}: ts {ts} goes backwards in lane pid={pid} tid={tid} \
                                 (previous ts {last})"
                            ));
                        }
                        *last = ts;
                    }
                    None => last_ts.push(((pid, tid), ts)),
                }
            }
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    summary.lanes = last_ts.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{InstTimeline, SpanEvent};
    use crate::probe::Probe;
    use crate::recorder::Recorder;

    #[test]
    fn exported_trace_validates_and_orders_lanes() {
        let r = Recorder::default();
        // Deliberately out of order and across clusters.
        for seq in [5u64, 1, 3, 2, 4] {
            r.timeline(&InstTimeline {
                seq,
                pc: 0x1000 + seq * 4,
                cluster: (seq % 2) as u8,
                renamed_at: seq * 10,
                dispatched_at: seq * 10 + 1,
                exec_start: seq * 10 + 3,
                complete_at: seq * 10 + 6,
                retired_at: seq * 10 + 9,
            });
        }
        r.fetch_group(2, 0x1000, 8, true);
        r.fetch_group(7, 0x1020, 4, false);
        let text = chrome_trace(&r.events());
        let summary = validate_chrome_trace(&text).expect("exporter output must validate");
        assert_eq!(summary.spans, 5 * 4 + 2);
        assert_eq!(summary.lanes, 4); // two clusters + two fetch lanes
        assert_eq!(summary.metadata, 4);
    }

    #[test]
    fn validator_rejects_backwards_timestamps() {
        let mk = |ts| SpanEvent {
            ts,
            dur: 1,
            stage: PipeStage::Execute,
            seq: ts,
            pc: 0,
            cluster: 0,
        };
        // Hand-build an unsorted file: same lane, ts goes 5 then 2.
        let bad = format!("[{},{}]", span_json(&mk(5)), span_json(&mk(2)),);
        let err = validate_chrome_trace(&bad).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
    }

    fn span_json(ev: &SpanEvent) -> String {
        Value::Obj(vec![
            ("name".into(), Value::str(ev.stage.name())),
            ("ph".into(), Value::str("X")),
            ("ts".into(), Value::u64(ev.ts)),
            ("dur".into(), Value::u64(ev.dur)),
            ("pid".into(), Value::u64(0)),
            ("tid".into(), Value::u64(u64::from(ev.cluster))),
        ])
        .render()
    }

    #[test]
    fn validator_rejects_non_array_and_unknown_phase() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"[{"ph":"Q"}]"#).is_err());
        assert!(validate_chrome_trace(r#"[{"ts":1}]"#).is_err());
    }

    #[test]
    fn empty_event_set_exports_an_empty_valid_trace() {
        let text = chrome_trace(&[]);
        let summary = validate_chrome_trace(&text).unwrap();
        assert_eq!(summary.spans, 0);
        assert_eq!(summary.lanes, 0);
    }
}
