//! Pipeline telemetry for the CTCP simulator.
//!
//! This crate is the observability layer every other crate reports
//! into, and it sits at the bottom of the workspace dependency graph
//! (it depends on nothing). The pieces:
//!
//! - [`Probe`]: the trait hook the pipeline calls. The default
//!   implementation of every method is a no-op, so the bundled
//!   [`NullProbe`] costs nothing — components also cache
//!   [`Probe::enabled`] so the off path is a single branch.
//! - [`Metrics`]: a closed registry of typed [`Counter`]s and
//!   fixed-bucket [`Histogram`]s ([`Hist`]) — array-indexed, no hashing
//!   or allocation on the hot path.
//! - [`EventRing`]: a preallocated overwrite-oldest ring of pipeline
//!   [`SpanEvent`]s, fed from per-instruction [`InstTimeline`]s with an
//!   interval-sampling mode for long runs.
//! - [`attrib`]: per-instruction lifecycle records ([`InstAttrib`]),
//!   the retirement-driven [`CpiStack`], and the critical-path walker
//!   behind `ctcp analyze`.
//! - [`Recorder`]: the accumulating [`Probe`] combining both.
//! - Exporters: [`chrome_trace`] renders `about://tracing`-loadable
//!   JSON (checked by [`validate_chrome_trace`]), [`metrics_line`]
//!   renders one JSONL metrics record per job.
//! - [`json`]: the workspace's hand-rolled JSON value (the build is
//!   fully offline; there is no serde).
//! - [`failpoint`]: named fault-injection sites (`CTCP_FAIL_POINT`)
//!   used by the crash-injection tests and the verify smoke.
//! - [`log`]: structured leveled JSON logging (`CTCP_LOG`), one
//!   record per line on stderr or a chosen file, with a small
//!   in-memory ring of recent warnings for the service's log tail.
//! - [`series`]: the service's fixed-size ring time-series — one
//!   slot per second for the last two minutes, so `/status` and
//!   `/metrics` can report true rolling rates and percentiles.
//! - [`ReqSpan`] / [`request_trace`]: request-scoped service spans
//!   (admit → queued → cell runs → stream) exported per request as a
//!   Chrome trace via `GET /trace/<token>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrib;
pub mod chrome;
pub mod event;
pub mod failpoint;
pub mod json;
pub mod log;
pub mod metrics;
pub mod probe;
pub mod recorder;
pub mod series;

pub use attrib::{
    walk_critical_path, AttribReport, CpiStack, CritEdge, CriticalSummary, InstAttrib,
    RetireSlotKind, SrcAttrib, SrcKind,
};
pub use chrome::{
    chrome_trace, chrome_trace_with_flows, request_trace, validate_chrome_trace,
    ChromeTraceSummary, ReqSpan,
};
pub use event::{EventRing, FlowEvent, InstTimeline, PipeStage, SpanEvent, FETCH_LANE};
pub use metrics::{metrics_line, Counter, Hist, Histogram, Metrics, HIST_BUCKETS};
pub use probe::{NullProbe, Probe};
pub use recorder::{Recorder, RecorderConfig};
pub use series::{SeriesRing, SeriesWindow, SERIES_SECONDS};
