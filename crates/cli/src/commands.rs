//! Command execution: everything returns the text to print so it can be
//! asserted on in tests.

use crate::args::{
    AnalyzeArgs, Cli, CliError, ClientAction, ClientArgs, Command, ProgramSource, RunArgs,
    ServeArgs, StoreAction, StoreArgs, SweepArgs, TopArgs, TraceArgs, USAGE,
};
use crate::wire;
use ctcp_core::Topology;
use ctcp_harness::{
    failure_table, CellScheduler, Harness, Job, Journal, ProgressSink, ResultStore, Saturated,
    StderrProgress, SweepCell, SweepSpec,
};
use ctcp_isa::{asm, Program};
use ctcp_serve::{
    http, resume_token, Handler, HandlerError, HandlerStats, RequestKind, RunResult, Service,
};
use ctcp_sim::{SimConfig, SimReport, Simulation, Strategy};
use ctcp_telemetry::json::Value;
use ctcp_telemetry::{
    chrome_trace_with_flows, metrics_line, validate_chrome_trace, Counter, Metrics, PipeStage,
    Probe, Recorder, RecorderConfig, RetireSlotKind,
};
use ctcp_workload::Benchmark;
use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::PathBuf;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn load_program(source: &ProgramSource) -> Result<Program, CliError> {
    match source {
        ProgramSource::Bench(name) => Benchmark::by_name(name)
            .map(|b| b.program())
            .ok_or_else(|| CliError(format!("unknown benchmark {name:?} (see `ctcp list`)"))),
        ProgramSource::AsmFile(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?;
            asm::assemble(&text).map_err(|e| CliError(format!("{path}: {e}")))
        }
    }
}

fn config(args: &RunArgs, strategy: Strategy) -> SimConfig {
    let mut c = SimConfig {
        strategy,
        max_insts: args.insts,
        warmup_insts: args.warmup,
        ..SimConfig::default()
    };
    c.engine.geometry.clusters = args.clusters;
    c.engine.geometry.topology = args.topology;
    c.engine.hop_latency = args.hop_latency;
    c
}

fn build_sim<'p>(
    program: &'p Program,
    cfg: SimConfig,
    probe: Option<Rc<dyn Probe>>,
) -> Result<Simulation<'p>, CliError> {
    let mut b = Simulation::builder(program).config(cfg);
    if let Some(p) = probe {
        b = b.probe(p);
    }
    b.build()
        .map_err(|e| CliError(format!("invalid configuration: {e}")))
}

fn simulate(program: &Program, args: &RunArgs, strategy: Strategy) -> Result<SimReport, CliError> {
    build_sim(program, config(args, strategy), None)?
        .try_run()
        .map_err(|e| CliError(e.to_string()))
}

fn describe(source: &ProgramSource) -> String {
    match source {
        ProgramSource::Bench(n) => n.clone(),
        ProgramSource::AsmFile(p) => p.clone(),
    }
}

/// What a command produced: the text for stdout plus the exit code the
/// binary should end with.
///
/// Commands that partially fail — a sweep with crashed cells, a store
/// verify that finds corruption — still have output worth printing, so
/// they cannot be squeezed into `Result<String, CliError>`; the exit
/// code rides alongside the text instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliOutcome {
    /// Text to print to stdout.
    pub output: String,
    /// Process exit code: `0` on full success, `1` when any sweep job
    /// failed or `store verify` found corruption.
    pub exit_code: i32,
}

impl CliOutcome {
    fn ok(output: String) -> CliOutcome {
        CliOutcome {
            output,
            exit_code: 0,
        }
    }
}

/// Executes a parsed command line and returns what to print.
///
/// Thin wrapper over [`execute_outcome`] that drops the exit code —
/// convenient for tests and callers that only care about the text.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown benchmarks, unreadable or invalid
/// assembly files.
pub fn execute(cli: &Cli) -> Result<String, CliError> {
    execute_outcome(cli).map(|o| o.output)
}

/// Executes a parsed command line and returns what to print together
/// with the exit code to end the process with.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown benchmarks, unreadable or invalid
/// assembly files. Partial failures (crashed sweep cells, store
/// corruption) are *not* errors: their output still renders, and the
/// failure surfaces through [`CliOutcome::exit_code`].
pub fn execute_outcome(cli: &Cli) -> Result<CliOutcome, CliError> {
    match &cli.command {
        Command::Sweep(args) => sweep(args),
        Command::Store(args) => store_cmd(args),
        Command::Serve(args) => serve_cmd(args),
        Command::Client(args) => client_cmd(args),
        Command::Top(args) => top_cmd(args),
        _ => plain_text(cli).map(CliOutcome::ok),
    }
}

/// The commands whose output carries no exit-code nuance: they either
/// fully succeed or fail with a [`CliError`].
fn plain_text(cli: &Cli) -> Result<String, CliError> {
    match &cli.command {
        Command::Sweep(_)
        | Command::Store(_)
        | Command::Serve(_)
        | Command::Client(_)
        | Command::Top(_) => {
            unreachable!("handled by execute_outcome")
        }
        Command::Help => Ok(USAGE.to_string()),
        Command::List => {
            let mut out = String::from("SPECint2000-class presets:\n");
            for b in Benchmark::spec_all() {
                out.push_str(&format!("  {}\n", b.name));
            }
            out.push_str("MediaBench-class presets:\n");
            for b in Benchmark::mediabench() {
                out.push_str(&format!("  {}\n", b.name));
            }
            Ok(out)
        }
        Command::Disasm(source) => {
            let program = load_program(source)?;
            Ok(asm::disassemble(&program))
        }
        Command::Run(args) => {
            let program = load_program(&args.source)?;
            let r = simulate(&program, args, args.strategy)?;
            if args.csv {
                Ok(csv_report(&describe(&args.source), &r))
            } else {
                Ok(prose_report(&describe(&args.source), &r))
            }
        }
        Command::Compare(args) => {
            let program = load_program(&args.source)?;
            let base = simulate(&program, args, Strategy::Baseline)?;
            let strategies = [
                Strategy::IssueTime { latency: 0 },
                Strategy::IssueTime { latency: 4 },
                Strategy::Friendly { middle_bias: false },
                Strategy::Fdrt { pinning: true },
            ];
            let mut out = String::new();
            if args.csv {
                out.push_str("strategy,ipc,speedup,intra_cluster,distance\n");
                out.push_str(&format!(
                    "base,{:.4},1.0000,{:.4},{:.4}\n",
                    base.ipc,
                    base.metrics.fwd.intra_cluster_fraction(),
                    base.metrics.fwd.mean_distance()
                ));
            } else {
                out.push_str(&format!(
                    "{} — {} instructions, {} clusters\n",
                    describe(&args.source),
                    base.instructions,
                    args.clusters
                ));
                out.push_str(&format!(
                    "{:<16}{:>8}{:>10}{:>14}{:>10}\n",
                    "strategy", "ipc", "speedup", "intra-fwd", "distance"
                ));
                out.push_str(&format!(
                    "{:<16}{:>8.3}{:>10.3}{:>13.1}%{:>10.2}\n",
                    "base",
                    base.ipc,
                    1.0,
                    100.0 * base.metrics.fwd.intra_cluster_fraction(),
                    base.metrics.fwd.mean_distance()
                ));
            }
            for s in strategies {
                let r = simulate(&program, args, s)?;
                if args.csv {
                    out.push_str(&format!(
                        "{},{:.4},{:.4},{:.4},{:.4}\n",
                        r.strategy,
                        r.ipc,
                        r.speedup_over(&base),
                        r.metrics.fwd.intra_cluster_fraction(),
                        r.metrics.fwd.mean_distance()
                    ));
                } else {
                    out.push_str(&format!(
                        "{:<16}{:>8.3}{:>10.3}{:>13.1}%{:>10.2}\n",
                        r.strategy,
                        r.ipc,
                        r.speedup_over(&base),
                        100.0 * r.metrics.fwd.intra_cluster_fraction(),
                        r.metrics.fwd.mean_distance()
                    ));
                }
            }
            Ok(out)
        }
        Command::Trace(args) => trace(args),
        Command::Analyze(args) => analyze(args),
    }
}

/// Runs one strategy with a live [`Recorder`] attached, exports the
/// pipeline event trace as Chrome trace-event JSON (loadable in
/// `about://tracing` or Perfetto), optionally dumps the counters and
/// histograms as JSONL, and — with `--check` — validates the exported
/// file and reconciles its counters against the simulation report.
fn trace(args: &TraceArgs) -> Result<String, CliError> {
    let program = load_program(&args.run.source)?;
    let name = describe(&args.run.source);
    let recorder = Rc::new(Recorder::new(RecorderConfig {
        event_capacity: args.events,
        sample_every: args.sample,
        collect_attrib: false,
    }));
    let probe: Rc<dyn Probe> = Rc::clone(&recorder) as _;
    let r = build_sim(&program, config(&args.run, args.run.strategy), Some(probe))?
        .try_run()
        .map_err(|e| CliError(e.to_string()))?;

    let events = recorder.events();
    // A flow arrow needs its consumer's retire span to anchor to; drop
    // flows whose instruction fell out of the event ring, so the
    // exported file always satisfies the --check pairing rules.
    let retired: HashSet<u64> = events
        .iter()
        .filter(|e| e.stage == PipeStage::Retire)
        .map(|e| e.seq)
        .collect();
    let mut flows = recorder.flows();
    flows.retain(|f| retired.contains(&f.seq));
    let chrome = chrome_trace_with_flows(&events, &flows);
    std::fs::write(&args.out, &chrome)
        .map_err(|e| CliError(format!("cannot write {:?}: {e}", args.out)))?;
    let metrics = recorder.metrics();

    let mut out = String::new();
    out.push_str(&format!(
        "{name} under {} — {} instructions, {} cycles, IPC {:.3}
",
        r.strategy, r.instructions, r.cycles, r.ipc
    ));
    out.push_str(&format!(
        "trace: {} spans ({} dropped), {} inter-cluster flows -> {}
",
        events.len(),
        recorder.dropped_events(),
        flows.len(),
        args.out
    ));
    if let Some(path) = &args.metrics_out {
        let line = metrics_line(&name, &r.strategy, &metrics);
        std::fs::write(
            path,
            format!(
                "{line}
"
            ),
        )
        .map_err(|e| CliError(format!("cannot write {path:?}: {e}")))?;
        out.push_str(&format!(
            "metrics: counters and histograms -> {path}
"
        ));
    }
    if args.check {
        let summary = validate_chrome_trace(&chrome)
            .map_err(|e| CliError(format!("invalid chrome trace: {e}")))?;
        reconcile(&metrics, &r).map_err(CliError)?;
        out.push_str(&format!(
            "check: valid trace ({} spans, {} lanes, {} flows), counters reconcile with the report
",
            summary.spans, summary.lanes, summary.flows
        ));
    }
    Ok(out)
}

/// Runs each requested strategy with an attribution-collecting
/// [`Recorder`] and renders, per strategy: the retirement-driven CPI
/// stack, per-cluster utilization, and the top critical-path edges with
/// the fraction of critical edges that cross clusters.
fn analyze(args: &AnalyzeArgs) -> Result<String, CliError> {
    analyze_with_progress(args, &mut |_, _, _| {})
}

/// [`analyze`] with a per-strategy completion callback
/// `(done, total, strategy)` — the sweep service forwards it to the
/// requesting client as progress events.
fn analyze_with_progress(
    args: &AnalyzeArgs,
    progress: &mut dyn FnMut(usize, usize, &str),
) -> Result<String, CliError> {
    let program = load_program(&args.run.source)?;
    let name = describe(&args.run.source);
    let mut results: Vec<SimReport> = Vec::new();
    for (done, &s) in args.strategies.iter().enumerate() {
        let recorder = Rc::new(Recorder::new(RecorderConfig::attrib()));
        let probe: Rc<dyn Probe> = Rc::clone(&recorder) as _;
        let mut r = build_sim(&program, config(&args.run, s), Some(probe))?
            .try_run()
            .map_err(|e| CliError(e.to_string()))?;
        r.attrib = Some(recorder.attrib_report_top(args.top));
        progress(done + 1, args.strategies.len(), &r.strategy);
        results.push(r);
    }
    if args.json {
        Ok(analyze_json(&name, args, &results))
    } else if args.run.csv {
        Ok(analyze_csv(&name, &results))
    } else {
        Ok(analyze_prose(&name, args, &results))
    }
}

fn analyze_json(name: &str, args: &AnalyzeArgs, results: &[SimReport]) -> String {
    use ctcp_sim::json::Value;
    let strategies: Vec<Value> = results
        .iter()
        .map(|r| {
            let a = r.attrib.as_ref().expect("analyze attaches attribution");
            let clusters = usize::from(args.run.clusters);
            let per_cluster: Vec<Value> = r.metrics.engine.executed_per_cluster[..clusters]
                .iter()
                .map(|&n| Value::u64(n))
                .collect();
            Value::Obj(vec![
                ("strategy".into(), Value::str(&r.strategy)),
                ("cycles".into(), Value::u64(r.cycles)),
                ("instructions".into(), Value::u64(r.instructions)),
                ("ipc".into(), Value::f64(r.ipc)),
                ("executed_per_cluster".into(), Value::Arr(per_cluster)),
                ("attrib".into(), a.to_value()),
            ])
        })
        .collect();
    let mut text = Value::Obj(vec![
        ("bench".into(), Value::str(name)),
        ("strategies".into(), Value::Arr(strategies)),
    ])
    .render();
    text.push('\n');
    text
}

fn analyze_csv(name: &str, results: &[SimReport]) -> String {
    let mut out = String::from(
        "bench,strategy,cycles,ipc,base,inter_cluster,rs_dispatch,fetch,\
         branch_mispredict,memory,cross_cluster\n",
    );
    for r in results {
        let a = r.attrib.as_ref().expect("analyze attaches attribution");
        out.push_str(&format!("{name},{},{},{:.4}", r.strategy, r.cycles, r.ipc));
        for kind in RetireSlotKind::ALL {
            out.push_str(&format!(",{:.4}", a.stack.fraction(kind)));
        }
        out.push_str(&format!(",{:.4}\n", a.critical.cross_fraction()));
    }
    out
}

fn analyze_prose(name: &str, args: &AnalyzeArgs, results: &[SimReport]) -> String {
    let mut out = format!(
        "{name} — cycle attribution, {} clusters, {} instruction budget\n",
        args.run.clusters, args.run.insts
    );
    for r in results {
        let a = r.attrib.as_ref().expect("analyze attaches attribution");
        out.push_str(&format!(
            "\n{}: {} cycles, IPC {:.3}\n",
            r.strategy, r.cycles, r.ipc
        ));
        out.push_str("  CPI stack (fraction of retire slots):\n");
        for kind in RetireSlotKind::ALL {
            out.push_str(&format!(
                "    {:<18}{:>6.1}%\n",
                kind.name(),
                100.0 * a.stack.fraction(kind)
            ));
        }
        let executed = &r.metrics.engine.executed_per_cluster[..usize::from(args.run.clusters)];
        let total: u64 = executed.iter().sum();
        out.push_str("  cluster utilization:");
        for (ci, &n) in executed.iter().enumerate() {
            let share = if total == 0 {
                0.0
            } else {
                100.0 * n as f64 / total as f64
            };
            out.push_str(&format!(" c{ci} {share:.0}%"));
        }
        out.push('\n');
        out.push_str(&format!(
            "  critical path: {} edges, {:.1}% cross-cluster\n",
            a.critical.edges,
            100.0 * a.critical.cross_fraction()
        ));
        for e in &a.critical.top {
            out.push_str(&format!(
                "    {:#06x} -> {:#06x}  {} hop{}  {}x\n",
                e.from_pc,
                e.to_pc,
                e.hops,
                if e.hops == 1 { "" } else { "s" },
                e.count
            ));
        }
    }
    out
}

/// Cross-checks the live telemetry counters against the report's own
/// bookkeeping: both observe the same simulation through independent
/// paths, so any divergence is a bug.
fn reconcile(m: &Metrics, r: &SimReport) -> Result<(), String> {
    let checks = [
        ("cycles", m.get(Counter::Cycles), r.cycles),
        ("retired", m.get(Counter::Retired), r.metrics.engine.retired),
        (
            "insts_from_tc",
            m.get(Counter::InstsFromTc),
            r.metrics.insts_from_tc,
        ),
        (
            "insts_from_icache",
            m.get(Counter::InstsFromIcache),
            r.metrics.insts_from_icache,
        ),
        (
            "traces_built",
            m.get(Counter::TracesBuilt),
            r.metrics.traces_built,
        ),
        (
            "insts_in_traces",
            m.get(Counter::InstsInTraces),
            r.metrics.insts_in_traces,
        ),
        (
            "cond_branches",
            m.get(Counter::CondBranches),
            r.metrics.cond_branches,
        ),
        (
            "cond_mispredicts",
            m.get(Counter::CondMispredicts),
            r.metrics.cond_mispredicts,
        ),
    ];
    for (name, counter, report) in checks {
        if counter != report {
            return Err(format!(
                "counter {name} = {counter} but the report says {report}"
            ));
        }
    }
    Ok(())
}

fn topology_name(t: Topology) -> &'static str {
    match t {
        Topology::Linear => "linear",
        Topology::Ring => "ring",
        Topology::FullyConnected => "full",
    }
}

/// Resolves `--benches` values: suite keywords or explicit names.
fn resolve_benches(names: &[String]) -> Result<Vec<Benchmark>, CliError> {
    match names {
        [kw] if kw == "spec" => return Ok(Benchmark::spec_all()),
        [kw] if kw == "media" => return Ok(Benchmark::mediabench()),
        [kw] if kw == "all" => {
            let mut all = Benchmark::spec_all();
            all.extend(Benchmark::mediabench());
            return Ok(all);
        }
        _ => {}
    }
    names
        .iter()
        .map(|n| {
            Benchmark::by_name(n)
                .ok_or_else(|| CliError(format!("unknown benchmark {n:?} (see `ctcp list`)")))
        })
        .collect()
}

/// Runs the full strategies × benchmarks × geometries grid through the
/// harness and renders one row per cell, with each cell's speedup taken
/// against the baseline of its own benchmark × geometry.
///
/// Failed cells don't sink the sweep: every cell whose own job *and*
/// baseline both produced a report still renders, a failure table is
/// appended after the normal output, and the exit code goes non-zero.
fn sweep(args: &SweepArgs) -> Result<CliOutcome, CliError> {
    let mut harness = Harness::new().jobs(args.jobs).attrib(args.attrib);
    if let Some(path) = &args.metrics_out {
        harness = harness.metrics_out(path);
    }
    if args.cache {
        match ResultStore::open(ResultStore::default_dir()) {
            Ok(store) => harness = harness.with_store(store),
            Err(e) => eprintln!("warning: result store unavailable ({e}); not caching"),
        }
    }
    // The default sink reproduces the historical stderr status line
    // byte for byte (auto-enabled only when stderr is a terminal).
    let mut sink = StderrProgress::new(None);
    run_sweep(args, &mut harness, &mut sink).map_err(|e| match e {
        SweepError::Cli(e) => e,
        // One-shot sweeps have no shared scheduler, so admission can
        // never refuse them; keep the arm total anyway.
        SweepError::Saturated(s) => CliError(format!("rejected: {s}")),
    })
}

/// Why [`run_sweep`] stopped: an ordinary CLI error (bad benchmark,
/// bad grid) rendered in-band, or a typed admission refusal from the
/// shared scheduler that the daemon must turn into a `503` *before*
/// anything has been streamed.
enum SweepError {
    Cli(CliError),
    Saturated(Saturated),
}

impl From<CliError> for SweepError {
    fn from(e: CliError) -> SweepError {
        SweepError::Cli(e)
    }
}

/// The sweep body shared by the one-shot command and the resident
/// service: builds the grid, runs it through `harness` (whose worker
/// count, store, and attribution mode the caller has already
/// configured), and renders the tables. Per-cell progress goes to
/// `sink`; the rendering itself is progress-free, so the output is
/// byte-identical however the batch was watched.
fn run_sweep(
    args: &SweepArgs,
    harness: &mut Harness,
    sink: &mut dyn ProgressSink,
) -> Result<CliOutcome, SweepError> {
    let benches = resolve_benches(&args.spec.benches)?;

    // Resolve suite keywords into explicit names, then let the spec
    // unroll the grid — the same expansion every surface (CLI, wire,
    // harness) agrees on, including the geometry scaling per cell.
    let spec = SweepSpec {
        benches: benches.iter().map(|b| b.name.to_string()).collect(),
        ..args.spec.clone()
    };
    let plan = spec.expand().map_err(|e| CliError(e.to_string()))?;
    let programs: HashMap<&str, Arc<Program>> = benches
        .iter()
        .map(|b| (b.name, Arc::new(b.program())))
        .collect();
    let jobs: Vec<Job> = plan
        .jobs
        .iter()
        .map(|(bench, cfg)| Job::new(bench.clone(), Arc::clone(&programs[bench.as_str()]), *cfg))
        .collect();
    let cells = &plan.cells;

    let outcomes = harness
        .try_run_admitted(&jobs, sink)
        .map_err(SweepError::Saturated)?;

    let mut out = String::new();
    if args.csv {
        out.push_str("bench,clusters,topology,strategy,ipc,speedup\n");
        for c in cells {
            let (Some(r), Some(base)) = (outcomes[c.job].report(), outcomes[c.base_job].report())
            else {
                continue; // this cell is in the failure table instead
            };
            out.push_str(&format!(
                "{},{},{},{},{:.4},{:.4}\n",
                c.bench,
                c.clusters,
                topology_name(c.topology),
                r.strategy,
                r.ipc,
                r.speedup_over(base)
            ));
        }
    } else {
        let stats = harness.last_batch();
        out.push_str(&format!(
            "sweep: {} cells ({} simulated, {} from store) in {:.1}s\n",
            stats.total,
            stats.simulated,
            stats.store_hits,
            stats.wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "{:<12}{:>9}{:>9}{:<2}{:<16}{:>8}{:>10}\n",
            "bench", "clusters", "topology", "", "strategy", "ipc", "speedup"
        ));
        for c in cells {
            let (Some(r), Some(base)) = (outcomes[c.job].report(), outcomes[c.base_job].report())
            else {
                continue; // this cell is in the failure table instead
            };
            out.push_str(&format!(
                "{:<12}{:>9}{:>9}{:<2}{:<16}{:>8.3}{:>10.3}\n",
                c.bench,
                c.clusters,
                topology_name(c.topology),
                "",
                r.strategy,
                r.ipc,
                r.speedup_over(base)
            ));
        }
    }
    if args.attrib {
        // The attribution table: one row per cell (baselines included,
        // once per benchmark × geometry), CPI-stack fractions plus the
        // share of critical-path edges that cross clusters.
        let mut printed_base: HashSet<usize> = HashSet::new();
        let mut rows: Vec<(&SweepCell, usize, bool)> = Vec::new();
        for c in cells {
            if printed_base.insert(c.base_job) {
                rows.push((c, c.base_job, true));
            }
            rows.push((c, c.job, false));
        }
        if args.csv {
            out.push_str(
                "\nbench,clusters,topology,strategy,cycles,base,inter_cluster,\
                 rs_dispatch,fetch,branch_mispredict,memory,cross_cluster\n",
            );
        } else {
            out.push_str(
                "\nattribution (fraction of retire slots; xedges = critical-path \
                 edges crossing clusters):\n",
            );
            out.push_str(&format!(
                "{:<12}{:>9}{:>9}{:<2}{:<16}{:>7}{:>7}{:>7}{:>7}{:>7}{:>7}{:>8}\n",
                "bench",
                "clusters",
                "topology",
                "",
                "strategy",
                "base",
                "xdelay",
                "rs",
                "fetch",
                "bmiss",
                "mem",
                "xedges"
            ));
        }
        for (c, job, _is_base) in rows {
            let Some(r) = outcomes[job].report() else {
                continue; // this cell is in the failure table instead
            };
            let Some(a) = r.attrib.as_ref() else {
                continue; // defensive: attrib batches always attach one
            };
            if args.csv {
                out.push_str(&format!(
                    "{},{},{},{},{}",
                    c.bench,
                    c.clusters,
                    topology_name(c.topology),
                    r.strategy,
                    r.cycles
                ));
                for kind in RetireSlotKind::ALL {
                    out.push_str(&format!(",{:.4}", a.stack.fraction(kind)));
                }
                out.push_str(&format!(",{:.4}\n", a.critical.cross_fraction()));
            } else {
                out.push_str(&format!(
                    "{:<12}{:>9}{:>9}{:<2}{:<16}",
                    c.bench,
                    c.clusters,
                    topology_name(c.topology),
                    "",
                    r.strategy
                ));
                for kind in RetireSlotKind::ALL {
                    out.push_str(&format!("{:>6.1}%", 100.0 * a.stack.fraction(kind)));
                }
                out.push_str(&format!("{:>7.1}%\n", 100.0 * a.critical.cross_fraction()));
            }
        }
    }
    // On the all-success path this appends nothing, keeping the output
    // byte-identical to a fault-free sweep.
    let mut exit_code = 0;
    if let Some(table) = failure_table(&outcomes) {
        out.push_str(&table);
        exit_code = 1;
    }
    Ok(CliOutcome {
        output: out,
        exit_code,
    })
}

/// Executes `ctcp store verify|compact|gc`.
fn store_cmd(args: &StoreArgs) -> Result<CliOutcome, CliError> {
    let dir = args
        .dir
        .as_ref()
        .map(PathBuf::from)
        .unwrap_or_else(ResultStore::default_dir);
    let io_err = |e: std::io::Error| CliError(format!("store {}: {e}", dir.display()));
    match args.action {
        StoreAction::Verify => {
            let r = ctcp_harness::verify(&dir).map_err(io_err)?;
            let output = format!(
                "store {}: {} lines — {} valid ({} entries), {} stale, {} corrupt\n",
                dir.display(),
                r.lines,
                r.valid,
                r.entries,
                r.stale,
                r.corrupt
            );
            Ok(CliOutcome {
                output,
                exit_code: i32::from(r.corrupt > 0),
            })
        }
        StoreAction::Compact => {
            let r = ctcp_harness::compact(&dir).map_err(io_err)?;
            Ok(CliOutcome::ok(format!(
                "store {}: kept {} lines ({} superseded, {} stale dropped, {} quarantined)\n",
                dir.display(),
                r.kept,
                r.superseded,
                r.stale,
                r.quarantined
            )))
        }
        StoreAction::Gc => {
            let r = ctcp_harness::gc(&dir).map_err(io_err)?;
            let c = r.compact;
            Ok(CliOutcome::ok(format!(
                "store {}: kept {} lines ({} superseded, {} stale dropped, {} quarantined); \
                 quarantine cleared ({} bytes)\n",
                dir.display(),
                c.kept,
                c.superseded,
                c.stale,
                c.quarantined,
                r.quarantine_bytes
            )))
        }
    }
}

/// Adapts the harness's [`ProgressSink`] to the sweep service's wire
/// events: every simulated cell becomes one NDJSON `progress` chunk on
/// the requesting client's response stream. The emit callback reports
/// whether the client is still listening; the first `false` trips the
/// cancel token, so the shared scheduler drops this request's queued
/// cells (running cells finish and memoize).
struct EventSink<'a> {
    emit: &'a mut dyn FnMut(&Value) -> bool,
    cancel: &'a AtomicBool,
    total: usize,
}

impl EventSink<'_> {
    fn send(&mut self, event: &Value) {
        if !(self.emit)(event) {
            self.cancel.store(true, Ordering::Relaxed);
        }
    }
}

impl ProgressSink for EventSink<'_> {
    fn batch_start(&mut self, total: usize) {
        self.total = total;
        self.send(&Value::Obj(vec![
            ("event".into(), Value::str("batch_start")),
            ("total".into(), Value::u64(total as u64)),
        ]));
    }

    fn cell_done(&mut self, done: usize, workload: &str, took: Duration) {
        self.send(&Value::Obj(vec![
            ("event".into(), Value::str("progress")),
            ("done".into(), Value::u64(done as u64)),
            ("total".into(), Value::u64(self.total as u64)),
            ("workload".into(), Value::str(workload)),
            ("took_s".into(), Value::f64(took.as_secs_f64())),
        ]));
    }

    fn cell_done_on(&mut self, done: usize, workload: &str, took: Duration, worker: usize) {
        // The shared-scheduler path names the pool worker that ran the
        // cell; stamping it into the wire event is what lets the daemon
        // draw per-worker span lanes in `GET /trace/<token>`.
        self.send(&Value::Obj(vec![
            ("event".into(), Value::str("progress")),
            ("done".into(), Value::u64(done as u64)),
            ("total".into(), Value::u64(self.total as u64)),
            ("workload".into(), Value::str(workload)),
            ("took_s".into(), Value::f64(took.as_secs_f64())),
            ("worker".into(), Value::u64(worker as u64)),
        ]));
    }

    fn batch_end(&mut self) {}
}

/// A request the daemon could not run (bad body, unknown benchmark):
/// reported in-band as a failed result, the same exit code the
/// one-shot CLI uses for argument errors.
fn error_result(e: CliError) -> RunResult {
    RunResult {
        output: format!("error: {e}\n"),
        exit_code: 2,
        cache_hits: 0,
        simulated: 0,
        cancelled: 0,
    }
}

/// The execution backend behind `ctcp serve`: one shared
/// [`CellScheduler`] (the resident worker pool every client's cells
/// interleave on, fairly), one shared, sharded [`ResultStore`] (the
/// warm cache), and one shared [`Journal`] (the crash-recovery WAL).
/// All are cheap `Clone` handles, so each request builds a throwaway
/// [`Harness`] around them on its own connection thread — `run` takes
/// `&self` and requests execute concurrently.
struct CliHandler {
    store: ResultStore,
    sched: CellScheduler,
    journal: Journal,
}

impl CliHandler {
    /// The batch body itself, after journaling and degradation checks.
    fn dispatch(
        &self,
        kind: RequestKind,
        body: &Value,
        token: &str,
        progress: &mut dyn FnMut(&Value) -> bool,
    ) -> Result<RunResult, HandlerError> {
        match kind {
            RequestKind::Sweep => {
                let args = match wire::sweep_from_json(body) {
                    Ok(a) => a,
                    Err(e) => return Ok(error_result(e)),
                };
                // A fresh per-request harness over the shared handles:
                // phase 1 answers warm cells straight from the store
                // (never touching the queue), the rest are submitted to
                // the shared pool and stream back as they finish. Each
                // memoized cell is also marked in the journal under
                // this request's token, so a crash mid-batch resumes
                // with the finished cells answered from the store.
                let cancel = Arc::new(AtomicBool::new(false));
                let mut harness = Harness::new()
                    .attrib(args.attrib)
                    .with_store(self.store.clone())
                    .with_scheduler(self.sched.clone())
                    .with_journal(self.journal.clone(), token)
                    .cancel_token(Arc::clone(&cancel));
                let mut sink = EventSink {
                    emit: progress,
                    cancel: &cancel,
                    total: 0,
                };
                match run_sweep(&args, &mut harness, &mut sink) {
                    Ok(outcome) => {
                        let stats = harness.last_batch();
                        Ok(RunResult {
                            output: outcome.output,
                            exit_code: outcome.exit_code,
                            cache_hits: stats.store_hits as u64,
                            simulated: stats.simulated as u64,
                            cancelled: stats.cancelled as u64,
                        })
                    }
                    Err(SweepError::Saturated(s)) => Err(HandlerError::Saturated {
                        queued: s.queued,
                        wanted: s.wanted,
                        limit: s.limit,
                    }),
                    Err(SweepError::Cli(e)) => Ok(error_result(e)),
                }
            }
            RequestKind::Analyze => {
                let args = match wire::analyze_from_json(body) {
                    Ok(a) => a,
                    Err(e) => return Ok(error_result(e)),
                };
                // Analyses run inline on this connection's thread —
                // they never queue behind sweep cells, which is the
                // fairness guarantee for small interactive requests.
                let mut emit = |done: usize, total: usize, strategy: &str| {
                    let _ = progress(&Value::Obj(vec![
                        ("event".into(), Value::str("progress")),
                        ("done".into(), Value::u64(done as u64)),
                        ("total".into(), Value::u64(total as u64)),
                        ("workload".into(), Value::str(strategy)),
                    ]));
                };
                match analyze_with_progress(&args, &mut emit) {
                    Ok(output) => Ok(RunResult {
                        output,
                        exit_code: 0,
                        cache_hits: 0,
                        simulated: args.strategies.len() as u64,
                        cancelled: 0,
                    }),
                    Err(e) => Ok(error_result(e)),
                }
            }
        }
    }
}

impl Handler for CliHandler {
    fn run(
        &self,
        kind: RequestKind,
        body: &Value,
        token: &str,
        progress: &mut dyn FnMut(&Value) -> bool,
    ) -> Result<RunResult, HandlerError> {
        // Degraded store: new batches would run without memoizing (and
        // without durable cell marks), so refuse them with a retry
        // hint. The store re-probes the disk on its own schedule.
        if self.store.read_only() {
            return Err(HandlerError::Unavailable {
                retry_after_secs: 1,
            });
        }
        // WAL first: once admitted is journaled, a crash anywhere below
        // replays this batch on the next start. Append failures are
        // tolerated — the in-memory record still feeds compaction, and
        // losing durability must not fail a runnable batch.
        let _ = self.journal.admit(token, kind.as_str(), &body.render());
        let result = self.dispatch(kind, body, token, progress);
        match &result {
            // Terminal either way: completed batches are pruned, and a
            // refusal admitted no cells, so there is nothing to replay.
            Ok(r) => {
                let _ = self.journal.finish(token, r.exit_code);
            }
            Err(_) => {
                let _ = self.journal.finish(token, 75);
            }
        }
        result
    }

    fn stats(&self) -> HandlerStats {
        let s = self.sched.stats();
        HandlerStats {
            workers: s.workers,
            queued_cells: s.queued,
            running_cells: s.running,
            cancelled_cells: s.cancelled,
            respawns: s.respawns,
            poisoned: s.poisoned,
            read_only: self.store.read_only(),
        }
    }

    fn quiesce(&self) {
        self.sched.shutdown();
    }

    fn gauges(&self) -> Value {
        // Backend depth the scheduler snapshot cannot see: WAL bulk and
        // churn, plus how the warm cache spreads over its shards. All
        // cheap reads — a scrape never touches a batch.
        let shards: Vec<Value> = self
            .store
            .shard_entries()
            .into_iter()
            .map(|n| Value::u64(n as u64))
            .collect();
        Value::Obj(vec![
            (
                "journal_bytes".into(),
                Value::u64(self.journal.size_bytes()),
            ),
            (
                "journal_compactions".into(),
                Value::u64(self.journal.compactions()),
            ),
            (
                "journal_live_requests".into(),
                Value::u64(self.journal.live_requests() as u64),
            ),
            ("store_shard_entries".into(), Value::Arr(shards)),
        ])
    }
}

/// Executes `ctcp serve`: binds the address, prints it (port 0 binds
/// an ephemeral port, so scripts parse this line), and blocks serving
/// requests until a client asks for shutdown. The returned output is
/// the post-drain summary.
fn serve_cmd(args: &ServeArgs) -> Result<CliOutcome, CliError> {
    // Logging is configured before anything can emit: the flags beat
    // the CTCP_LOG default, and a bad --log-file is a startup error
    // rather than a silent fallback to stderr.
    if let Some(level) = &args.log_level {
        let parsed = ctcp_telemetry::log::Level::parse(level)
            .ok_or_else(|| CliError(format!("bad --log-level value {level:?}")))?;
        ctcp_telemetry::log::set_level(parsed);
    }
    if let Some(path) = &args.log_file {
        ctcp_telemetry::log::set_file(path)
            .map_err(|e| CliError(format!("cannot open log file {path}: {e}")))?;
    }
    let dir = args
        .dir
        .as_ref()
        .map(PathBuf::from)
        .unwrap_or_else(ResultStore::default_dir);
    let store = ResultStore::open(&dir)
        .map_err(|e| CliError(format!("cannot open result store {}: {e}", dir.display())))?;
    // The request WAL lives next to the store shards: opening it
    // replays any journal left by a crashed predecessor and hands back
    // the admitted-but-unfinished requests.
    let journal = Journal::open(&dir)
        .map_err(|e| CliError(format!("cannot open journal {}: {e}", dir.display())))?;
    let pending = journal.take_pending();
    // One resident worker pool for the daemon's lifetime; every
    // client's cells interleave on it round-robin, and `--max-queue`
    // bounds how much work admission control will accept at once.
    let sched = CellScheduler::start(args.jobs, args.max_queue);
    let service = Service::bind(
        &args.addr,
        Box::new(CliHandler {
            store,
            sched,
            journal: journal.clone(),
        }),
    )
    .map_err(|e| CliError(format!("cannot bind {}: {e}", args.addr)))?;
    // Re-enqueue the crashed daemon's unfinished batches headless,
    // before accepting connections: their tokens resolve for resuming
    // clients, and cells memoized before the crash come back as store
    // hits — zero recomputation.
    if !pending.is_empty() {
        eprintln!(
            "ctcp serve: replaying {} journaled request(s) from {}",
            pending.len(),
            dir.display()
        );
    }
    for p in pending {
        let replayed = match RequestKind::parse(&p.kind) {
            Some(kind) if resume_token(kind, &p.body) == p.token => service.replay(kind, &p.body),
            _ => false,
        };
        if !replayed {
            // Unknown kind, a body that no longer hashes to its token,
            // or an unparseable body: retire the record rather than
            // replaying it forever on every restart.
            let _ = journal.finish(&p.token, 75);
        }
    }
    // Printed and flushed before blocking, not returned with the
    // command's output: clients need the address while the daemon runs.
    println!("ctcp serve: listening on {}", service.local_addr());
    let _ = std::io::stdout().flush();
    // Service::run quiesces the handler — and through it the shared
    // pool — after the last connection thread is joined, so every
    // admitted cell has run and memoized by the time this returns.
    let summary = service
        .run()
        .map_err(|e| CliError(format!("serve failed: {e}")))?;
    Ok(CliOutcome::ok(format!(
        "ctcp serve: drained after {} requests ({} concurrent, {} cache hits, \
         {} rejected, {} cells cancelled, {} journal-replayed, {} streams resumed, \
         {} worker respawns, {} cells poisoned)\n",
        summary.requests,
        summary.queued,
        summary.cache_hits,
        summary.rejected,
        summary.cancelled_cells,
        summary.journal_replayed,
        summary.resumed_streams,
        summary.respawns,
        summary.poisoned
    )))
}

/// Executes `ctcp client`: one request to a running daemon. Batch
/// actions stream progress to stderr as it arrives and return the
/// daemon's rendered output (and exit code) as the command's own.
fn client_cmd(args: &ClientArgs) -> Result<CliOutcome, CliError> {
    let addr = args.addr.as_str();
    let retry = Reconnect {
        retries: args.retries,
        backoff_ms: args.backoff_ms,
    };
    match &args.action {
        ClientAction::Status => client_document(addr, "GET", "/status"),
        ClientAction::Shutdown => client_document(addr, "POST", "/shutdown"),
        ClientAction::Sweep(sweep) => client_batch(
            addr,
            "/sweep",
            Some(&wire::sweep_to_json(sweep)),
            None,
            retry,
        ),
        ClientAction::Analyze(analyze) => client_batch(
            addr,
            "/analyze",
            Some(&wire::analyze_to_json(analyze)?),
            None,
            retry,
        ),
        ClientAction::Resume(token) => {
            client_batch(addr, "/resume", None, Some(token.clone()), retry)
        }
    }
}

/// The client's reconnect policy: how many times to retry a batch
/// request, and the base delay the exponential backoff grows from.
#[derive(Clone, Copy)]
struct Reconnect {
    retries: u32,
    backoff_ms: u64,
}

impl Reconnect {
    /// The jittered exponential delay before retry `attempt` (0-based):
    /// uniformly in `[d/2, d]` for `d = backoff_ms << attempt`, capped
    /// at 10s so a long outage never strands the client asleep.
    fn delay(self, attempt: u32, rng: &mut u64) -> Duration {
        let d = self
            .backoff_ms
            .saturating_mul(1 << attempt.min(16))
            .min(10_000);
        // xorshift64: no randomness crates in the workspace, and the
        // only requirement is decorrelating a reconnect herd.
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        Duration::from_millis(d / 2 + *rng % (d / 2 + 1))
    }
}

/// A jitter seed unique per process and moment; quality is irrelevant,
/// only herd decorrelation.
fn jitter_seed() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    u64::from(nanos) ^ (u64::from(std::process::id()) << 32) | 1
}

/// A single-document request (`status`, `shutdown`): the whole body is
/// the output.
fn client_document(addr: &str, method: &str, path: &str) -> Result<CliOutcome, CliError> {
    let resp = http::request(addr, method, path, b"", &mut |_| {})
        .map_err(|e| CliError(format!("cannot reach a daemon at {addr}: {e}")))?;
    let mut output = String::from_utf8_lossy(&resp.body).into_owned();
    if resp.status != 200 {
        return Err(CliError(format!(
            "daemon at {addr} answered {}: {}",
            resp.status,
            output.trim()
        )));
    }
    if !output.ends_with('\n') {
        output.push('\n');
    }
    Ok(CliOutcome::ok(output))
}

/// Executes `ctcp top`: a live terminal dashboard over a running
/// daemon, redrawn every `--interval-ms` from `GET /status` (queue,
/// rolling rates, live requests, recent logs) and `GET /metrics`
/// (lifetime counters). `--once` renders a single frame with no
/// screen control and exits — the scriptable form.
fn top_cmd(args: &TopArgs) -> Result<CliOutcome, CliError> {
    let fetch = |path: &str| -> Result<String, CliError> {
        let resp = http::request(&args.addr, "GET", path, b"", &mut |_| {})
            .map_err(|e| CliError(format!("cannot reach a daemon at {}: {e}", args.addr)))?;
        if resp.status != 200 {
            return Err(CliError(format!(
                "daemon at {} answered {} for {path}",
                args.addr, resp.status
            )));
        }
        Ok(String::from_utf8_lossy(&resp.body).into_owned())
    };
    let frame = |fetch: &dyn Fn(&str) -> Result<String, CliError>| -> Result<String, CliError> {
        let status = Value::parse(&fetch("/status")?)
            .map_err(|e| CliError(format!("bad /status document: {e}")))?;
        let metrics = fetch("/metrics")?;
        Ok(render_top_frame(&args.addr, &status, &metrics))
    };
    if args.once {
        return Ok(CliOutcome::ok(frame(&fetch)?));
    }
    loop {
        // Clear-and-home per redraw; plain ANSI so there is nothing to
        // depend on. A vanished daemon ends the session cleanly.
        let f = match frame(&fetch) {
            Ok(f) => f,
            Err(e) => return Ok(CliOutcome::ok(format!("ctcp top: {e}\n"))),
        };
        print!("\x1b[2J\x1b[H{f}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_millis(args.interval_ms));
    }
}

/// A one-terminal-screen summary of a daemon's health: utilization
/// bar, rolling rates, per-request progress table, backend gauges and
/// the recent warn/error tail. Pure text in, text out — unit-testable
/// without a daemon.
fn render_top_frame(addr: &str, status: &Value, metrics: &str) -> String {
    let g_u64 = |v: &Value, k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
    let g_f64 = |v: &Value, k: &str| v.get(k).and_then(Value::as_f64).unwrap_or(0.0);
    let bar = |filled: u64, total: u64, width: usize| -> String {
        let n = if total == 0 {
            0
        } else {
            (filled as usize * width)
                .div_ceil(total as usize)
                .min(width)
        };
        format!("[{}{}]", "#".repeat(n), "-".repeat(width - n))
    };
    // Lifetime totals come off the Prometheus exposition — the same
    // numbers a real scraper would chart.
    let prom = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| {
                l.strip_prefix(name)
                    .and_then(|r| r.trim().parse::<u64>().ok())
            })
            .unwrap_or(0)
    };

    let workers = g_u64(status, "workers");
    let running = g_u64(status, "running_cells");
    let queued = g_u64(status, "queued_cells");
    let mut out = format!("ctcp top — daemon {addr}\n\n");
    out.push_str(&format!(
        "workers {} {running}/{workers} busy   queued {queued}   in-flight {}\n",
        bar(running, workers, 20),
        g_u64(status, "in_flight")
    ));
    if let Some(roll) = status.get("rolling") {
        out.push_str(&format!(
            "rolling {:.1} cells/s over {}s   req p95 {} ms   cell p95 {} ms   {} request(s)\n",
            g_f64(roll, "cells_per_sec"),
            g_u64(roll, "window_s"),
            g_u64(roll, "p95_ms"),
            g_u64(roll, "cell_p95_ms"),
            g_u64(roll, "requests"),
        ));
    }
    out.push_str(&format!(
        "totals  {} requests   {} cache hits   {} rejected   {} respawns   {} poisoned\n",
        prom("ctcp_serve_requests_total "),
        prom("ctcp_serve_cache_hits_total "),
        prom("ctcp_serve_rejected_total "),
        prom("ctcp_serve_worker_respawns_total "),
        prom("ctcp_serve_cells_poisoned_total "),
    ));
    if let Some(gauges) = status.get("gauges") {
        let shards = match gauges.get("store_shard_entries") {
            Some(Value::Arr(items)) => {
                let counts: Vec<u64> = items.iter().filter_map(Value::as_u64).collect();
                format!(
                    "{} shards, {} entries",
                    counts.len(),
                    counts.iter().sum::<u64>()
                )
            }
            _ => "no shard data".into(),
        };
        out.push_str(&format!(
            "store   {}   journal {} B, {} compaction(s), {} live\n",
            shards,
            g_u64(gauges, "journal_bytes"),
            g_u64(gauges, "journal_compactions"),
            g_u64(gauges, "journal_live_requests"),
        ));
    }
    match status.get("requests") {
        Some(Value::Arr(items)) if !items.is_empty() => {
            out.push_str(&format!("\nlive requests ({})\n", items.len()));
            out.push_str("  TOKEN             KIND     AGE   PROGRESS\n");
            for r in items {
                let done = g_u64(r, "cells_done");
                let total = g_u64(r, "cells_total");
                out.push_str(&format!(
                    "  {:<17} {:<8} {:>4}s {} {done}/{total}\n",
                    r.get("token").and_then(Value::as_str).unwrap_or("?"),
                    r.get("kind").and_then(Value::as_str).unwrap_or("?"),
                    g_u64(r, "age_s"),
                    bar(done, total, 10),
                ));
            }
        }
        _ => out.push_str("\nno live requests\n"),
    }
    if let Some(Value::Arr(logs)) = status.get("recent_logs") {
        if !logs.is_empty() {
            out.push_str(&format!("\nrecent warnings ({})\n", logs.len()));
            for l in logs.iter().rev().take(5) {
                out.push_str(&format!(
                    "  {:<5} {} {}\n",
                    l.get("level").and_then(Value::as_str).unwrap_or("?"),
                    l.get("msg").and_then(Value::as_str).unwrap_or("?"),
                    l.get("token").and_then(Value::as_str).unwrap_or(""),
                ));
            }
        }
    }
    out
}

/// One batch stream's client-side state, carried across reconnects:
/// the resume token and run id from the daemon's `accepted` handshake,
/// the count of delivered events (the `have` cursor a `/resume` request
/// continues from), and the terminal `result`/`error` once seen.
#[derive(Default)]
struct ClientStream {
    pending: String,
    token: Option<String>,
    run: u64,
    have: u64,
    result: Option<(String, i32)>,
    error: Option<String>,
}

impl ClientStream {
    /// Buffers one chunk and dispatches every complete NDJSON line —
    /// chunk boundaries are not guaranteed to align with events, and a
    /// torn final line (a mid-event disconnect) is deliberately left
    /// unbuffered so `have` never counts a half-delivered event.
    fn chunk(&mut self, chunk: &[u8]) {
        self.pending.push_str(&String::from_utf8_lossy(chunk));
        while let Some(nl) = self.pending.find('\n') {
            let line: String = self.pending.drain(..=nl).collect();
            self.event(line.trim());
        }
    }

    fn event(&mut self, line: &str) {
        let Ok(v) = Value::parse(line) else {
            return; // tolerate unknown framing rather than aborting the stream
        };
        match v.get("event").and_then(Value::as_str) {
            // The handshake is per-connection, not part of the event
            // log, so it never advances the `have` cursor.
            Some("accepted") => {
                let run = v.get("run").and_then(Value::as_u64).unwrap_or(0);
                if self.run != 0 && run != self.run {
                    // The daemon restarted between connections: its
                    // replayed stream starts from the top, so the
                    // cursor does too.
                    self.have = 0;
                }
                self.run = run;
                if let Some(t) = v.get("token").and_then(Value::as_str) {
                    self.token = Some(t.to_string());
                }
            }
            Some("result") => {
                let output = v
                    .get("output")
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string();
                let code = v.get("exit_code").and_then(Value::as_u64).unwrap_or(1);
                self.result = Some((output, i32::try_from(code).unwrap_or(1)));
                self.have += 1;
            }
            Some("progress") => {
                let done = v.get("done").and_then(Value::as_u64).unwrap_or(0);
                let total = v.get("total").and_then(Value::as_u64).unwrap_or(0);
                let workload = v.get("workload").and_then(Value::as_str).unwrap_or("?");
                match v.get("took_s").and_then(Value::as_f64) {
                    Some(took) => eprintln!("[{done}/{total}] {workload} {took:.2}s"),
                    None => eprintln!("[{done}/{total}] {workload}"),
                }
                self.have += 1;
            }
            Some("error") => {
                let msg = v
                    .get("message")
                    .or_else(|| v.get("error"))
                    .and_then(Value::as_str)
                    .unwrap_or("unspecified")
                    .to_string();
                self.error = Some(msg);
                self.have += 1;
            }
            // batch_start and future event kinds are informational but
            // still occupy a slot in the daemon's replayable log.
            _ => self.have += 1,
        }
    }

    /// The `/resume` body that picks this stream up where it broke.
    fn resume_body(&self) -> Option<String> {
        let token = self.token.as_deref()?;
        Some(
            Value::Obj(vec![
                ("token".into(), Value::str(token)),
                ("have".into(), Value::u64(self.have)),
                ("run".into(), Value::u64(self.run)),
            ])
            .render(),
        )
    }
}

/// A streaming batch request (`sweep`, `analyze`, `resume`): progress
/// events are printed to stderr as chunks arrive; the final `result`
/// event's rendered output and exit code become the command's.
///
/// With a non-zero retry budget the client is self-healing: a broken
/// connection re-attaches through `POST /resume` using the token from
/// the daemon's `accepted` handshake (receiving only the events it has
/// not yet seen), and a `503` sleeps out the daemon's `Retry-After`
/// hint before asking again — under jittered exponential backoff
/// either way.
fn client_batch(
    addr: &str,
    path: &str,
    body: Option<&Value>,
    token: Option<String>,
    retry: Reconnect,
) -> Result<CliOutcome, CliError> {
    let payload = body.map(Value::render);
    let mut st = ClientStream {
        token,
        ..ClientStream::default()
    };
    let mut rng = jitter_seed();
    let mut attempt: u32 = 0;
    loop {
        // An explicit `resume` action starts on `/resume`; a retried
        // batch switches to it once the handshake supplied a token.
        let (p, bytes) = match (&payload, st.resume_body()) {
            (Some(b), None) => (path, b.clone()),
            (Some(b), Some(_)) if attempt == 0 => (path, b.clone()),
            (_, Some(r)) => ("/resume", r),
            (None, None) => {
                return Err(CliError(
                    "resume needs a token before it can reconnect".into(),
                ))
            }
        };
        st.pending.clear();
        let outcome = http::request(addr, "POST", p, bytes.as_bytes(), &mut |chunk| {
            st.chunk(chunk);
        });
        let retriable = match outcome {
            Ok(resp) if resp.status == 200 => {
                if let Some((output, exit_code)) = st.result.take() {
                    return Ok(CliOutcome { output, exit_code });
                }
                if let Some(msg) = st.error.take() {
                    return Err(CliError(format!(
                        "daemon at {addr} refused the batch: {msg}"
                    )));
                }
                // A clean close without a result: the stream was
                // severed between events. Resumable if we have a token.
                if attempt >= retry.retries || st.token.is_none() {
                    return Err(CliError(format!(
                        "daemon at {addr} closed the stream without a result"
                    )));
                }
                None
            }
            Ok(resp) if resp.status == 503 => {
                if attempt >= retry.retries {
                    return Err(CliError(saturated_message(addr, &resp.body)));
                }
                // Honor the daemon's own hint when it is longer than
                // the backoff would have been.
                let hinted = resp
                    .header("retry-after")
                    .and_then(|v| v.trim().parse::<u64>().ok())
                    .map(Duration::from_secs);
                Some(hinted.unwrap_or(Duration::ZERO))
            }
            Ok(resp) => {
                return Err(CliError(format!(
                    "daemon at {addr} answered {}: {}",
                    resp.status,
                    String::from_utf8_lossy(&resp.body).trim()
                )));
            }
            Err(e) => {
                if attempt >= retry.retries {
                    return Err(CliError(format!("cannot reach a daemon at {addr}: {e}")));
                }
                None
            }
        };
        let delay = retry
            .delay(attempt, &mut rng)
            .max(retriable.unwrap_or_default());
        eprintln!(
            "ctcp client: retrying {p} at {addr} in {:.1}s ({} of {} retries)",
            delay.as_secs_f64(),
            attempt + 1,
            retry.retries
        );
        std::thread::sleep(delay);
        attempt += 1;
    }
}

/// Renders the daemon's typed `503` refusal bodies: a clear "busy, try
/// again" or "degraded, try later" rather than a generic protocol
/// error.
fn saturated_message(addr: &str, body: &[u8]) -> String {
    let text = String::from_utf8_lossy(body);
    if let Ok(v) = Value::parse(text.trim()) {
        match v.get("error").and_then(Value::as_str) {
            Some("saturated") => {
                let field = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
                return format!(
                    "daemon at {addr} is saturated ({} cells queued + {} requested > limit {}); \
                     retry when the queue drains",
                    field("queued"),
                    field("wanted"),
                    field("limit")
                );
            }
            Some("unavailable") => {
                return format!(
                    "daemon at {addr} is unavailable (result store degraded to read-only); \
                     retry shortly"
                );
            }
            _ => {}
        }
    }
    format!("daemon at {addr} answered 503: {}", text.trim())
}

fn prose_report(name: &str, r: &SimReport) -> String {
    let (rf, rs1, rs2) = r.metrics.fwd.critical_source_distribution();
    let mut out = String::new();
    out.push_str(&format!("{name} under {}\n", r.strategy));
    out.push_str(&format!(
        "  {} instructions in {} cycles — IPC {:.3}\n",
        r.instructions, r.cycles, r.ipc
    ));
    out.push_str(&format!(
        "  fetch: {:.1}% from trace cache, avg trace {:.1} insts, \
         {:.2}% cond mispredict\n",
        100.0 * r.tc_inst_fraction(),
        r.avg_trace_size(),
        100.0 * r.mispredict_rate()
    ));
    out.push_str(&format!(
        "  forwarding: {:.1}% intra-cluster, mean distance {:.2} hops, \
         critical source RF {:.0}% / RS1 {:.0}% / RS2 {:.0}%\n",
        100.0 * r.metrics.fwd.intra_cluster_fraction(),
        r.metrics.fwd.mean_distance(),
        100.0 * rf,
        100.0 * rs1,
        100.0 * rs2
    ));
    out.push_str(&format!(
        "  memory: L1D miss {:.2}%, {} store-to-load forwards\n",
        100.0 * r.metrics.l1d.miss_rate(),
        r.metrics.engine.store_forwards
    ));
    if let Some(f) = &r.metrics.fdrt {
        out.push_str(&format!(
            "  fdrt: {} leaders, {} followers, migration {:.2}%\n",
            f.leaders_created,
            f.followers_created,
            100.0 * f.migration_rate()
        ));
    }
    out
}

fn csv_report(name: &str, r: &SimReport) -> String {
    format!(
        "name,strategy,instructions,cycles,ipc,tc_fraction,trace_size,mispredict,\
         intra_cluster,distance,l1d_miss\n\
         {name},{},{},{},{:.4},{:.4},{:.2},{:.4},{:.4},{:.4},{:.4}\n",
        r.strategy,
        r.instructions,
        r.cycles,
        r.ipc,
        r.tc_inst_fraction(),
        r.avg_trace_size(),
        r.mispredict_rate(),
        r.metrics.fwd.intra_cluster_fraction(),
        r.metrics.fwd.mean_distance(),
        r.metrics.l1d.miss_rate(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> Result<String, CliError> {
        execute(&Cli::parse(argv.iter().copied()).unwrap())
    }

    fn run_outcome(argv: &[&str]) -> CliOutcome {
        execute_outcome(&Cli::parse(argv.iter().copied()).unwrap()).unwrap()
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn top_frame_renders_bars_tables_and_log_tail() {
        let status = Value::parse(
            r#"{"status":"ok","in_flight":1,"workers":4,"queued_cells":6,
                "running_cells":2,"store_read_only":false,
                "rolling":{"window_s":60,"cells":120,"requests":3,
                           "cells_per_sec":2.0,"p95_ms":31,"p99_ms":63,"cell_p95_ms":15},
                "requests":[{"token":"a25bb65a15349da7","kind":"sweep",
                             "age_s":12,"cells_done":34,"cells_total":80}],
                "gauges":{"journal_bytes":2048,"journal_compactions":2,
                          "journal_live_requests":1,
                          "store_shard_entries":[10,11,12,9]},
                "recent_logs":[{"level":"warn","msg":"slow cell","token":"a25bb65a15349da7"}],
                "counters":{}}"#,
        )
        .unwrap();
        let metrics = "ctcp_serve_requests_total 120\nctcp_serve_cache_hits_total 40\n\
                       ctcp_serve_rejected_total 0\nctcp_serve_worker_respawns_total 0\n\
                       ctcp_serve_cells_poisoned_total 0\n";
        let frame = render_top_frame("127.0.0.1:7199", &status, metrics);
        assert!(frame.contains("daemon 127.0.0.1:7199"));
        assert!(frame.contains("2/4 busy"), "worker bar: {frame}");
        assert!(frame.contains("2.0 cells/s over 60s"));
        assert!(frame.contains("120 requests"));
        assert!(frame.contains("40 cache hits"));
        assert!(frame.contains("4 shards, 42 entries"));
        assert!(frame.contains("journal 2048 B, 2 compaction(s), 1 live"));
        assert!(frame.contains("a25bb65a15349da7"));
        assert!(frame.contains("34/80"));
        assert!(frame.contains("slow cell"));
        // An idle daemon still renders (empty tables degrade politely).
        let idle = Value::parse(r#"{"status":"ok","workers":4}"#).unwrap();
        let frame = render_top_frame("h:1", &idle, "");
        assert!(frame.contains("no live requests"));
    }

    #[test]
    fn list_contains_both_suites() {
        let out = run(&["list"]).unwrap();
        assert!(out.contains("bzip2"));
        assert!(out.contains("mpeg2_enc"));
    }

    #[test]
    fn run_prose_report() {
        let out = run(&["run", "--bench", "gzip", "--insts", "4000"]).unwrap();
        assert!(out.contains("gzip under base"));
        assert!(out.contains("IPC"));
    }

    #[test]
    fn run_csv_report() {
        let out = run(&[
            "run",
            "--bench",
            "gzip",
            "--insts",
            "3000",
            "--strategy",
            "fdrt",
            "--csv",
        ])
        .unwrap();
        let mut lines = out.lines();
        assert!(lines.next().unwrap().starts_with("name,strategy"));
        assert!(lines.next().unwrap().starts_with("gzip,fdrt,3000"));
    }

    #[test]
    fn compare_lists_all_strategies() {
        let out = run(&["compare", "--bench", "gzip", "--insts", "3000"]).unwrap();
        for s in ["base", "issue-time(0)", "issue-time(4)", "friendly", "fdrt"] {
            assert!(out.contains(s), "missing {s} in:\n{out}");
        }
    }

    #[test]
    fn unknown_benchmark_is_a_clean_error() {
        let err = run(&["run", "--bench", "nonesuch"]).unwrap_err();
        assert!(err.0.contains("nonesuch"));
    }

    #[test]
    fn disasm_round_trips_through_the_assembler() {
        let out = run(&["disasm", "--bench", "adpcm_enc"]).unwrap();
        let reassembled = ctcp_isa::asm::assemble(&out).unwrap();
        let original = ctcp_workload::Benchmark::by_name("adpcm_enc")
            .unwrap()
            .program();
        assert_eq!(original.instructions(), reassembled.instructions());
    }

    #[test]
    fn asm_file_source_runs() {
        let dir = std::env::temp_dir().join("ctcp_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("k.s");
        std::fs::write(
            &path,
            "       movi r1, 0\n\
                    movi r2, 200\n\
             top:   addi r1, r1, 1\n\
                    blt  r1, r2, top\n\
                    halt\n",
        )
        .unwrap();
        let out = run(&["run", "--asm", path.to_str().unwrap(), "--insts", "10000"]).unwrap();
        assert!(out.contains("IPC"));
    }

    #[test]
    fn missing_asm_file_is_a_clean_error() {
        let err = run(&["run", "--asm", "/nonexistent/x.s"]).unwrap_err();
        assert!(err.0.contains("cannot read"));
    }

    #[test]
    fn sweep_prose_covers_the_grid() {
        let out = run(&[
            "sweep",
            "--benches",
            "gzip",
            "--strategies",
            "fdrt,friendly",
            "--clusters",
            "2,4",
            "--insts",
            "3000",
            "--jobs",
            "2",
        ])
        .unwrap();
        // 2 geometries × (1 base + 2 strategies) = 6 cells, 4 rendered rows.
        assert!(out.contains("sweep: 6 cells"));
        assert_eq!(out.matches("fdrt").count(), 2, "{out}");
        assert_eq!(out.matches("friendly").count(), 2, "{out}");
        assert!(out.contains("speedup"));
    }

    #[test]
    fn sweep_csv_has_one_row_per_cell() {
        let out = run(&[
            "sweep",
            "--benches",
            "gzip,twolf",
            "--strategies",
            "fdrt",
            "--insts",
            "3000",
            "--csv",
        ])
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "bench,clusters,topology,strategy,ipc,speedup");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("gzip,4,linear,fdrt,"));
        assert!(lines[2].starts_with("twolf,4,linear,fdrt,"));
    }

    #[test]
    fn sweep_output_is_independent_of_jobs() {
        let argv = |jobs: &'static str| {
            vec![
                "sweep",
                "--benches",
                "gzip",
                "--strategies",
                "fdrt,issue4",
                "--insts",
                "3000",
                "--csv",
                "--jobs",
                jobs,
            ]
        };
        assert_eq!(run(&argv("1")).unwrap(), run(&argv("8")).unwrap());
    }

    #[test]
    fn sweep_rejects_unknown_benchmark() {
        let err = run(&["sweep", "--benches", "nonesuch"]).unwrap_err();
        assert!(err.0.contains("nonesuch"));
    }

    #[test]
    fn trace_writes_a_valid_chrome_file_and_reconciles() {
        let dir = std::env::temp_dir().join(format!("ctcp_cli_trace_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t.json");
        let metrics_path = dir.join("m.jsonl");
        let out = run(&[
            "trace",
            "gzip",
            "--strategy",
            "fdrt",
            "--insts",
            "4000",
            "--out",
            trace_path.to_str().unwrap(),
            "--metrics-out",
            metrics_path.to_str().unwrap(),
            "--check",
        ])
        .unwrap();
        assert!(out.contains("check: valid trace"), "{out}");
        let text = std::fs::read_to_string(&trace_path).unwrap();
        assert!(ctcp_telemetry::validate_chrome_trace(&text).is_ok());
        let line = std::fs::read_to_string(&metrics_path).unwrap();
        let v = ctcp_sim::json::Value::parse(line.trim()).unwrap();
        assert_eq!(v.get("workload").unwrap().as_str().unwrap(), "gzip");
        assert_eq!(v.get("strategy").unwrap().as_str().unwrap(), "fdrt");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_metrics_only_mode_emits_no_spans() {
        let dir = std::env::temp_dir().join(format!("ctcp_cli_trace0_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("t0.json");
        let out = run(&[
            "trace",
            "gzip",
            "--insts",
            "2000",
            "--sample",
            "0",
            "--out",
            trace_path.to_str().unwrap(),
            "--check",
        ])
        .unwrap();
        assert!(out.contains("trace: 0 spans"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_rejects_invalid_geometry_cleanly() {
        // The parser caps --clusters at 8, so drive the builder directly
        // through an out-of-range rob/width relationship instead: a
        // 1-cluster machine is valid, so this exercises the happy path
        // of validation; the builder unit tests cover each error arm.
        let cli = Cli::parse(["trace", "gzip", "--clusters", "9"]);
        assert!(cli.is_err());
    }

    #[test]
    fn sweep_metrics_out_writes_jsonl() {
        let dir = std::env::temp_dir().join(format!("ctcp_cli_sweep_m_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        run(&[
            "sweep",
            "--benches",
            "gzip",
            "--strategies",
            "fdrt",
            "--insts",
            "2000",
            "--jobs",
            "2",
            "--metrics-out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2, "base + fdrt cells");
        for line in text.lines() {
            assert!(ctcp_sim::json::Value::parse(line).is_ok());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_subcommand_round_trips_verify_compact_gc() {
        let dir = std::env::temp_dir().join(format!("ctcp_cli_store_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let d = dir.to_str().unwrap();
        // Seed two entries through the harness, as a cached sweep would.
        {
            let program = Arc::new(Benchmark::by_name("gzip").unwrap().program());
            let mk = |strategy: Strategy| {
                let cfg = SimConfig {
                    max_insts: 1_500,
                    strategy,
                    ..SimConfig::default()
                };
                Job::new("gzip", Arc::clone(&program), cfg)
            };
            let mut h = Harness::new()
                .jobs(1)
                .progress(false)
                .with_store(ResultStore::open(&dir).unwrap());
            let outcomes =
                h.try_run(&[mk(Strategy::Baseline), mk(Strategy::Fdrt { pinning: true })]);
            assert!(outcomes.iter().all(|o| o.report().is_some()));
        }
        // Tear a shard file the way a crash mid-append would.
        let shard = (0..ctcp_harness::STORE_SHARDS)
            .map(|i| dir.join(format!("shard-{i}.jsonl")))
            .find(|p| p.exists())
            .expect("the seeded store has at least one shard file");
        let mut text = std::fs::read_to_string(&shard).unwrap();
        text.push_str("{\"v\":2,\"key\":\"torn");
        std::fs::write(&shard, text).unwrap();

        let verify = run_outcome(&["store", "verify", "--dir", d]);
        assert_eq!(verify.exit_code, 1, "{}", verify.output);
        assert!(verify.output.contains("1 corrupt"), "{}", verify.output);

        let compact = run_outcome(&["store", "compact", "--dir", d]);
        assert_eq!(compact.exit_code, 0);
        assert!(
            compact.output.contains("kept 2 lines"),
            "{}",
            compact.output
        );
        assert!(
            compact.output.contains("1 quarantined"),
            "{}",
            compact.output
        );

        let clean = run_outcome(&["store", "verify", "--dir", d]);
        assert_eq!(clean.exit_code, 0, "{}", clean.output);
        assert!(clean.output.contains("0 corrupt"), "{}", clean.output);

        let gc = run_outcome(&["store", "gc", "--dir", d]);
        assert_eq!(gc.exit_code, 0);
        assert!(gc.output.contains("quarantine cleared"), "{}", gc.output);
        assert!(!dir.join("results.quarantine.jsonl").exists());
        for i in 0..ctcp_harness::STORE_SHARDS {
            assert!(!dir.join(format!("shard-{i}.quarantine.jsonl")).exists());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_verify_of_an_absent_store_is_an_empty_success() {
        let dir = std::env::temp_dir().join(format!("ctcp_cli_nostore_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let out = run_outcome(&["store", "verify", "--dir", dir.to_str().unwrap()]);
        assert_eq!(out.exit_code, 0);
        assert!(out.output.contains("0 lines"), "{}", out.output);
    }

    #[test]
    fn fault_free_sweep_exits_zero() {
        let out = run_outcome(&[
            "sweep",
            "--benches",
            "gzip",
            "--strategies",
            "fdrt",
            "--insts",
            "2000",
        ]);
        assert_eq!(out.exit_code, 0);
        assert!(!out.output.contains("jobs failed"), "{}", out.output);
    }

    #[test]
    fn analyze_prose_reports_stack_utilization_and_edges() {
        let out = run(&[
            "analyze",
            "gzip",
            "--strategies",
            "base,fdrt",
            "--insts",
            "4000",
        ])
        .unwrap();
        assert!(out.contains("cycle attribution"), "{out}");
        assert!(out.contains("CPI stack"), "{out}");
        assert!(out.contains("inter_cluster"), "{out}");
        assert!(out.contains("cluster utilization: c0"), "{out}");
        assert!(out.contains("critical path:"), "{out}");
        assert!(out.contains("\nbase:"), "{out}");
        assert!(out.contains("\nfdrt:"), "{out}");
    }

    #[test]
    fn analyze_json_stack_conserves_retire_bandwidth() {
        let out = run(&[
            "analyze",
            "gzip",
            "--strategies",
            "base",
            "--insts",
            "3000",
            "--json",
        ])
        .unwrap();
        let v = ctcp_sim::json::Value::parse(out.trim()).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str().unwrap(), "gzip");
        let strategies = v.get("strategies").unwrap().as_arr().unwrap();
        assert_eq!(strategies.len(), 1);
        let s = &strategies[0];
        let cycles = s.get("cycles").unwrap().as_u64().unwrap();
        let stack = s.get("attrib").unwrap().get("stack").unwrap();
        assert_eq!(stack.get("cycles").unwrap().as_u64().unwrap(), cycles);
        let slots = stack.get("slots").unwrap();
        let total: u64 = [
            "base",
            "inter_cluster",
            "rs_dispatch",
            "fetch",
            "branch_mispredict",
            "memory",
        ]
        .iter()
        .map(|k| slots.get(k).unwrap().as_u64().unwrap())
        .sum();
        let width = SimConfig::default().engine.retire_width as u64;
        assert_eq!(total, cycles * width, "stack must conserve every slot");
    }

    #[test]
    fn analyze_csv_has_one_row_per_strategy() {
        let out = run(&[
            "analyze",
            "gzip",
            "--strategies",
            "base,fdrt",
            "--insts",
            "3000",
            "--csv",
        ])
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("bench,strategy,cycles,ipc,base,inter_cluster"));
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("gzip,base,"));
        assert!(lines[2].starts_with("gzip,fdrt,"));
    }

    #[test]
    fn sweep_attrib_appends_the_attribution_table() {
        let out = run(&[
            "sweep",
            "--benches",
            "gzip",
            "--strategies",
            "fdrt",
            "--insts",
            "2000",
            "--attrib",
        ])
        .unwrap();
        assert!(
            out.contains("attribution (fraction of retire slots"),
            "{out}"
        );
        // Base + fdrt rows in the attribution table, on top of the two
        // occurrences in the speedup table.
        let tail = out.split("attribution").nth(1).unwrap();
        assert!(tail.contains("base"), "{out}");
        assert!(tail.contains("fdrt"), "{out}");
    }

    #[test]
    fn two_cluster_ring_configuration_runs() {
        let out = run(&[
            "run",
            "--bench",
            "gzip",
            "--insts",
            "3000",
            "--clusters",
            "2",
            "--topology",
            "ring",
            "--hop",
            "1",
        ])
        .unwrap();
        assert!(out.contains("IPC"));
    }
}
