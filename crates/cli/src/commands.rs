//! Command execution: everything returns the text to print so it can be
//! asserted on in tests.

use crate::args::{Cli, CliError, Command, ProgramSource, RunArgs, SweepArgs, USAGE};
use ctcp_core::Topology;
use ctcp_harness::{Harness, Job, ResultStore};
use ctcp_isa::{asm, Program};
use ctcp_sim::{SimConfig, SimReport, Simulation, Strategy};
use ctcp_workload::Benchmark;
use std::sync::Arc;

fn load_program(source: &ProgramSource) -> Result<Program, CliError> {
    match source {
        ProgramSource::Bench(name) => Benchmark::by_name(name)
            .map(|b| b.program())
            .ok_or_else(|| CliError(format!("unknown benchmark {name:?} (see `ctcp list`)"))),
        ProgramSource::AsmFile(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?;
            asm::assemble(&text).map_err(|e| CliError(format!("{path}: {e}")))
        }
    }
}

fn config(args: &RunArgs, strategy: Strategy) -> SimConfig {
    let mut c = SimConfig {
        strategy,
        max_insts: args.insts,
        ..SimConfig::default()
    };
    c.engine.geometry.clusters = args.clusters;
    c.engine.geometry.topology = args.topology;
    c.engine.hop_latency = args.hop_latency;
    c
}

fn simulate(program: &Program, args: &RunArgs, strategy: Strategy) -> SimReport {
    Simulation::new(program, config(args, strategy)).run()
}

fn describe(source: &ProgramSource) -> String {
    match source {
        ProgramSource::Bench(n) => n.clone(),
        ProgramSource::AsmFile(p) => p.clone(),
    }
}

/// Executes a parsed command line and returns what to print.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown benchmarks, unreadable or invalid
/// assembly files.
pub fn execute(cli: &Cli) -> Result<String, CliError> {
    match &cli.command {
        Command::Help => Ok(USAGE.to_string()),
        Command::List => {
            let mut out = String::from("SPECint2000-class presets:\n");
            for b in Benchmark::spec_all() {
                out.push_str(&format!("  {}\n", b.name));
            }
            out.push_str("MediaBench-class presets:\n");
            for b in Benchmark::mediabench() {
                out.push_str(&format!("  {}\n", b.name));
            }
            Ok(out)
        }
        Command::Disasm(source) => {
            let program = load_program(source)?;
            Ok(asm::disassemble(&program))
        }
        Command::Run(args) => {
            let program = load_program(&args.source)?;
            let r = simulate(&program, args, args.strategy);
            if args.csv {
                Ok(csv_report(&describe(&args.source), &r))
            } else {
                Ok(prose_report(&describe(&args.source), &r))
            }
        }
        Command::Compare(args) => {
            let program = load_program(&args.source)?;
            let base = simulate(&program, args, Strategy::Baseline);
            let strategies = [
                Strategy::IssueTime { latency: 0 },
                Strategy::IssueTime { latency: 4 },
                Strategy::Friendly { middle_bias: false },
                Strategy::Fdrt { pinning: true },
            ];
            let mut out = String::new();
            if args.csv {
                out.push_str("strategy,ipc,speedup,intra_cluster,distance\n");
                out.push_str(&format!(
                    "base,{:.4},1.0000,{:.4},{:.4}\n",
                    base.ipc,
                    base.fwd.intra_cluster_fraction(),
                    base.fwd.mean_distance()
                ));
            } else {
                out.push_str(&format!(
                    "{} — {} instructions, {} clusters\n",
                    describe(&args.source),
                    base.instructions,
                    args.clusters
                ));
                out.push_str(&format!(
                    "{:<16}{:>8}{:>10}{:>14}{:>10}\n",
                    "strategy", "ipc", "speedup", "intra-fwd", "distance"
                ));
                out.push_str(&format!(
                    "{:<16}{:>8.3}{:>10.3}{:>13.1}%{:>10.2}\n",
                    "base",
                    base.ipc,
                    1.0,
                    100.0 * base.fwd.intra_cluster_fraction(),
                    base.fwd.mean_distance()
                ));
            }
            for s in strategies {
                let r = simulate(&program, args, s);
                if args.csv {
                    out.push_str(&format!(
                        "{},{:.4},{:.4},{:.4},{:.4}\n",
                        r.strategy,
                        r.ipc,
                        r.speedup_over(&base),
                        r.fwd.intra_cluster_fraction(),
                        r.fwd.mean_distance()
                    ));
                } else {
                    out.push_str(&format!(
                        "{:<16}{:>8.3}{:>10.3}{:>13.1}%{:>10.2}\n",
                        r.strategy,
                        r.ipc,
                        r.speedup_over(&base),
                        100.0 * r.fwd.intra_cluster_fraction(),
                        r.fwd.mean_distance()
                    ));
                }
            }
            Ok(out)
        }
        Command::Sweep(args) => sweep(args),
    }
}

fn topology_name(t: Topology) -> &'static str {
    match t {
        Topology::Linear => "linear",
        Topology::Ring => "ring",
        Topology::FullyConnected => "full",
    }
}

/// Resolves `--benches` values: suite keywords or explicit names.
fn resolve_benches(names: &[String]) -> Result<Vec<Benchmark>, CliError> {
    match names {
        [kw] if kw == "spec" => return Ok(Benchmark::spec_all()),
        [kw] if kw == "media" => return Ok(Benchmark::mediabench()),
        [kw] if kw == "all" => {
            let mut all = Benchmark::spec_all();
            all.extend(Benchmark::mediabench());
            return Ok(all);
        }
        _ => {}
    }
    names
        .iter()
        .map(|n| {
            Benchmark::by_name(n)
                .ok_or_else(|| CliError(format!("unknown benchmark {n:?} (see `ctcp list`)")))
        })
        .collect()
}

/// Runs the full strategies × benchmarks × geometries grid through the
/// harness and renders one row per cell, with each cell's speedup taken
/// against the baseline of its own benchmark × geometry.
fn sweep(args: &SweepArgs) -> Result<String, CliError> {
    let benches = resolve_benches(&args.benches)?;
    let mut harness = Harness::new().jobs(args.jobs);
    if args.cache {
        match ResultStore::open(ResultStore::default_dir()) {
            Ok(store) => harness = harness.with_store(store),
            Err(e) => eprintln!("warning: result store unavailable ({e}); not caching"),
        }
    }

    // Describe the grid. `cells` remembers, for every non-baseline job,
    // which (bench, geometry, strategy) it renders as and where its
    // baseline sits in the job list.
    struct Cell {
        bench: &'static str,
        clusters: u8,
        topology: Topology,
        job: usize,
        base_job: usize,
    }
    let mut jobs: Vec<Job> = Vec::new();
    let mut cells: Vec<Cell> = Vec::new();
    for b in &benches {
        let program = Arc::new(b.program());
        for &clusters in &args.clusters {
            for &topology in &args.topologies {
                let geometry_config = |strategy: Strategy| {
                    let mut c = SimConfig {
                        strategy,
                        max_insts: args.insts,
                        ..SimConfig::default()
                    };
                    c.engine.geometry.clusters = clusters;
                    c.engine.geometry.topology = topology;
                    // Scale the front end with the execution core, as the
                    // paper does for its 8-wide/2-cluster machine: machine
                    // width = total slots, ROB sized 8 entries per slot.
                    let width = c.engine.geometry.total_slots();
                    c.engine.rename_width = width;
                    c.engine.retire_width = width;
                    c.engine.rob_entries = 8 * width;
                    c
                };
                let base_job = jobs.len();
                jobs.push(Job::new(
                    b.name,
                    Arc::clone(&program),
                    geometry_config(Strategy::Baseline),
                ));
                for &s in &args.strategies {
                    cells.push(Cell {
                        bench: b.name,
                        clusters,
                        topology,
                        job: jobs.len(),
                        base_job,
                    });
                    jobs.push(Job::new(b.name, Arc::clone(&program), geometry_config(s)));
                }
            }
        }
    }

    let reports = harness.run(&jobs);

    let mut out = String::new();
    if args.csv {
        out.push_str("bench,clusters,topology,strategy,ipc,speedup\n");
        for c in &cells {
            let r = &reports[c.job];
            out.push_str(&format!(
                "{},{},{},{},{:.4},{:.4}\n",
                c.bench,
                c.clusters,
                topology_name(c.topology),
                r.strategy,
                r.ipc,
                r.speedup_over(&reports[c.base_job])
            ));
        }
    } else {
        let stats = harness.last_batch();
        out.push_str(&format!(
            "sweep: {} cells ({} simulated, {} from store) in {:.1}s\n",
            stats.total,
            stats.simulated,
            stats.store_hits,
            stats.wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "{:<12}{:>9}{:>9}{:<2}{:<16}{:>8}{:>10}\n",
            "bench", "clusters", "topology", "", "strategy", "ipc", "speedup"
        ));
        for c in &cells {
            let r = &reports[c.job];
            out.push_str(&format!(
                "{:<12}{:>9}{:>9}{:<2}{:<16}{:>8.3}{:>10.3}\n",
                c.bench,
                c.clusters,
                topology_name(c.topology),
                "",
                r.strategy,
                r.ipc,
                r.speedup_over(&reports[c.base_job])
            ));
        }
    }
    Ok(out)
}

fn prose_report(name: &str, r: &SimReport) -> String {
    let (rf, rs1, rs2) = r.fwd.critical_source_distribution();
    let mut out = String::new();
    out.push_str(&format!("{name} under {}\n", r.strategy));
    out.push_str(&format!(
        "  {} instructions in {} cycles — IPC {:.3}\n",
        r.instructions, r.cycles, r.ipc
    ));
    out.push_str(&format!(
        "  fetch: {:.1}% from trace cache, avg trace {:.1} insts, \
         {:.2}% cond mispredict\n",
        100.0 * r.tc_inst_fraction(),
        r.avg_trace_size(),
        100.0 * r.mispredict_rate()
    ));
    out.push_str(&format!(
        "  forwarding: {:.1}% intra-cluster, mean distance {:.2} hops, \
         critical source RF {:.0}% / RS1 {:.0}% / RS2 {:.0}%\n",
        100.0 * r.fwd.intra_cluster_fraction(),
        r.fwd.mean_distance(),
        100.0 * rf,
        100.0 * rs1,
        100.0 * rs2
    ));
    out.push_str(&format!(
        "  memory: L1D miss {:.2}%, {} store-to-load forwards\n",
        100.0 * r.l1d.miss_rate(),
        r.engine.store_forwards
    ));
    if let Some(f) = &r.fdrt {
        out.push_str(&format!(
            "  fdrt: {} leaders, {} followers, migration {:.2}%\n",
            f.leaders_created,
            f.followers_created,
            100.0 * f.migration_rate()
        ));
    }
    out
}

fn csv_report(name: &str, r: &SimReport) -> String {
    format!(
        "name,strategy,instructions,cycles,ipc,tc_fraction,trace_size,mispredict,\
         intra_cluster,distance,l1d_miss\n\
         {name},{},{},{},{:.4},{:.4},{:.2},{:.4},{:.4},{:.4},{:.4}\n",
        r.strategy,
        r.instructions,
        r.cycles,
        r.ipc,
        r.tc_inst_fraction(),
        r.avg_trace_size(),
        r.mispredict_rate(),
        r.fwd.intra_cluster_fraction(),
        r.fwd.mean_distance(),
        r.l1d.miss_rate(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> Result<String, CliError> {
        execute(&Cli::parse(argv.iter().copied()).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn list_contains_both_suites() {
        let out = run(&["list"]).unwrap();
        assert!(out.contains("bzip2"));
        assert!(out.contains("mpeg2_enc"));
    }

    #[test]
    fn run_prose_report() {
        let out = run(&["run", "--bench", "gzip", "--insts", "4000"]).unwrap();
        assert!(out.contains("gzip under base"));
        assert!(out.contains("IPC"));
    }

    #[test]
    fn run_csv_report() {
        let out = run(&[
            "run",
            "--bench",
            "gzip",
            "--insts",
            "3000",
            "--strategy",
            "fdrt",
            "--csv",
        ])
        .unwrap();
        let mut lines = out.lines();
        assert!(lines.next().unwrap().starts_with("name,strategy"));
        assert!(lines.next().unwrap().starts_with("gzip,fdrt,3000"));
    }

    #[test]
    fn compare_lists_all_strategies() {
        let out = run(&["compare", "--bench", "gzip", "--insts", "3000"]).unwrap();
        for s in ["base", "issue-time(0)", "issue-time(4)", "friendly", "fdrt"] {
            assert!(out.contains(s), "missing {s} in:\n{out}");
        }
    }

    #[test]
    fn unknown_benchmark_is_a_clean_error() {
        let err = run(&["run", "--bench", "nonesuch"]).unwrap_err();
        assert!(err.0.contains("nonesuch"));
    }

    #[test]
    fn disasm_round_trips_through_the_assembler() {
        let out = run(&["disasm", "--bench", "adpcm_enc"]).unwrap();
        let reassembled = ctcp_isa::asm::assemble(&out).unwrap();
        let original = ctcp_workload::Benchmark::by_name("adpcm_enc")
            .unwrap()
            .program();
        assert_eq!(original.instructions(), reassembled.instructions());
    }

    #[test]
    fn asm_file_source_runs() {
        let dir = std::env::temp_dir().join("ctcp_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("k.s");
        std::fs::write(
            &path,
            "       movi r1, 0\n\
                    movi r2, 200\n\
             top:   addi r1, r1, 1\n\
                    blt  r1, r2, top\n\
                    halt\n",
        )
        .unwrap();
        let out = run(&["run", "--asm", path.to_str().unwrap(), "--insts", "10000"]).unwrap();
        assert!(out.contains("IPC"));
    }

    #[test]
    fn missing_asm_file_is_a_clean_error() {
        let err = run(&["run", "--asm", "/nonexistent/x.s"]).unwrap_err();
        assert!(err.0.contains("cannot read"));
    }

    #[test]
    fn sweep_prose_covers_the_grid() {
        let out = run(&[
            "sweep",
            "--benches",
            "gzip",
            "--strategies",
            "fdrt,friendly",
            "--clusters",
            "2,4",
            "--insts",
            "3000",
            "--jobs",
            "2",
        ])
        .unwrap();
        // 2 geometries × (1 base + 2 strategies) = 6 cells, 4 rendered rows.
        assert!(out.contains("sweep: 6 cells"));
        assert_eq!(out.matches("fdrt").count(), 2, "{out}");
        assert_eq!(out.matches("friendly").count(), 2, "{out}");
        assert!(out.contains("speedup"));
    }

    #[test]
    fn sweep_csv_has_one_row_per_cell() {
        let out = run(&[
            "sweep",
            "--benches",
            "gzip,twolf",
            "--strategies",
            "fdrt",
            "--insts",
            "3000",
            "--csv",
        ])
        .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "bench,clusters,topology,strategy,ipc,speedup");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("gzip,4,linear,fdrt,"));
        assert!(lines[2].starts_with("twolf,4,linear,fdrt,"));
    }

    #[test]
    fn sweep_output_is_independent_of_jobs() {
        let argv = |jobs: &'static str| {
            vec![
                "sweep",
                "--benches",
                "gzip",
                "--strategies",
                "fdrt,issue4",
                "--insts",
                "3000",
                "--csv",
                "--jobs",
                jobs,
            ]
        };
        assert_eq!(run(&argv("1")).unwrap(), run(&argv("8")).unwrap());
    }

    #[test]
    fn sweep_rejects_unknown_benchmark() {
        let err = run(&["sweep", "--benches", "nonesuch"]).unwrap_err();
        assert!(err.0.contains("nonesuch"));
    }

    #[test]
    fn two_cluster_ring_configuration_runs() {
        let out = run(&[
            "run",
            "--bench",
            "gzip",
            "--insts",
            "3000",
            "--clusters",
            "2",
            "--topology",
            "ring",
            "--hop",
            "1",
        ])
        .unwrap();
        assert!(out.contains("IPC"));
    }
}
