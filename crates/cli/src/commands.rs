//! Command execution: everything returns the text to print so it can be
//! asserted on in tests.

use crate::args::{Cli, CliError, Command, ProgramSource, RunArgs, USAGE};
use ctcp_isa::{asm, Program};
use ctcp_sim::{SimConfig, SimReport, Simulation, Strategy};
use ctcp_workload::Benchmark;

fn load_program(source: &ProgramSource) -> Result<Program, CliError> {
    match source {
        ProgramSource::Bench(name) => Benchmark::by_name(name)
            .map(|b| b.program())
            .ok_or_else(|| CliError(format!("unknown benchmark {name:?} (see `ctcp list`)"))),
        ProgramSource::AsmFile(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError(format!("cannot read {path:?}: {e}")))?;
            asm::assemble(&text).map_err(|e| CliError(format!("{path}: {e}")))
        }
    }
}

fn config(args: &RunArgs, strategy: Strategy) -> SimConfig {
    let mut c = SimConfig {
        strategy,
        max_insts: args.insts,
        ..SimConfig::default()
    };
    c.engine.geometry.clusters = args.clusters;
    c.engine.geometry.topology = args.topology;
    c.engine.hop_latency = args.hop_latency;
    c
}

fn simulate(program: &Program, args: &RunArgs, strategy: Strategy) -> SimReport {
    Simulation::new(program, config(args, strategy)).run()
}

fn describe(source: &ProgramSource) -> String {
    match source {
        ProgramSource::Bench(n) => n.clone(),
        ProgramSource::AsmFile(p) => p.clone(),
    }
}

/// Executes a parsed command line and returns what to print.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown benchmarks, unreadable or invalid
/// assembly files.
pub fn execute(cli: &Cli) -> Result<String, CliError> {
    match &cli.command {
        Command::Help => Ok(USAGE.to_string()),
        Command::List => {
            let mut out = String::from("SPECint2000-class presets:\n");
            for b in Benchmark::spec_all() {
                out.push_str(&format!("  {}\n", b.name));
            }
            out.push_str("MediaBench-class presets:\n");
            for b in Benchmark::mediabench() {
                out.push_str(&format!("  {}\n", b.name));
            }
            Ok(out)
        }
        Command::Disasm(source) => {
            let program = load_program(source)?;
            Ok(asm::disassemble(&program))
        }
        Command::Run(args) => {
            let program = load_program(&args.source)?;
            let r = simulate(&program, args, args.strategy);
            if args.csv {
                Ok(csv_report(&describe(&args.source), &r))
            } else {
                Ok(prose_report(&describe(&args.source), &r))
            }
        }
        Command::Compare(args) => {
            let program = load_program(&args.source)?;
            let base = simulate(&program, args, Strategy::Baseline);
            let strategies = [
                Strategy::IssueTime { latency: 0 },
                Strategy::IssueTime { latency: 4 },
                Strategy::Friendly { middle_bias: false },
                Strategy::Fdrt { pinning: true },
            ];
            let mut out = String::new();
            if args.csv {
                out.push_str("strategy,ipc,speedup,intra_cluster,distance\n");
                out.push_str(&format!(
                    "base,{:.4},1.0000,{:.4},{:.4}\n",
                    base.ipc,
                    base.fwd.intra_cluster_fraction(),
                    base.fwd.mean_distance()
                ));
            } else {
                out.push_str(&format!(
                    "{} — {} instructions, {} clusters\n",
                    describe(&args.source),
                    base.instructions,
                    args.clusters
                ));
                out.push_str(&format!(
                    "{:<16}{:>8}{:>10}{:>14}{:>10}\n",
                    "strategy", "ipc", "speedup", "intra-fwd", "distance"
                ));
                out.push_str(&format!(
                    "{:<16}{:>8.3}{:>10.3}{:>13.1}%{:>10.2}\n",
                    "base",
                    base.ipc,
                    1.0,
                    100.0 * base.fwd.intra_cluster_fraction(),
                    base.fwd.mean_distance()
                ));
            }
            for s in strategies {
                let r = simulate(&program, args, s);
                if args.csv {
                    out.push_str(&format!(
                        "{},{:.4},{:.4},{:.4},{:.4}\n",
                        r.strategy,
                        r.ipc,
                        r.speedup_over(&base),
                        r.fwd.intra_cluster_fraction(),
                        r.fwd.mean_distance()
                    ));
                } else {
                    out.push_str(&format!(
                        "{:<16}{:>8.3}{:>10.3}{:>13.1}%{:>10.2}\n",
                        r.strategy,
                        r.ipc,
                        r.speedup_over(&base),
                        100.0 * r.fwd.intra_cluster_fraction(),
                        r.fwd.mean_distance()
                    ));
                }
            }
            Ok(out)
        }
    }
}

fn prose_report(name: &str, r: &SimReport) -> String {
    let (rf, rs1, rs2) = r.fwd.critical_source_distribution();
    let mut out = String::new();
    out.push_str(&format!("{name} under {}\n", r.strategy));
    out.push_str(&format!(
        "  {} instructions in {} cycles — IPC {:.3}\n",
        r.instructions, r.cycles, r.ipc
    ));
    out.push_str(&format!(
        "  fetch: {:.1}% from trace cache, avg trace {:.1} insts, \
         {:.2}% cond mispredict\n",
        100.0 * r.tc_inst_fraction(),
        r.avg_trace_size(),
        100.0 * r.mispredict_rate()
    ));
    out.push_str(&format!(
        "  forwarding: {:.1}% intra-cluster, mean distance {:.2} hops, \
         critical source RF {:.0}% / RS1 {:.0}% / RS2 {:.0}%\n",
        100.0 * r.fwd.intra_cluster_fraction(),
        r.fwd.mean_distance(),
        100.0 * rf,
        100.0 * rs1,
        100.0 * rs2
    ));
    out.push_str(&format!(
        "  memory: L1D miss {:.2}%, {} store-to-load forwards\n",
        100.0 * r.l1d.miss_rate(),
        r.engine.store_forwards
    ));
    if let Some(f) = &r.fdrt {
        out.push_str(&format!(
            "  fdrt: {} leaders, {} followers, migration {:.2}%\n",
            f.leaders_created,
            f.followers_created,
            100.0 * f.migration_rate()
        ));
    }
    out
}

fn csv_report(name: &str, r: &SimReport) -> String {
    format!(
        "name,strategy,instructions,cycles,ipc,tc_fraction,trace_size,mispredict,\
         intra_cluster,distance,l1d_miss\n\
         {name},{},{},{},{:.4},{:.4},{:.2},{:.4},{:.4},{:.4},{:.4}\n",
        r.strategy,
        r.instructions,
        r.cycles,
        r.ipc,
        r.tc_inst_fraction(),
        r.avg_trace_size(),
        r.mispredict_rate(),
        r.fwd.intra_cluster_fraction(),
        r.fwd.mean_distance(),
        r.l1d.miss_rate(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &[&str]) -> Result<String, CliError> {
        execute(&Cli::parse(argv.iter().copied()).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn list_contains_both_suites() {
        let out = run(&["list"]).unwrap();
        assert!(out.contains("bzip2"));
        assert!(out.contains("mpeg2_enc"));
    }

    #[test]
    fn run_prose_report() {
        let out = run(&["run", "--bench", "gzip", "--insts", "4000"]).unwrap();
        assert!(out.contains("gzip under base"));
        assert!(out.contains("IPC"));
    }

    #[test]
    fn run_csv_report() {
        let out = run(&[
            "run", "--bench", "gzip", "--insts", "3000", "--strategy", "fdrt", "--csv",
        ])
        .unwrap();
        let mut lines = out.lines();
        assert!(lines.next().unwrap().starts_with("name,strategy"));
        assert!(lines.next().unwrap().starts_with("gzip,fdrt,3000"));
    }

    #[test]
    fn compare_lists_all_strategies() {
        let out = run(&["compare", "--bench", "gzip", "--insts", "3000"]).unwrap();
        for s in ["base", "issue-time(0)", "issue-time(4)", "friendly", "fdrt"] {
            assert!(out.contains(s), "missing {s} in:\n{out}");
        }
    }

    #[test]
    fn unknown_benchmark_is_a_clean_error() {
        let err = run(&["run", "--bench", "nonesuch"]).unwrap_err();
        assert!(err.0.contains("nonesuch"));
    }

    #[test]
    fn disasm_round_trips_through_the_assembler() {
        let out = run(&["disasm", "--bench", "adpcm_enc"]).unwrap();
        let reassembled = ctcp_isa::asm::assemble(&out).unwrap();
        let original = ctcp_workload::Benchmark::by_name("adpcm_enc")
            .unwrap()
            .program();
        assert_eq!(original.instructions(), reassembled.instructions());
    }

    #[test]
    fn asm_file_source_runs(){
        let dir = std::env::temp_dir().join("ctcp_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("k.s");
        std::fs::write(
            &path,
            "       movi r1, 0\n\
                    movi r2, 200\n\
             top:   addi r1, r1, 1\n\
                    blt  r1, r2, top\n\
                    halt\n",
        )
        .unwrap();
        let out = run(&["run", "--asm", path.to_str().unwrap(), "--insts", "10000"]).unwrap();
        assert!(out.contains("IPC"));
    }

    #[test]
    fn missing_asm_file_is_a_clean_error() {
        let err = run(&["run", "--asm", "/nonexistent/x.s"]).unwrap_err();
        assert!(err.0.contains("cannot read"));
    }

    #[test]
    fn two_cluster_ring_configuration_runs() {
        let out = run(&[
            "run", "--bench", "gzip", "--insts", "3000", "--clusters", "2", "--topology",
            "ring", "--hop", "1",
        ])
        .unwrap();
        assert!(out.contains("IPC"));
    }
}
