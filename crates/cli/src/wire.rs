//! JSON codec between the CLI's argument structs and the sweep
//! service's wire bodies.
//!
//! `ctcp client sweep` encodes a [`SweepArgs`] with this module, ships
//! it to the daemon as the `POST /sweep` body, and the daemon's handler
//! decodes it back — both ends reuse the CLI's own flag spellings
//! (strategy and topology names exactly as `--strategies`/`--topology`
//! accept them), so the wire vocabulary can never drift from the
//! command line's.
//!
//! Execution-placement knobs (`--jobs`, `--cache`, `--metrics-out`)
//! are deliberately *not* part of the sweep body: they describe the
//! daemon's machine, not the experiment, and are fixed when the daemon
//! starts. Decoded args always come back with those fields at their
//! daemon-side values (`jobs: 0`, `cache: false`, `metrics_out: None`).

use crate::args::{
    parse_strategy, parse_topology, AnalyzeArgs, CliError, ProgramSource, SweepArgs,
};
use ctcp_core::Topology;
use ctcp_harness::SweepSpec;
use ctcp_sim::Strategy;
use ctcp_telemetry::json::Value;

/// The CLI spelling of a strategy, the inverse of
/// [`parse_strategy`](crate::args::parse_strategy).
pub fn strategy_cli_name(s: Strategy) -> &'static str {
    match s {
        Strategy::Baseline => "base",
        Strategy::IssueTime { latency: 0 } => "issue0",
        Strategy::IssueTime { .. } => "issue4",
        Strategy::Friendly { middle_bias: false } => "friendly",
        Strategy::Friendly { middle_bias: true } => "friendly-mid",
        Strategy::Fdrt { pinning: true } => "fdrt",
        Strategy::Fdrt { pinning: false } => "fdrt-nopin",
        Strategy::FdrtIntraOnly => "fdrt-intra",
    }
}

/// The CLI spelling of a topology, the inverse of `parse_topology`.
pub fn topology_cli_name(t: Topology) -> &'static str {
    match t {
        Topology::Linear => "linear",
        Topology::Ring => "ring",
        Topology::FullyConnected => "full",
    }
}

fn str_arr<T, F: Fn(&T) -> String>(items: &[T], f: F) -> Value {
    Value::Arr(items.iter().map(|i| Value::Str(f(i))).collect())
}

/// Encodes a sweep request body.
pub fn sweep_to_json(a: &SweepArgs) -> Value {
    let mut fields = vec![
        ("benches".into(), str_arr(&a.spec.benches, Clone::clone)),
        (
            "strategies".into(),
            str_arr(&a.spec.strategies, |&s| strategy_cli_name(s).to_string()),
        ),
        (
            "clusters".into(),
            Value::Arr(
                a.spec
                    .clusters
                    .iter()
                    .map(|&c| Value::u64(c.into()))
                    .collect(),
            ),
        ),
        (
            "topologies".into(),
            str_arr(&a.spec.topologies, |&t| topology_cli_name(t).to_string()),
        ),
        ("insts".into(), Value::u64(a.spec.insts)),
        ("csv".into(), Value::Bool(a.csv)),
        ("attrib".into(), Value::Bool(a.attrib)),
    ];
    // Warmup post-dates the v1 body: emit only when set so a warmup-free
    // request renders byte-identically to what older daemons expect.
    if a.spec.warmup != 0 {
        fields.push(("warmup".into(), Value::u64(a.spec.warmup)));
    }
    Value::Obj(fields)
}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value, CliError> {
    v.get(key)
        .ok_or_else(|| CliError(format!("request body is missing {key:?}")))
}

fn str_list(v: &Value, key: &str) -> Result<Vec<String>, CliError> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| CliError(format!("{key:?} must be an array")))?
        .iter()
        .map(|e| {
            e.as_str()
                .map(str::to_string)
                .ok_or_else(|| CliError(format!("{key:?} must hold strings")))
        })
        .collect()
}

fn u64_field(v: &Value, key: &str) -> Result<u64, CliError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| CliError(format!("{key:?} must be an unsigned integer")))
}

fn bool_field(v: &Value, key: &str) -> Result<bool, CliError> {
    match field(v, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(CliError(format!("{key:?} must be a boolean"))),
    }
}

/// Decodes a sweep request body, validating every field with the same
/// rules as the command line.
pub fn sweep_from_json(v: &Value) -> Result<SweepArgs, CliError> {
    let strategies = str_list(v, "strategies")?
        .iter()
        .map(|s| parse_strategy(s))
        .collect::<Result<_, _>>()?;
    let topologies = str_list(v, "topologies")?
        .iter()
        .map(|t| parse_topology(t))
        .collect::<Result<_, _>>()?;
    let clusters = field(v, "clusters")?
        .as_arr()
        .ok_or_else(|| CliError("\"clusters\" must be an array".into()))?
        .iter()
        .map(|c| {
            c.as_u64()
                .and_then(|n| u8::try_from(n).ok())
                .filter(|c| (1..=8).contains(c))
                .ok_or_else(|| CliError(format!("bad cluster count {} (1..=8)", c.render())))
        })
        .collect::<Result<_, _>>()?;
    // Absent means zero: warmup-free bodies predate the field.
    let warmup = match v.get("warmup") {
        None => 0,
        Some(w) => w
            .as_u64()
            .ok_or_else(|| CliError("\"warmup\" must be an unsigned integer".into()))?,
    };
    Ok(SweepArgs {
        spec: SweepSpec {
            benches: str_list(v, "benches")?,
            strategies,
            clusters,
            topologies,
            insts: u64_field(v, "insts")?,
            warmup,
        },
        csv: bool_field(v, "csv")?,
        attrib: bool_field(v, "attrib")?,
        // Daemon-side knobs: fixed at daemon start, never on the wire.
        jobs: 0,
        cache: false,
        metrics_out: None,
    })
}

/// Encodes an analyze request body.
///
/// # Errors
///
/// Remote analysis only supports benchmark presets — an `--asm` file
/// lives on the client's filesystem, which the daemon cannot see.
pub fn analyze_to_json(a: &AnalyzeArgs) -> Result<Value, CliError> {
    let ProgramSource::Bench(bench) = &a.run.source else {
        return Err(CliError(
            "client analyze needs --bench (the daemon cannot read local --asm files)".into(),
        ));
    };
    Ok(Value::Obj(vec![
        ("bench".into(), Value::str(bench)),
        (
            "strategies".into(),
            str_arr(&a.strategies, |&s| strategy_cli_name(s).to_string()),
        ),
        ("insts".into(), Value::u64(a.run.insts)),
        ("clusters".into(), Value::u64(a.run.clusters.into())),
        (
            "topology".into(),
            Value::str(topology_cli_name(a.run.topology)),
        ),
        ("hop".into(), Value::u64(a.run.hop_latency)),
        ("top".into(), Value::u64(a.top as u64)),
        ("json".into(), Value::Bool(a.json)),
        ("csv".into(), Value::Bool(a.run.csv)),
    ]))
}

/// Decodes an analyze request body.
pub fn analyze_from_json(v: &Value) -> Result<AnalyzeArgs, CliError> {
    let mut out = AnalyzeArgs::default();
    let bench = field(v, "bench")?
        .as_str()
        .ok_or_else(|| CliError("\"bench\" must be a string".into()))?;
    out.run.source = ProgramSource::Bench(bench.to_string());
    out.strategies = str_list(v, "strategies")?
        .iter()
        .map(|s| parse_strategy(s))
        .collect::<Result<_, _>>()?;
    out.run.insts = u64_field(v, "insts")?;
    out.run.clusters = u8::try_from(u64_field(v, "clusters")?)
        .ok()
        .filter(|c| (1..=8).contains(c))
        .ok_or_else(|| CliError("bad \"clusters\" value (1..=8)".into()))?;
    out.run.topology = parse_topology(
        field(v, "topology")?
            .as_str()
            .ok_or_else(|| CliError("\"topology\" must be a string".into()))?,
    )?;
    out.run.hop_latency = u64_field(v, "hop")?;
    out.top =
        usize::try_from(u64_field(v, "top")?).map_err(|_| CliError("bad \"top\" value".into()))?;
    out.json = bool_field(v, "json")?;
    out.run.csv = bool_field(v, "csv")?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_strategy_name_round_trips() {
        for s in [
            Strategy::Baseline,
            Strategy::IssueTime { latency: 0 },
            Strategy::IssueTime { latency: 4 },
            Strategy::Friendly { middle_bias: false },
            Strategy::Friendly { middle_bias: true },
            Strategy::Fdrt { pinning: true },
            Strategy::Fdrt { pinning: false },
            Strategy::FdrtIntraOnly,
        ] {
            assert_eq!(parse_strategy(strategy_cli_name(s)).unwrap(), s);
        }
        for t in [Topology::Linear, Topology::Ring, Topology::FullyConnected] {
            assert_eq!(parse_topology(topology_cli_name(t)).unwrap(), t);
        }
    }

    #[test]
    fn sweep_args_round_trip_through_json() {
        let mut args = SweepArgs {
            spec: SweepSpec {
                benches: vec!["gzip".into(), "twolf".into()],
                strategies: vec![
                    Strategy::Fdrt { pinning: true },
                    Strategy::Friendly { middle_bias: true },
                ],
                clusters: vec![2, 4],
                topologies: vec![Topology::Ring, Topology::FullyConnected],
                insts: 12_345,
                warmup: 6_000,
            },
            csv: true,
            attrib: true,
            // Daemon-side knobs are dropped by the codec.
            jobs: 7,
            cache: true,
            metrics_out: Some("m.jsonl".into()),
        };
        let rendered = sweep_to_json(&args).render();
        let decoded = sweep_from_json(&Value::parse(&rendered).unwrap()).unwrap();
        args.jobs = 0;
        args.cache = false;
        args.metrics_out = None;
        assert_eq!(decoded, args);
    }

    #[test]
    fn warmup_free_bodies_stay_byte_identical() {
        // A spec with warmup 0 must render exactly the pre-warmup body
        // (no "warmup" key) and such bodies must decode to warmup 0.
        let args = SweepArgs {
            spec: SweepSpec {
                benches: vec!["gzip".into()],
                strategies: vec![Strategy::Fdrt { pinning: true }],
                clusters: vec![4],
                topologies: vec![Topology::Linear],
                insts: 1_000,
                warmup: 0,
            },
            ..SweepArgs::default()
        };
        let rendered = sweep_to_json(&args).render();
        assert!(!rendered.contains("warmup"), "{rendered}");
        let decoded = sweep_from_json(&Value::parse(&rendered).unwrap()).unwrap();
        assert_eq!(decoded.spec.warmup, 0);
        // And a bad warmup value is a clean decode error.
        let bad = rendered.replacen('{', "{\"warmup\":\"soon\",", 1);
        assert!(sweep_from_json(&Value::parse(&bad).unwrap()).is_err());
    }

    #[test]
    fn analyze_args_round_trip_through_json() {
        let mut args = AnalyzeArgs::default();
        args.run.source = ProgramSource::Bench("twolf".into());
        args.run.insts = 9_000;
        args.run.clusters = 2;
        args.run.topology = Topology::Ring;
        args.run.hop_latency = 1;
        args.strategies = vec![Strategy::Baseline, Strategy::Fdrt { pinning: true }];
        args.top = 3;
        args.json = true;
        let rendered = analyze_to_json(&args).unwrap().render();
        let decoded = analyze_from_json(&Value::parse(&rendered).unwrap()).unwrap();
        assert_eq!(decoded, args);
    }

    #[test]
    fn asm_sources_cannot_cross_the_wire() {
        let mut args = AnalyzeArgs::default();
        args.run.source = ProgramSource::AsmFile("k.s".into());
        let err = analyze_to_json(&args).unwrap_err();
        assert!(err.0.contains("--bench"), "{err}");
    }

    #[test]
    fn malformed_bodies_decode_to_clean_errors() {
        for body in [
            "{}",
            "{\"benches\":[\"gzip\"]}",
            "{\"benches\":[\"gzip\"],\"strategies\":[\"warp\"],\"clusters\":[4],\
             \"topologies\":[\"linear\"],\"insts\":1,\"csv\":false,\"attrib\":false}",
            "{\"benches\":[\"gzip\"],\"strategies\":[\"fdrt\"],\"clusters\":[9],\
             \"topologies\":[\"linear\"],\"insts\":1,\"csv\":false,\"attrib\":false}",
        ] {
            let v = Value::parse(body).unwrap();
            assert!(sweep_from_json(&v).is_err(), "{body}");
        }
    }
}
