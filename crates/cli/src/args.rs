//! Argument parsing (hand-rolled: the workspace avoids non-approved
//! dependencies).

use ctcp_core::Topology;
use ctcp_harness::SweepSpec;
use ctcp_sim::Strategy;
use std::fmt;

/// Source of the program to simulate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramSource {
    /// A named synthetic benchmark preset.
    Bench(String),
    /// A TRISC assembly file.
    AsmFile(String),
}

/// Options shared by `run` and `compare`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// What to simulate.
    pub source: ProgramSource,
    /// Strategy (only used by `run`).
    pub strategy: Strategy,
    /// Timed instruction budget.
    pub insts: u64,
    /// Instructions to fast-forward (functional warmup, no timing)
    /// before the timed phase.
    pub warmup: u64,
    /// Number of clusters.
    pub clusters: u8,
    /// Interconnect topology.
    pub topology: Topology,
    /// Forwarding latency per hop.
    pub hop_latency: u64,
    /// Emit machine-readable CSV instead of prose.
    pub csv: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            source: ProgramSource::Bench("gzip".into()),
            strategy: Strategy::Baseline,
            insts: 100_000,
            warmup: 0,
            clusters: 4,
            topology: Topology::Linear,
            hop_latency: 2,
            csv: false,
        }
    }
}

/// Options for the `trace` pipeline-telemetry command.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceArgs {
    /// Program, strategy, geometry, budget (shared with `run`).
    pub run: RunArgs,
    /// Chrome trace-event JSON output path.
    pub out: String,
    /// Optional JSONL metrics dump path.
    pub metrics_out: Option<String>,
    /// Record every Nth instruction's timeline (0 = metrics only).
    pub sample: u64,
    /// Event ring capacity (oldest events are dropped beyond this).
    pub events: usize,
    /// Validate the emitted trace and reconcile counters with the
    /// report before returning.
    pub check: bool,
}

impl Default for TraceArgs {
    fn default() -> Self {
        TraceArgs {
            run: RunArgs::default(),
            out: "ctcp-trace.json".into(),
            metrics_out: None,
            sample: 1,
            events: 1 << 16,
            check: false,
        }
    }
}

/// Options for the `sweep` grid runner: the grid itself is a
/// [`SweepSpec`] (the same type the wire codec and the harness consume),
/// plus execution and rendering knobs that never cross the wire.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepArgs {
    /// The grid: benchmarks × strategies × geometries, with the
    /// warmup/measurement budget. Benchmark names may still be suite
    /// keywords (`spec`/`media`/`all`) — resolved at execution time.
    pub spec: SweepSpec,
    /// Worker threads (0 = available parallelism).
    pub jobs: usize,
    /// Memoize cells in the on-disk result store.
    pub cache: bool,
    /// Emit machine-readable CSV instead of prose.
    pub csv: bool,
    /// Stream one JSONL metrics record per simulated cell to this path.
    pub metrics_out: Option<String>,
    /// Collect per-cell CPI stacks and append a strategy × benchmark
    /// attribution table after the speedup table.
    pub attrib: bool,
}

/// Options for the `analyze` cycle-attribution command.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeArgs {
    /// Program, geometry, budget (shared with `run`; the shared
    /// `--strategy` is ignored — analyze runs its own strategy list).
    pub run: RunArgs,
    /// Strategies to attribute, in report order.
    pub strategies: Vec<Strategy>,
    /// Emit the full attribution as one JSON document.
    pub json: bool,
    /// How many critical-path edges to report per strategy.
    pub top: usize,
}

impl Default for AnalyzeArgs {
    fn default() -> Self {
        AnalyzeArgs {
            run: RunArgs::default(),
            strategies: vec![
                Strategy::Baseline,
                Strategy::IssueTime { latency: 4 },
                Strategy::Friendly { middle_bias: false },
                Strategy::Fdrt { pinning: true },
            ],
            json: false,
            top: 8,
        }
    }
}

/// Maintenance action for the on-disk result store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreAction {
    /// Read-only integrity scan; exits non-zero if corruption is found.
    Verify,
    /// Rewrite to one line per key (newest wins), quarantining damage.
    Compact,
    /// Compact, then delete the quarantine file.
    Gc,
}

/// Options for the `store` maintenance command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreArgs {
    /// What to do to the store.
    pub action: StoreAction,
    /// Store directory; `None` means the default `target/ctcp-results`.
    pub dir: Option<String>,
}

/// Options for the `serve` resident-daemon command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeArgs {
    /// Address to listen on; port `0` picks an ephemeral port (the
    /// daemon prints the bound address either way).
    pub addr: String,
    /// Resident worker threads in the shared cell pool (0 = available
    /// parallelism).
    pub jobs: usize,
    /// Admission bound on queued (not yet running) cells across all
    /// in-flight requests; a batch that would push past it is refused
    /// with a typed `503`. `0` = unbounded.
    pub max_queue: usize,
    /// Result-store directory; `None` means the default
    /// `target/ctcp-results`.
    pub dir: Option<String>,
    /// Structured-log threshold (`off|error|warn|info|debug`); `None`
    /// defers to the `CTCP_LOG` environment variable (default `warn`).
    pub log_level: Option<String>,
    /// Append structured log lines to this file instead of stderr.
    pub log_file: Option<String>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        ServeArgs {
            addr: "127.0.0.1:0".into(),
            jobs: 0,
            max_queue: 0,
            dir: None,
            log_level: None,
            log_file: None,
        }
    }
}

/// Options for the `top` live-dashboard command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopArgs {
    /// Daemon address, as printed by `ctcp serve` (always required).
    pub addr: String,
    /// Refresh period between dashboard redraws, in milliseconds.
    pub interval_ms: u64,
    /// Render one frame and exit (no screen clearing) — for scripts
    /// and CI gates.
    pub once: bool,
}

impl Default for TopArgs {
    fn default() -> Self {
        TopArgs {
            addr: String::new(),
            interval_ms: 1000,
            once: false,
        }
    }
}

/// What `ctcp client` asks a running daemon to do.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientAction {
    /// Run a sweep remotely, streaming progress back.
    Sweep(SweepArgs),
    /// Run a cycle-attribution analysis remotely.
    Analyze(AnalyzeArgs),
    /// Re-attach to an admitted batch by its resume token and stream
    /// it from the beginning.
    Resume(String),
    /// Print the daemon's status document (queue depth, counters).
    Status,
    /// Ask the daemon to drain and exit.
    Shutdown,
}

/// Options for the `client` command.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientArgs {
    /// Daemon address, as printed by `ctcp serve` (always required).
    pub addr: String,
    /// Reconnect attempts for batch actions after a connection failure
    /// or a `503` (the daemon's `Retry-After` hint is honored).
    pub retries: u32,
    /// Base reconnect delay in milliseconds, doubled per attempt with
    /// jitter.
    pub backoff_ms: u64,
    /// What to ask the daemon to do.
    pub action: ClientAction,
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List available benchmark presets.
    List,
    /// Run one strategy and print its report.
    Run(RunArgs),
    /// Run every strategy and print a comparison table.
    Compare(RunArgs),
    /// Run a strategies × benchmarks × geometries grid in parallel.
    Sweep(SweepArgs),
    /// Run one strategy with telemetry on and export a Chrome trace.
    Trace(TraceArgs),
    /// Attribute every cycle of retire bandwidth per strategy: CPI
    /// stack, per-cluster utilization, top critical-path edges.
    Analyze(AnalyzeArgs),
    /// Print the disassembly of the selected program.
    Disasm(ProgramSource),
    /// Inspect or maintain the on-disk result store.
    Store(StoreArgs),
    /// Run the resident sweep service (daemon).
    Serve(ServeArgs),
    /// Talk to a running sweep service.
    Client(ClientArgs),
    /// Live terminal dashboard over a running sweep service.
    Top(TopArgs),
    /// Print usage.
    Help,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// The parsed CLI entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The command to execute.
    pub command: Command,
}

/// Parses a strategy name as accepted by `--strategy`.
pub fn parse_strategy(s: &str) -> Result<Strategy, CliError> {
    match s {
        "base" | "baseline" => Ok(Strategy::Baseline),
        "issue0" | "issue-time-0" => Ok(Strategy::IssueTime { latency: 0 }),
        "issue4" | "issue-time" | "issue-time-4" => Ok(Strategy::IssueTime { latency: 4 }),
        "friendly" => Ok(Strategy::Friendly { middle_bias: false }),
        "friendly-mid" => Ok(Strategy::Friendly { middle_bias: true }),
        "fdrt" => Ok(Strategy::Fdrt { pinning: true }),
        "fdrt-nopin" => Ok(Strategy::Fdrt { pinning: false }),
        "fdrt-intra" => Ok(Strategy::FdrtIntraOnly),
        other => Err(CliError(format!(
            "unknown strategy {other:?} (try: base issue0 issue4 friendly friendly-mid \
             fdrt fdrt-nopin fdrt-intra)"
        ))),
    }
}

impl Cli {
    /// Parses argv (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] describing the first problem encountered.
    pub fn parse<I, S>(argv: I) -> Result<Cli, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let args: Vec<String> = argv.into_iter().map(Into::into).collect();
        let Some(cmd) = args.first() else {
            return Ok(Cli {
                command: Command::Help,
            });
        };
        let rest = &args[1..];
        let command = match cmd.as_str() {
            "list" => {
                expect_no_args(rest)?;
                Command::List
            }
            "help" | "--help" | "-h" => Command::Help,
            "run" => Command::Run(parse_run_args(rest)?),
            "compare" => Command::Compare(parse_run_args(rest)?),
            "sweep" => Command::Sweep(parse_sweep_args(rest)?),
            "trace" => Command::Trace(parse_trace_args(rest)?),
            "analyze" => Command::Analyze(parse_analyze_args(rest)?),
            "store" => Command::Store(parse_store_args(rest)?),
            "serve" => Command::Serve(parse_serve_args(rest)?),
            "client" => Command::Client(parse_client_args(rest)?),
            "top" => Command::Top(parse_top_args(rest)?),
            "disasm" => {
                let ra = parse_run_args(rest)?;
                Command::Disasm(ra.source)
            }
            other => return Err(CliError(format!("unknown command {other:?}"))),
        };
        Ok(Cli { command })
    }
}

fn expect_no_args(rest: &[String]) -> Result<(), CliError> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(CliError(format!("unexpected argument {:?}", rest[0])))
    }
}

fn parse_run_args(rest: &[String]) -> Result<RunArgs, CliError> {
    let mut out = RunArgs::default();
    let mut source: Option<ProgramSource> = None;
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, CliError> {
        *i += 1;
        rest.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("{} needs a value", rest[*i - 1])))
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--bench" => source = Some(ProgramSource::Bench(value(&mut i)?)),
            "--asm" => source = Some(ProgramSource::AsmFile(value(&mut i)?)),
            "--strategy" => out.strategy = parse_strategy(&value(&mut i)?)?,
            "--insts" => {
                let v = value(&mut i)?;
                out.insts = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --insts value {v:?}")))?;
            }
            "--warmup" => {
                let v = value(&mut i)?;
                out.warmup = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --warmup value {v:?}")))?;
            }
            "--clusters" => {
                let v = value(&mut i)?;
                out.clusters = v
                    .parse()
                    .ok()
                    .filter(|&c: &u8| (1..=8).contains(&c))
                    .ok_or_else(|| CliError(format!("bad --clusters value {v:?} (1..=8)")))?;
            }
            "--topology" => out.topology = parse_topology(&value(&mut i)?)?,
            "--hop" => {
                let v = value(&mut i)?;
                out.hop_latency = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --hop value {v:?}")))?;
            }
            "--csv" => out.csv = true,
            other => return Err(CliError(format!("unknown flag {other:?}"))),
        }
        i += 1;
    }
    if let Some(s) = source {
        out.source = s;
    }
    Ok(out)
}

fn parse_trace_args(rest: &[String]) -> Result<TraceArgs, CliError> {
    let mut out = TraceArgs::default();
    // Trace-specific flags are consumed here; everything else (source,
    // strategy, geometry, budget) is collected and handed to the shared
    // `run` parser.
    let mut shared: Vec<String> = Vec::new();
    let mut i = 0;
    // A leading bare word is the benchmark name: `ctcp trace gzip`.
    if rest.first().is_some_and(|a| !a.starts_with("--")) {
        shared.push("--bench".into());
        shared.push(rest[0].clone());
        i = 1;
    }
    let value = |i: &mut usize| -> Result<String, CliError> {
        *i += 1;
        rest.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("{} needs a value", rest[*i - 1])))
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--out" => out.out = value(&mut i)?,
            "--metrics-out" => out.metrics_out = Some(value(&mut i)?),
            "--sample" => {
                let v = value(&mut i)?;
                out.sample = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --sample value {v:?}")))?;
            }
            "--events" => {
                let v = value(&mut i)?;
                out.events = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --events value {v:?}")))?;
            }
            "--check" => out.check = true,
            other => shared.push(other.to_string()),
        }
        i += 1;
    }
    out.run = parse_run_args(&shared)?;
    Ok(out)
}

fn parse_analyze_args(rest: &[String]) -> Result<AnalyzeArgs, CliError> {
    let mut out = AnalyzeArgs::default();
    // Analyze-specific flags are consumed here; everything else
    // (source, geometry, budget) goes to the shared `run` parser.
    let mut shared: Vec<String> = Vec::new();
    let mut i = 0;
    // A leading bare word is the benchmark name: `ctcp analyze gzip`.
    if rest.first().is_some_and(|a| !a.starts_with("--")) {
        shared.push("--bench".into());
        shared.push(rest[0].clone());
        i = 1;
    }
    let value = |i: &mut usize| -> Result<String, CliError> {
        *i += 1;
        rest.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("{} needs a value", rest[*i - 1])))
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--strategy" | "--strategies" => {
                let v = value(&mut i)?;
                out.strategies = comma_list("--strategies", &v)?
                    .iter()
                    .map(|s| parse_strategy(s))
                    .collect::<Result<_, _>>()?;
            }
            "--json" => out.json = true,
            "--top" => {
                let v = value(&mut i)?;
                out.top = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --top value {v:?}")))?;
            }
            other => shared.push(other.to_string()),
        }
        i += 1;
    }
    out.run = parse_run_args(&shared)?;
    Ok(out)
}

fn parse_store_args(rest: &[String]) -> Result<StoreArgs, CliError> {
    let Some(action) = rest.first() else {
        return Err(CliError(
            "store needs an action (verify|compact|gc)".to_string(),
        ));
    };
    let action = match action.as_str() {
        "verify" => StoreAction::Verify,
        "compact" => StoreAction::Compact,
        "gc" => StoreAction::Gc,
        other => {
            return Err(CliError(format!(
                "unknown store action {other:?} (verify|compact|gc)"
            )))
        }
    };
    let mut dir = None;
    let mut i = 1;
    while i < rest.len() {
        match rest[i].as_str() {
            "--dir" => {
                i += 1;
                dir = Some(
                    rest.get(i)
                        .cloned()
                        .ok_or_else(|| CliError("--dir needs a value".to_string()))?,
                );
            }
            other => return Err(CliError(format!("unknown flag {other:?}"))),
        }
        i += 1;
    }
    Ok(StoreArgs { action, dir })
}

fn parse_serve_args(rest: &[String]) -> Result<ServeArgs, CliError> {
    let mut out = ServeArgs::default();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, CliError> {
        *i += 1;
        rest.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("{} needs a value", rest[*i - 1])))
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--addr" => out.addr = value(&mut i)?,
            "--jobs" => {
                let v = value(&mut i)?;
                out.jobs = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --jobs value {v:?}")))?;
            }
            "--max-queue" => {
                let v = value(&mut i)?;
                out.max_queue = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --max-queue value {v:?}")))?;
            }
            "--dir" => out.dir = Some(value(&mut i)?),
            "--log-level" => {
                let v = value(&mut i)?;
                if !matches!(v.as_str(), "off" | "error" | "warn" | "info" | "debug") {
                    return Err(CliError(format!(
                        "bad --log-level value {v:?} (off|error|warn|info|debug)"
                    )));
                }
                out.log_level = Some(v);
            }
            "--log-file" => out.log_file = Some(value(&mut i)?),
            other => return Err(CliError(format!("unknown flag {other:?}"))),
        }
        i += 1;
    }
    Ok(out)
}

fn parse_top_args(rest: &[String]) -> Result<TopArgs, CliError> {
    let mut out = TopArgs::default();
    let mut addr: Option<String> = None;
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, CliError> {
        *i += 1;
        rest.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("{} needs a value", rest[*i - 1])))
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--addr" => addr = Some(value(&mut i)?),
            "--interval-ms" => {
                let v = value(&mut i)?;
                out.interval_ms = v
                    .parse()
                    .ok()
                    .filter(|&ms: &u64| ms > 0)
                    .ok_or_else(|| CliError(format!("bad --interval-ms value {v:?}")))?;
            }
            "--once" => out.once = true,
            other => return Err(CliError(format!("unknown flag {other:?}"))),
        }
        i += 1;
    }
    let Some(addr) = addr else {
        return Err(CliError(
            "top needs --addr HOST:PORT (as printed by `ctcp serve`)".to_string(),
        ));
    };
    out.addr = addr;
    Ok(out)
}

fn parse_client_args(rest: &[String]) -> Result<ClientArgs, CliError> {
    let Some(action) = rest.first() else {
        return Err(CliError(
            "client needs an action (sweep|analyze|resume|status|shutdown)".to_string(),
        ));
    };
    // `--addr`, `--retries` and `--backoff-ms` belong to the client
    // itself; everything else is the remote command line, handed to the
    // matching one-shot parser so the local and remote flag spellings
    // never diverge.
    let mut addr: Option<String> = None;
    let mut retries: u32 = 0;
    let mut backoff_ms: u64 = 200;
    let mut remote: Vec<String> = Vec::new();
    let mut i = 1;
    let value = |i: &mut usize| -> Result<String, CliError> {
        *i += 1;
        rest.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("{} needs a value", rest[*i - 1])))
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--addr" => addr = Some(value(&mut i)?),
            "--retries" => {
                let v = value(&mut i)?;
                retries = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --retries value {v:?}")))?;
            }
            "--backoff-ms" => {
                let v = value(&mut i)?;
                backoff_ms = v
                    .parse()
                    .ok()
                    .filter(|&ms: &u64| ms > 0)
                    .ok_or_else(|| CliError(format!("bad --backoff-ms value {v:?}")))?;
            }
            other => remote.push(other.to_string()),
        }
        i += 1;
    }
    let Some(addr) = addr else {
        return Err(CliError(
            "client needs --addr HOST:PORT (as printed by `ctcp serve`)".to_string(),
        ));
    };
    let action = match action.as_str() {
        "sweep" => ClientAction::Sweep(parse_sweep_args(&remote)?),
        "analyze" => ClientAction::Analyze(parse_analyze_args(&remote)?),
        "resume" => match remote.as_slice() {
            [token] if !token.starts_with("--") => ClientAction::Resume(token.clone()),
            _ => {
                return Err(CliError(
                    "resume needs exactly one TOKEN (from the batch's accepted event)".to_string(),
                ))
            }
        },
        "status" | "shutdown" => {
            if let Some(extra) = remote.first() {
                return Err(CliError(format!("unexpected argument {extra:?}")));
            }
            if action == "status" {
                ClientAction::Status
            } else {
                ClientAction::Shutdown
            }
        }
        other => {
            return Err(CliError(format!(
                "unknown client action {other:?} (sweep|analyze|resume|status|shutdown)"
            )))
        }
    };
    Ok(ClientArgs {
        addr,
        retries,
        backoff_ms,
        action,
    })
}

/// Parses a topology name as accepted by `--topology`.
pub(crate) fn parse_topology(s: &str) -> Result<Topology, CliError> {
    match s {
        "linear" => Ok(Topology::Linear),
        "ring" | "mesh" => Ok(Topology::Ring),
        "full" | "p2p" => Ok(Topology::FullyConnected),
        other => Err(CliError(format!(
            "bad --topology {other:?} (linear|ring|full)"
        ))),
    }
}

/// Splits a comma-separated list, rejecting empty elements.
fn comma_list(flag: &str, v: &str) -> Result<Vec<String>, CliError> {
    let parts: Vec<String> = v.split(',').map(str::to_string).collect();
    if parts.iter().any(String::is_empty) {
        return Err(CliError(format!("{flag} has an empty element in {v:?}")));
    }
    Ok(parts)
}

fn parse_sweep_args(rest: &[String]) -> Result<SweepArgs, CliError> {
    let mut out = SweepArgs::default();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, CliError> {
        *i += 1;
        rest.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("{} needs a value", rest[*i - 1])))
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--benches" => {
                let v = value(&mut i)?;
                out.spec.benches = match v.as_str() {
                    "focus" => SweepSpec::default().benches,
                    // Suite keywords are resolved against the preset
                    // lists at execution time (names only here).
                    "spec" | "media" | "all" => vec![v.clone()],
                    _ => comma_list("--benches", &v)?,
                };
            }
            "--strategies" => {
                let v = value(&mut i)?;
                out.spec.strategies = comma_list("--strategies", &v)?
                    .iter()
                    .map(|s| parse_strategy(s))
                    .collect::<Result<_, _>>()?;
            }
            "--clusters" => {
                let v = value(&mut i)?;
                out.spec.clusters = comma_list("--clusters", &v)?
                    .iter()
                    .map(|c| {
                        c.parse()
                            .ok()
                            .filter(|&c: &u8| (1..=8).contains(&c))
                            .ok_or_else(|| CliError(format!("bad --clusters value {c:?} (1..=8)")))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--topology" => {
                let v = value(&mut i)?;
                out.spec.topologies = comma_list("--topology", &v)?
                    .iter()
                    .map(|t| parse_topology(t))
                    .collect::<Result<_, _>>()?;
            }
            "--insts" => {
                let v = value(&mut i)?;
                out.spec.insts = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --insts value {v:?}")))?;
            }
            "--warmup" => {
                let v = value(&mut i)?;
                out.spec.warmup = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --warmup value {v:?}")))?;
            }
            "--jobs" => {
                let v = value(&mut i)?;
                out.jobs = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --jobs value {v:?}")))?;
            }
            "--cache" => out.cache = true,
            "--csv" => out.csv = true,
            "--metrics-out" => out.metrics_out = Some(value(&mut i)?),
            "--attrib" => out.attrib = true,
            other => return Err(CliError(format!("unknown flag {other:?}"))),
        }
        i += 1;
    }
    Ok(out)
}

/// The usage text printed by `ctcp help`.
pub const USAGE: &str = "\
ctcp — clustered trace cache processor simulator

USAGE:
  ctcp list                               list benchmark presets
  ctcp run     [SOURCE] [OPTIONS]         simulate one strategy
  ctcp compare [SOURCE] [OPTIONS]         compare all strategies
  ctcp sweep   [SWEEP OPTIONS]            run a strategy/benchmark/geometry grid
  ctcp trace   [BENCH] [TRACE OPTIONS]    simulate with telemetry, export a trace
  ctcp analyze [BENCH] [ANALYZE OPTIONS]  attribute cycles: CPI stack, utilization,
                                          critical-path edges, per strategy
  ctcp disasm  [SOURCE]                   print program disassembly
  ctcp store   ACTION [--dir D]           inspect or maintain the result store
  ctcp serve   [SERVE OPTIONS]            run the resident sweep service
  ctcp client  ACTION --addr A [...]      talk to a running sweep service
  ctcp top     --addr A [TOP OPTIONS]     live dashboard over a running service
  ctcp help                               this text

SOURCE:
  --bench NAME        synthetic benchmark preset (default: gzip)
  --asm FILE          TRISC assembly file

OPTIONS:
  --strategy S        base | issue0 | issue4 | friendly | friendly-mid |
                      fdrt | fdrt-nopin | fdrt-intra   (default: base)
  --insts N           timed instruction budget (default: 100000)
  --warmup N          fast-forward N instructions (functional warmup, no
                      timing) before the timed phase (default: 0)
  --clusters N        cluster count, 1..=8 (default: 4)
  --topology T        linear | ring | full (default: linear)
  --hop N             forwarding latency per hop (default: 2)
  --csv               machine-readable output

SWEEP OPTIONS:
  --benches B         focus | spec | media | all | name,name,...
                      (default: the six focus benchmarks)
  --strategies S,S    strategy list as above (default: issue0,issue4,friendly,fdrt;
                      a baseline cell is always run per benchmark × geometry)
  --clusters N,N      cluster counts to sweep (default: 4)
  --topology T,T      topologies to sweep (default: linear)
  --insts N           timed instruction budget per cell (default: 100000)
  --warmup N          fast-forward N instructions per cell before timing
                      (default: 0)
  --jobs N            worker threads, 0 = all cores (default: 0)
  --cache             memoize cells in target/ctcp-results/
  --csv               machine-readable output
  --metrics-out FILE  stream one JSONL metrics record per simulated cell
  --attrib            collect per-cell CPI stacks and append a strategy ×
                      benchmark attribution table

STORE ACTIONS (sweep exits non-zero when any cell fails; so does
`store verify` on corruption):
  verify              read-only integrity scan of the result store
  compact             rewrite to one line per key (newest wins),
                      quarantining corrupt lines
  gc                  compact, then delete the quarantine file
  --dir D             store directory (default: target/ctcp-results)

SERVE OPTIONS:
  --addr A            listen address (default 127.0.0.1:0 — an ephemeral
                      port; the bound address is printed either way)
  --jobs N            resident worker threads shared by all clients,
                      0 = all cores (default: 0)
  --max-queue N       refuse batches that would leave more than N cells
                      queued (503; 0 = unbounded, the default)
  --dir D             result-store directory (default: target/ctcp-results)
  --log-level L       structured-log threshold: off|error|warn|info|debug
                      (default: the CTCP_LOG env var, else warn); one JSON
                      object per line on stderr
  --log-file FILE     append structured log lines to FILE instead of stderr

TOP OPTIONS (needs --addr HOST:PORT, as printed by `ctcp serve`):
  --interval-ms M     refresh period between redraws (default: 1000)
  --once              render a single frame and exit (no screen clearing)

The daemon also exposes GET /metrics (Prometheus text exposition),
GET /trace/TOKEN (one request's spans as Chrome trace JSON) and a
richer GET /status (rolling rates, live request table, recent logs).

CLIENT ACTIONS (all need --addr HOST:PORT, as printed by `ctcp serve`):
  sweep [SWEEP OPTIONS]      run a sweep remotely; progress streams to
                             stderr, the rendered table to stdout
                             (--jobs/--cache/--metrics-out are daemon-side
                             and ignored here)
  analyze [ANALYZE OPTIONS]  run a cycle attribution remotely (--bench only)
  resume TOKEN               re-attach to an admitted batch by its resume
                             token and stream it from the beginning
  status                     print the daemon's status JSON
  shutdown                   drain in-flight batches and exit
  --retries N                reconnect attempts for batch actions: broken
                             streams re-attach via the resume token, 503s
                             honor the daemon's Retry-After (default: 0)
  --backoff-ms M             base reconnect delay, doubled per attempt
                             with jitter (default: 200)

TRACE OPTIONS (plus SOURCE and OPTIONS above):
  --out FILE          Chrome trace-event JSON path (default: ctcp-trace.json;
                      load via about://tracing or https://ui.perfetto.dev)
  --metrics-out FILE  also dump counters and histograms as JSONL
  --sample N          record every Nth instruction timeline, 0 = none (default: 1)
  --events N          event ring capacity; oldest spans drop beyond this
                      (default: 65536)
  --check             validate the trace file and reconcile its counters
                      against the simulation report (includes flow-event
                      pairing for inter-cluster forwards)

ANALYZE OPTIONS (plus SOURCE and OPTIONS above):
  --strategies S,S    strategies to attribute
                      (default: base,issue4,friendly,fdrt)
  --top N             critical-path edges to report per strategy (default: 8)
  --json              emit the full attribution as one JSON document
  --csv               CPI-stack rows as CSV
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_argv_is_help() {
        let cli = Cli::parse(Vec::<String>::new()).unwrap();
        assert_eq!(cli.command, Command::Help);
    }

    #[test]
    fn list_takes_no_args() {
        assert!(Cli::parse(["list"]).is_ok());
        assert!(Cli::parse(["list", "x"]).is_err());
    }

    #[test]
    fn run_defaults() {
        let cli = Cli::parse(["run"]).unwrap();
        let Command::Run(a) = cli.command else {
            panic!("expected run")
        };
        assert_eq!(a.source, ProgramSource::Bench("gzip".into()));
        assert_eq!(a.strategy, Strategy::Baseline);
        assert_eq!(a.insts, 100_000);
        assert!(!a.csv);
    }

    #[test]
    fn run_with_everything() {
        let cli = Cli::parse([
            "run",
            "--bench",
            "twolf",
            "--strategy",
            "fdrt",
            "--insts",
            "5000",
            "--warmup",
            "2000",
            "--clusters",
            "2",
            "--topology",
            "ring",
            "--hop",
            "1",
            "--csv",
        ])
        .unwrap();
        let Command::Run(a) = cli.command else {
            panic!("expected run")
        };
        assert_eq!(a.source, ProgramSource::Bench("twolf".into()));
        assert_eq!(a.strategy, Strategy::Fdrt { pinning: true });
        assert_eq!(a.insts, 5_000);
        assert_eq!(a.warmup, 2_000);
        assert_eq!(a.clusters, 2);
        assert_eq!(a.topology, Topology::Ring);
        assert_eq!(a.hop_latency, 1);
        assert!(a.csv);
    }

    #[test]
    fn all_strategy_names_parse() {
        for (name, expect) in [
            ("base", Strategy::Baseline),
            ("issue0", Strategy::IssueTime { latency: 0 }),
            ("issue4", Strategy::IssueTime { latency: 4 }),
            ("friendly", Strategy::Friendly { middle_bias: false }),
            ("friendly-mid", Strategy::Friendly { middle_bias: true }),
            ("fdrt", Strategy::Fdrt { pinning: true }),
            ("fdrt-nopin", Strategy::Fdrt { pinning: false }),
            ("fdrt-intra", Strategy::FdrtIntraOnly),
        ] {
            assert_eq!(parse_strategy(name).unwrap(), expect, "{name}");
        }
        assert!(parse_strategy("bogus").is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Cli::parse(["run", "--insts"]).is_err());
        assert!(Cli::parse(["run", "--strategy"]).is_err());
    }

    #[test]
    fn bad_values_are_errors() {
        assert!(Cli::parse(["run", "--insts", "many"]).is_err());
        assert!(Cli::parse(["run", "--clusters", "0"]).is_err());
        assert!(Cli::parse(["run", "--clusters", "9"]).is_err());
        assert!(Cli::parse(["run", "--topology", "torus"]).is_err());
    }

    #[test]
    fn unknown_flags_and_commands_are_errors() {
        assert!(Cli::parse(["run", "--frobnicate"]).is_err());
        assert!(Cli::parse(["launch"]).is_err());
    }

    #[test]
    fn asm_source() {
        let cli = Cli::parse(["disasm", "--asm", "k.s"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Disasm(ProgramSource::AsmFile("k.s".into()))
        );
    }

    #[test]
    fn sweep_defaults() {
        let cli = Cli::parse(["sweep"]).unwrap();
        let Command::Sweep(a) = cli.command else {
            panic!("expected sweep")
        };
        assert_eq!(a.spec, SweepSpec::default());
        assert_eq!(a.spec.benches.len(), 6);
        assert_eq!(a.spec.strategies.len(), 4);
        assert_eq!(a.spec.clusters, vec![4]);
        assert_eq!(a.spec.topologies, vec![Topology::Linear]);
        assert_eq!(a.spec.warmup, 0);
        assert_eq!(a.jobs, 0);
        assert!(!a.cache);
        assert!(!a.csv);
    }

    #[test]
    fn sweep_with_everything() {
        let cli = Cli::parse([
            "sweep",
            "--benches",
            "gzip,twolf",
            "--strategies",
            "fdrt,friendly",
            "--clusters",
            "2,4",
            "--topology",
            "linear,ring",
            "--insts",
            "9000",
            "--warmup",
            "2500",
            "--jobs",
            "3",
            "--cache",
            "--csv",
        ])
        .unwrap();
        let Command::Sweep(a) = cli.command else {
            panic!("expected sweep")
        };
        assert_eq!(
            a.spec.benches,
            vec!["gzip".to_string(), "twolf".to_string()]
        );
        assert_eq!(
            a.spec.strategies,
            vec![
                Strategy::Fdrt { pinning: true },
                Strategy::Friendly { middle_bias: false }
            ]
        );
        assert_eq!(a.spec.clusters, vec![2, 4]);
        assert_eq!(a.spec.topologies, vec![Topology::Linear, Topology::Ring]);
        assert_eq!(a.spec.insts, 9_000);
        assert_eq!(a.spec.warmup, 2_500);
        assert_eq!(a.jobs, 3);
        assert!(a.cache);
        assert!(a.csv);
    }

    #[test]
    fn sweep_rejects_bad_lists() {
        assert!(Cli::parse(["sweep", "--strategies", "fdrt,,base"]).is_err());
        assert!(Cli::parse(["sweep", "--strategies", "warp"]).is_err());
        assert!(Cli::parse(["sweep", "--clusters", "2,9"]).is_err());
        assert!(Cli::parse(["sweep", "--topology", "torus"]).is_err());
        assert!(Cli::parse(["sweep", "--frobnicate"]).is_err());
        assert!(Cli::parse(["sweep", "--jobs"]).is_err());
        assert!(Cli::parse(["sweep", "--warmup", "soon"]).is_err());
        assert!(Cli::parse(["run", "--warmup", "soon"]).is_err());
    }

    #[test]
    fn analyze_defaults() {
        let cli = Cli::parse(["analyze"]).unwrap();
        let Command::Analyze(a) = cli.command else {
            panic!("expected analyze")
        };
        assert_eq!(a.run.source, ProgramSource::Bench("gzip".into()));
        assert_eq!(a.strategies.len(), 4);
        assert_eq!(a.strategies[0], Strategy::Baseline);
        assert_eq!(a.top, 8);
        assert!(!a.json);
        assert!(!a.run.csv);
    }

    #[test]
    fn analyze_with_everything() {
        let cli = Cli::parse([
            "analyze",
            "twolf",
            "--strategies",
            "base,fdrt",
            "--top",
            "3",
            "--insts",
            "5000",
            "--clusters",
            "2",
            "--json",
        ])
        .unwrap();
        let Command::Analyze(a) = cli.command else {
            panic!("expected analyze")
        };
        assert_eq!(a.run.source, ProgramSource::Bench("twolf".into()));
        assert_eq!(
            a.strategies,
            vec![Strategy::Baseline, Strategy::Fdrt { pinning: true }]
        );
        assert_eq!(a.top, 3);
        assert_eq!(a.run.insts, 5_000);
        assert_eq!(a.run.clusters, 2);
        assert!(a.json);
    }

    #[test]
    fn analyze_rejects_bad_forms() {
        assert!(Cli::parse(["analyze", "--strategies", "warp"]).is_err());
        assert!(Cli::parse(["analyze", "--top", "many"]).is_err());
        assert!(Cli::parse(["analyze", "--frobnicate"]).is_err());
    }

    #[test]
    fn sweep_attrib_flag() {
        let cli = Cli::parse(["sweep", "--attrib"]).unwrap();
        let Command::Sweep(a) = cli.command else {
            panic!("expected sweep")
        };
        assert!(a.attrib);
        let Command::Sweep(a) = Cli::parse(["sweep"]).unwrap().command else {
            panic!("expected sweep")
        };
        assert!(!a.attrib);
    }

    #[test]
    fn store_actions_parse() {
        for (word, action) in [
            ("verify", StoreAction::Verify),
            ("compact", StoreAction::Compact),
            ("gc", StoreAction::Gc),
        ] {
            let cli = Cli::parse(["store", word]).unwrap();
            assert_eq!(
                cli.command,
                Command::Store(StoreArgs { action, dir: None }),
                "{word}"
            );
        }
        let cli = Cli::parse(["store", "verify", "--dir", "/tmp/s"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Store(StoreArgs {
                action: StoreAction::Verify,
                dir: Some("/tmp/s".into()),
            })
        );
    }

    #[test]
    fn store_rejects_bad_forms() {
        assert!(Cli::parse(["store"]).is_err());
        assert!(Cli::parse(["store", "polish"]).is_err());
        assert!(Cli::parse(["store", "verify", "--dir"]).is_err());
        assert!(Cli::parse(["store", "verify", "--frobnicate"]).is_err());
    }

    #[test]
    fn serve_defaults_and_flags() {
        let cli = Cli::parse(["serve"]).unwrap();
        assert_eq!(cli.command, Command::Serve(ServeArgs::default()));
        let cli = Cli::parse([
            "serve",
            "--addr",
            "127.0.0.1:7199",
            "--jobs",
            "3",
            "--max-queue",
            "64",
            "--dir",
            "/tmp/s",
            "--log-level",
            "debug",
            "--log-file",
            "/tmp/serve.log",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Serve(ServeArgs {
                addr: "127.0.0.1:7199".into(),
                jobs: 3,
                max_queue: 64,
                dir: Some("/tmp/s".into()),
                log_level: Some("debug".into()),
                log_file: Some("/tmp/serve.log".into()),
            })
        );
        assert!(Cli::parse(["serve", "--jobs", "many"]).is_err());
        assert!(Cli::parse(["serve", "--max-queue", "lots"]).is_err());
        assert!(Cli::parse(["serve", "--log-level", "loud"]).is_err());
        assert!(Cli::parse(["serve", "--frobnicate"]).is_err());
    }

    #[test]
    fn top_needs_addr_and_parses_flags() {
        assert!(Cli::parse(["top"]).is_err(), "--addr is required");
        let cli = Cli::parse(["top", "--addr", "127.0.0.1:9"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Top(TopArgs {
                addr: "127.0.0.1:9".into(),
                interval_ms: 1000,
                once: false,
            })
        );
        let cli = Cli::parse(["top", "--addr", "h:1", "--interval-ms", "250", "--once"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Top(TopArgs {
                addr: "h:1".into(),
                interval_ms: 250,
                once: true,
            })
        );
        assert!(Cli::parse(["top", "--addr", "h:1", "--interval-ms", "0"]).is_err());
        assert!(Cli::parse(["top", "--addr", "h:1", "--wat"]).is_err());
    }

    #[test]
    fn client_actions_parse() {
        let cli = Cli::parse(["client", "status", "--addr", "127.0.0.1:1"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Client(ClientArgs {
                addr: "127.0.0.1:1".into(),
                retries: 0,
                backoff_ms: 200,
                action: ClientAction::Status,
            })
        );
        let cli = Cli::parse(["client", "shutdown", "--addr", "h:2"]).unwrap();
        let Command::Client(a) = cli.command else {
            panic!("expected client")
        };
        assert_eq!(a.action, ClientAction::Shutdown);
        // The remote command line reuses the one-shot sweep parser,
        // with --addr extracted wherever it appears.
        let cli = Cli::parse([
            "client",
            "sweep",
            "--benches",
            "gzip",
            "--addr",
            "h:3",
            "--csv",
        ])
        .unwrap();
        let Command::Client(a) = cli.command else {
            panic!("expected client")
        };
        assert_eq!(a.addr, "h:3");
        let ClientAction::Sweep(sw) = a.action else {
            panic!("expected sweep action")
        };
        assert_eq!(sw.spec.benches, vec!["gzip".to_string()]);
        assert!(sw.csv);
        let cli = Cli::parse(["client", "analyze", "gzip", "--addr", "h:4"]).unwrap();
        let Command::Client(a) = cli.command else {
            panic!("expected client")
        };
        assert!(matches!(a.action, ClientAction::Analyze(_)));
    }

    #[test]
    fn client_rejects_bad_forms() {
        assert!(Cli::parse(["client"]).is_err());
        assert!(Cli::parse(["client", "ping", "--addr", "h:1"]).is_err());
        assert!(Cli::parse(["client", "sweep"]).is_err(), "--addr required");
        assert!(Cli::parse(["client", "status", "--addr"]).is_err());
        assert!(Cli::parse(["client", "status", "--addr", "h:1", "extra"]).is_err());
        assert!(Cli::parse(["client", "sweep", "--addr", "h:1", "--clusters", "9"]).is_err());
        assert!(Cli::parse(["client", "sweep", "--addr", "h:1", "--retries", "many"]).is_err());
        assert!(Cli::parse(["client", "sweep", "--addr", "h:1", "--backoff-ms", "0"]).is_err());
        assert!(Cli::parse(["client", "resume", "--addr", "h:1"]).is_err());
        assert!(Cli::parse(["client", "resume", "a", "b", "--addr", "h:1"]).is_err());
    }

    #[test]
    fn client_resume_and_retry_flags_parse() {
        let cli = Cli::parse([
            "client",
            "resume",
            "00ff00ff00ff00ff",
            "--addr",
            "h:1",
            "--retries",
            "3",
            "--backoff-ms",
            "50",
        ])
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Client(ClientArgs {
                addr: "h:1".into(),
                retries: 3,
                backoff_ms: 50,
                action: ClientAction::Resume("00ff00ff00ff00ff".into()),
            })
        );
        // The retry knobs ride along with any action, anywhere in argv.
        let cli = Cli::parse([
            "client",
            "sweep",
            "--retries",
            "2",
            "--benches",
            "gzip",
            "--addr",
            "h:2",
        ])
        .unwrap();
        let Command::Client(a) = cli.command else {
            panic!("expected client")
        };
        assert_eq!(a.retries, 2);
        assert!(matches!(a.action, ClientAction::Sweep(_)));
    }

    #[test]
    fn sweep_suite_keywords() {
        for kw in ["spec", "media", "all"] {
            let cli = Cli::parse(["sweep", "--benches", kw]).unwrap();
            let Command::Sweep(a) = cli.command else {
                panic!("expected sweep")
            };
            assert_eq!(a.spec.benches, vec![kw.to_string()]);
        }
        let cli = Cli::parse(["sweep", "--benches", "focus"]).unwrap();
        let Command::Sweep(a) = cli.command else {
            panic!("expected sweep")
        };
        assert_eq!(a.spec.benches.len(), 6);
    }
}
