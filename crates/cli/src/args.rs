//! Argument parsing (hand-rolled: the workspace avoids non-approved
//! dependencies).

use ctcp_core::Topology;
use ctcp_sim::Strategy;
use std::fmt;

/// Source of the program to simulate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramSource {
    /// A named synthetic benchmark preset.
    Bench(String),
    /// A TRISC assembly file.
    AsmFile(String),
}

/// Options shared by `run` and `compare`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// What to simulate.
    pub source: ProgramSource,
    /// Strategy (only used by `run`).
    pub strategy: Strategy,
    /// Instruction budget.
    pub insts: u64,
    /// Number of clusters.
    pub clusters: u8,
    /// Interconnect topology.
    pub topology: Topology,
    /// Forwarding latency per hop.
    pub hop_latency: u64,
    /// Emit machine-readable CSV instead of prose.
    pub csv: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            source: ProgramSource::Bench("gzip".into()),
            strategy: Strategy::Baseline,
            insts: 100_000,
            clusters: 4,
            topology: Topology::Linear,
            hop_latency: 2,
            csv: false,
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// List available benchmark presets.
    List,
    /// Run one strategy and print its report.
    Run(RunArgs),
    /// Run every strategy and print a comparison table.
    Compare(RunArgs),
    /// Print the disassembly of the selected program.
    Disasm(ProgramSource),
    /// Print usage.
    Help,
}

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// The parsed CLI entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The command to execute.
    pub command: Command,
}

/// Parses a strategy name as accepted by `--strategy`.
pub fn parse_strategy(s: &str) -> Result<Strategy, CliError> {
    match s {
        "base" | "baseline" => Ok(Strategy::Baseline),
        "issue0" | "issue-time-0" => Ok(Strategy::IssueTime { latency: 0 }),
        "issue4" | "issue-time" | "issue-time-4" => Ok(Strategy::IssueTime { latency: 4 }),
        "friendly" => Ok(Strategy::Friendly { middle_bias: false }),
        "friendly-mid" => Ok(Strategy::Friendly { middle_bias: true }),
        "fdrt" => Ok(Strategy::Fdrt { pinning: true }),
        "fdrt-nopin" => Ok(Strategy::Fdrt { pinning: false }),
        "fdrt-intra" => Ok(Strategy::FdrtIntraOnly),
        other => Err(CliError(format!(
            "unknown strategy {other:?} (try: base issue0 issue4 friendly friendly-mid \
             fdrt fdrt-nopin fdrt-intra)"
        ))),
    }
}

impl Cli {
    /// Parses argv (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] describing the first problem encountered.
    pub fn parse<I, S>(argv: I) -> Result<Cli, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let args: Vec<String> = argv.into_iter().map(Into::into).collect();
        let Some(cmd) = args.first() else {
            return Ok(Cli {
                command: Command::Help,
            });
        };
        let rest = &args[1..];
        let command = match cmd.as_str() {
            "list" => {
                expect_no_args(rest)?;
                Command::List
            }
            "help" | "--help" | "-h" => Command::Help,
            "run" => Command::Run(parse_run_args(rest)?),
            "compare" => Command::Compare(parse_run_args(rest)?),
            "disasm" => {
                let ra = parse_run_args(rest)?;
                Command::Disasm(ra.source)
            }
            other => return Err(CliError(format!("unknown command {other:?}"))),
        };
        Ok(Cli { command })
    }
}

fn expect_no_args(rest: &[String]) -> Result<(), CliError> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(CliError(format!("unexpected argument {:?}", rest[0])))
    }
}

fn parse_run_args(rest: &[String]) -> Result<RunArgs, CliError> {
    let mut out = RunArgs::default();
    let mut source: Option<ProgramSource> = None;
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, CliError> {
        *i += 1;
        rest.get(*i)
            .cloned()
            .ok_or_else(|| CliError(format!("{} needs a value", rest[*i - 1])))
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--bench" => source = Some(ProgramSource::Bench(value(&mut i)?)),
            "--asm" => source = Some(ProgramSource::AsmFile(value(&mut i)?)),
            "--strategy" => out.strategy = parse_strategy(&value(&mut i)?)?,
            "--insts" => {
                let v = value(&mut i)?;
                out.insts = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --insts value {v:?}")))?;
            }
            "--clusters" => {
                let v = value(&mut i)?;
                out.clusters = v
                    .parse()
                    .ok()
                    .filter(|&c: &u8| (1..=8).contains(&c))
                    .ok_or_else(|| CliError(format!("bad --clusters value {v:?} (1..=8)")))?;
            }
            "--topology" => {
                out.topology = match value(&mut i)?.as_str() {
                    "linear" => Topology::Linear,
                    "ring" | "mesh" => Topology::Ring,
                    "full" | "p2p" => Topology::FullyConnected,
                    other => {
                        return Err(CliError(format!(
                            "bad --topology {other:?} (linear|ring|full)"
                        )))
                    }
                };
            }
            "--hop" => {
                let v = value(&mut i)?;
                out.hop_latency = v
                    .parse()
                    .map_err(|_| CliError(format!("bad --hop value {v:?}")))?;
            }
            "--csv" => out.csv = true,
            other => return Err(CliError(format!("unknown flag {other:?}"))),
        }
        i += 1;
    }
    if let Some(s) = source {
        out.source = s;
    }
    Ok(out)
}

/// The usage text printed by `ctcp help`.
pub const USAGE: &str = "\
ctcp — clustered trace cache processor simulator

USAGE:
  ctcp list                               list benchmark presets
  ctcp run     [SOURCE] [OPTIONS]         simulate one strategy
  ctcp compare [SOURCE] [OPTIONS]         compare all strategies
  ctcp disasm  [SOURCE]                   print program disassembly
  ctcp help                               this text

SOURCE:
  --bench NAME        synthetic benchmark preset (default: gzip)
  --asm FILE          TRISC assembly file

OPTIONS:
  --strategy S        base | issue0 | issue4 | friendly | friendly-mid |
                      fdrt | fdrt-nopin | fdrt-intra   (default: base)
  --insts N           instruction budget (default: 100000)
  --clusters N        cluster count, 1..=8 (default: 4)
  --topology T        linear | ring | full (default: linear)
  --hop N             forwarding latency per hop (default: 2)
  --csv               machine-readable output
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_argv_is_help() {
        let cli = Cli::parse(Vec::<String>::new()).unwrap();
        assert_eq!(cli.command, Command::Help);
    }

    #[test]
    fn list_takes_no_args() {
        assert!(Cli::parse(["list"]).is_ok());
        assert!(Cli::parse(["list", "x"]).is_err());
    }

    #[test]
    fn run_defaults() {
        let cli = Cli::parse(["run"]).unwrap();
        let Command::Run(a) = cli.command else {
            panic!("expected run")
        };
        assert_eq!(a.source, ProgramSource::Bench("gzip".into()));
        assert_eq!(a.strategy, Strategy::Baseline);
        assert_eq!(a.insts, 100_000);
        assert!(!a.csv);
    }

    #[test]
    fn run_with_everything() {
        let cli = Cli::parse([
            "run",
            "--bench",
            "twolf",
            "--strategy",
            "fdrt",
            "--insts",
            "5000",
            "--clusters",
            "2",
            "--topology",
            "ring",
            "--hop",
            "1",
            "--csv",
        ])
        .unwrap();
        let Command::Run(a) = cli.command else {
            panic!("expected run")
        };
        assert_eq!(a.source, ProgramSource::Bench("twolf".into()));
        assert_eq!(a.strategy, Strategy::Fdrt { pinning: true });
        assert_eq!(a.insts, 5_000);
        assert_eq!(a.clusters, 2);
        assert_eq!(a.topology, Topology::Ring);
        assert_eq!(a.hop_latency, 1);
        assert!(a.csv);
    }

    #[test]
    fn all_strategy_names_parse() {
        for (name, expect) in [
            ("base", Strategy::Baseline),
            ("issue0", Strategy::IssueTime { latency: 0 }),
            ("issue4", Strategy::IssueTime { latency: 4 }),
            ("friendly", Strategy::Friendly { middle_bias: false }),
            ("friendly-mid", Strategy::Friendly { middle_bias: true }),
            ("fdrt", Strategy::Fdrt { pinning: true }),
            ("fdrt-nopin", Strategy::Fdrt { pinning: false }),
            ("fdrt-intra", Strategy::FdrtIntraOnly),
        ] {
            assert_eq!(parse_strategy(name).unwrap(), expect, "{name}");
        }
        assert!(parse_strategy("bogus").is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Cli::parse(["run", "--insts"]).is_err());
        assert!(Cli::parse(["run", "--strategy"]).is_err());
    }

    #[test]
    fn bad_values_are_errors() {
        assert!(Cli::parse(["run", "--insts", "many"]).is_err());
        assert!(Cli::parse(["run", "--clusters", "0"]).is_err());
        assert!(Cli::parse(["run", "--clusters", "9"]).is_err());
        assert!(Cli::parse(["run", "--topology", "torus"]).is_err());
    }

    #[test]
    fn unknown_flags_and_commands_are_errors() {
        assert!(Cli::parse(["run", "--frobnicate"]).is_err());
        assert!(Cli::parse(["launch"]).is_err());
    }

    #[test]
    fn asm_source() {
        let cli = Cli::parse(["disasm", "--asm", "k.s"]).unwrap();
        assert_eq!(
            cli.command,
            Command::Disasm(ProgramSource::AsmFile("k.s".into()))
        );
    }
}
