//! The `ctcp` binary.

use ctcp_cli::{execute, Cli};

fn main() {
    let cli = match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `ctcp help` for usage");
            std::process::exit(2);
        }
    };
    match execute(&cli) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
