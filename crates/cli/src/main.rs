//! The `ctcp` binary.

use ctcp_cli::{execute_outcome, Cli};

fn main() {
    let cli = match Cli::parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `ctcp help` for usage");
            std::process::exit(2);
        }
    };
    match execute_outcome(&cli) {
        Ok(outcome) => {
            // Partial failures (crashed sweep cells, store corruption)
            // still print their output before the non-zero exit.
            print!("{}", outcome.output);
            if outcome.exit_code != 0 {
                std::process::exit(outcome.exit_code);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
