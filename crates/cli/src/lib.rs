//! # Command-line driver for the CTCP simulator
//!
//! Provides the `ctcp` binary:
//!
//! ```text
//! ctcp list
//! ctcp run     --bench gzip --strategy fdrt --insts 100000
//! ctcp run     --asm kernel.s --strategy issue0 --clusters 2
//! ctcp compare --bench twolf --insts 50000
//! ctcp trace   gzip --strategy fdrt --check
//! ctcp disasm  --bench gzip | head
//! ```
//!
//! Everything the binary does is exposed as a library so it can be unit
//! tested: argument parsing ([`Cli::parse`]), command execution
//! ([`execute`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod wire;

pub use args::{
    Cli, CliError, ClientAction, ClientArgs, Command, RunArgs, ServeArgs, StoreAction, StoreArgs,
    SweepArgs, TraceArgs,
};
pub use commands::{execute, execute_outcome, CliOutcome};
