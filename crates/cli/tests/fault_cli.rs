//! End-to-end crash injection through the CLI: a fail point panics one
//! sweep cell, and the command must still render every surviving cell,
//! append the failure table, and report a non-zero exit code.
//!
//! Fail-point state is process-global; this file holds a single test so
//! nothing else in the binary can race the armed point. (The library
//! unit tests run in a separate process and are unaffected.)

use ctcp_cli::{execute_outcome, Cli};
use ctcp_telemetry::failpoint;

fn sweep_argv(csv: bool) -> Vec<&'static str> {
    let mut argv = vec![
        "sweep",
        "--benches",
        "gzip,twolf",
        "--strategies",
        "fdrt",
        "--insts",
        "2000",
        "--jobs",
        "2",
    ];
    if csv {
        argv.push("--csv");
    }
    argv
}

#[test]
fn sweep_with_a_crashed_cell_renders_survivors_and_exits_nonzero() {
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            failpoint::set(None);
        }
    }
    let _disarm = Disarm;
    failpoint::set(Some("job-panic=twolf:fdrt"));
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence the injected panics

    let prose = execute_outcome(&Cli::parse(sweep_argv(false)).unwrap()).unwrap();
    let csv = execute_outcome(&Cli::parse(sweep_argv(true)).unwrap()).unwrap();
    std::panic::set_hook(hook);

    for out in [&prose, &csv] {
        assert_eq!(out.exit_code, 1, "{}", out.output);
        // The gzip cell survives the crash next door and still renders.
        assert!(out.output.contains("gzip"), "{}", out.output);
        // The crashed cell moves from the grid to the failure table.
        assert!(out.output.contains("1 of 4 jobs failed:"), "{}", out.output);
        assert!(out.output.contains("twolf/fdrt: panic:"), "{}", out.output);
        assert!(
            out.output.lines().all(|l| !l.starts_with("twolf")),
            "crashed cell must not render a grid row:\n{}",
            out.output
        );
    }
    // CSV keeps its header plus exactly the surviving row before the table.
    assert!(
        csv.output
            .starts_with("bench,clusters,topology,strategy,ipc,speedup\ngzip,"),
        "{}",
        csv.output
    );

    // Disarmed, the identical sweep completes cleanly.
    failpoint::set(None);
    let healthy = execute_outcome(&Cli::parse(sweep_argv(true)).unwrap()).unwrap();
    assert_eq!(healthy.exit_code, 0, "{}", healthy.output);
    assert!(healthy.output.contains("twolf"), "{}", healthy.output);
}
