//! Chaos exercise of the crash-safe sweep service: real daemons are
//! SIGKILLed mid-batch, streams are severed by fail points, and the
//! disk "fills up" — the client and the journal must absorb all of it.
//!
//! The suite asserts the crash-recovery promises from DESIGN.md §7i:
//! 1. `kill -9` mid-sweep loses nothing: the restarted daemon replays
//!    the journaled request, cells memoized before the crash are *not*
//!    recomputed, and a client re-asking the same question receives
//!    output byte-identical to an uninterrupted run;
//! 2. a mid-stream disconnect (the `serve-disconnect` fail point) is
//!    healed by the client's reconnect/resume loop without perturbing
//!    a single output byte;
//! 3. a full disk degrades the daemon to read-only: in-flight batches
//!    finish, new ones get a typed `503` with a retry hint, and
//!    `/status` reports the degraded store.

use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ctcp")
}

fn run(args: &[&str]) -> std::process::Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn ctcp binary")
}

fn stdout_of(out: &std::process::Output) -> String {
    assert!(
        out.status.success(),
        "exit {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

/// Spawns the daemon (optionally with an armed fail point) and reads
/// its bound address off the first stdout line. The returned reader
/// must stay alive as long as the daemon: dropping it closes the pipe
/// and would turn the daemon's exit summary into an `EPIPE` panic.
fn spawn_daemon(
    store_dir: &Path,
    jobs: &str,
    fail_point: Option<&str>,
) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut cmd = Command::new(bin());
    cmd.args([
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--jobs",
        jobs,
        "--dir",
        store_dir.to_str().unwrap(),
    ])
    .stdout(Stdio::piped())
    .stderr(Stdio::null());
    if let Some(fp) = fail_point {
        cmd.env("CTCP_FAIL_POINT", fp);
    }
    let mut daemon = cmd.spawn().expect("spawn daemon");
    let mut reader = BufReader::new(daemon.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read listening line");
    assert!(line.contains("listening on "), "{line}");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address after 'listening on'")
        .to_string();
    (daemon, addr, reader)
}

fn counter(status_json: &str, name: &str) -> u64 {
    ctcp_telemetry::json::Value::parse(status_json.trim())
        .expect("status is JSON")
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(ctcp_telemetry::json::Value::as_u64)
        .unwrap_or_else(|| panic!("counter {name} in {status_json}"))
}

/// A daemon is SIGKILLed while a six-cell sweep is mid-flight. The
/// restarted daemon must replay the journaled request headless, answer
/// the already-memoized cells from the store (zero recomputation —
/// every cell has exactly one valid store line at the end), and a
/// client re-posting the identical body must receive output
/// byte-identical to an uninterrupted one-shot sweep.
#[test]
fn sigkill_mid_sweep_is_resumed_by_the_restarted_daemon() {
    let dir = std::env::temp_dir().join(format!("ctcp-chaos-kill-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let store_dir = dir.join("store");
    let (mut daemon, addr, _daemon_out) = spawn_daemon(&store_dir, "1", None);

    // 2 benches × (baseline + 2 strategies) = 6 cells, slow enough on
    // one debug-build worker that the kill below lands mid-batch.
    let grid = [
        "--benches",
        "gzip,twolf",
        "--strategies",
        "fdrt,friendly",
        "--insts",
        "50000",
        "--csv",
    ];
    let mut client_argv: Vec<&str> = vec!["client", "sweep", "--addr", &addr];
    client_argv.extend_from_slice(&grid);
    let mut victim = Command::new(bin())
        .args(&client_argv)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn victim client");

    // Wait for two per-cell progress lines: at least one finished cell
    // is durably memoized and journal-marked before the crash.
    let mut progress_seen = 0;
    let stderr = BufReader::new(victim.stderr.take().expect("piped stderr"));
    for line in stderr.lines() {
        let line = line.expect("victim stderr");
        if line.starts_with('[') {
            progress_seen += 1;
            if progress_seen == 2 {
                break;
            }
        }
    }
    assert_eq!(
        progress_seen, 2,
        "sweep must get mid-flight before the kill"
    );
    daemon.kill().expect("SIGKILL the daemon"); // Child::kill is SIGKILL on unix
    daemon.wait().expect("reap the killed daemon");
    let victim = victim.wait_with_output().expect("victim client exits");
    assert!(
        !victim.status.success(),
        "the victim client must see its daemon die"
    );

    // Restart over the same store directory: the journal replays the
    // unfinished request before the listener accepts anyone.
    let (mut daemon, addr, _daemon_out) = spawn_daemon(&store_dir, "1", None);
    let status = stdout_of(&run(&["client", "status", "--addr", &addr]));
    assert_eq!(
        counter(&status, "serve_journal_replayed"),
        1,
        "the crashed sweep must be replayed: {status}"
    );

    // Re-ask the identical question: same body, same resume token —
    // the client attaches to the live replay (or is answered warm from
    // the store if it already finished). Bytes must match a clean run.
    let mut retry_argv: Vec<&str> = vec!["client", "sweep", "--addr", &addr];
    retry_argv.extend_from_slice(&grid);
    let resumed = stdout_of(&run(&retry_argv));
    // One-shot sweeps without `--cache` never touch a store: hermetic.
    let mut oneshot_argv = vec!["sweep"];
    oneshot_argv.extend_from_slice(&grid);
    let oneshot = stdout_of(&run(&oneshot_argv));
    assert_eq!(
        resumed, oneshot,
        "the resumed sweep must render byte-identically"
    );

    // Zero recomputation: every one of the 6 cells was memoized exactly
    // once across both incarnations. (A line torn by the kill itself
    // may sit quarantined in a shard, but a *finished* cell is never
    // simulated — and therefore never appended — twice.)
    let verify = ctcp_harness::verify(&store_dir).expect("verify the store");
    assert_eq!(verify.entries, 6, "all cells memoized");
    assert_eq!(
        verify.valid, 6,
        "a finished cell must never be recomputed and re-appended"
    );

    stdout_of(&run(&["client", "shutdown", "--addr", &addr]));
    assert!(daemon.wait().unwrap().success());
    // Terminal records may linger in the WAL until compaction; what a
    // drained daemon must never leave behind is a *live* request. A
    // reopen (the next incarnation's view) compacts them all away.
    let journal = ctcp_harness::Journal::open(&store_dir).expect("reopen journal");
    assert!(
        journal.take_pending().is_empty(),
        "a drained daemon leaves no live journal records"
    );
    let lines = std::fs::read_to_string(journal.path()).unwrap_or_default();
    assert_eq!(
        lines.lines().count(),
        0,
        "open-time compaction drops fully-terminal history: {lines}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The `serve-disconnect=2` fail point severs the victim's response
/// stream after two chunks (then disarms). A client with a retry
/// budget must re-attach through `POST /resume`, receive only the
/// events it has not yet seen, and still render byte-identically.
#[test]
fn client_reconnects_through_a_mid_stream_disconnect() {
    let dir = std::env::temp_dir().join(format!("ctcp-chaos-resume-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let (mut daemon, addr, _daemon_out) =
        spawn_daemon(&dir.join("store"), "1", Some("serve-disconnect=2"));

    let grid = [
        "--benches",
        "gzip",
        "--strategies",
        "fdrt,friendly",
        "--insts",
        "5000",
        "--csv",
    ];
    let mut argv: Vec<&str> = vec![
        "client",
        "sweep",
        "--addr",
        &addr,
        "--retries",
        "3",
        "--backoff-ms",
        "100",
    ];
    argv.extend_from_slice(&grid);
    let healed = run(&argv);
    let healed_stdout = stdout_of(&healed);
    // The retry log names the request that failed; the re-attachment
    // itself is proven by the daemon's resumed-streams counter below.
    let stderr = String::from_utf8_lossy(&healed.stderr);
    assert!(
        stderr.contains("ctcp client: retrying"),
        "the client must have logged its reconnect: {stderr}"
    );

    let mut oneshot_argv = vec!["sweep"];
    oneshot_argv.extend_from_slice(&grid);
    let oneshot = stdout_of(&run(&oneshot_argv));
    assert_eq!(
        healed_stdout, oneshot,
        "a healed stream must render byte-identically"
    );

    let status = stdout_of(&run(&["client", "status", "--addr", &addr]));
    assert_eq!(
        counter(&status, "serve_resumed_streams"),
        1,
        "exactly one re-attachment: {status}"
    );

    stdout_of(&run(&["client", "shutdown", "--addr", &addr]));
    assert!(daemon.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}

/// The `disk-full` fail point makes every store append fail, tripping
/// the read-only circuit breaker on first write. The batch that trips
/// it still completes and streams its result; the next batch gets a
/// typed `503` naming the degradation, and `/status` reports the
/// read-only store.
#[test]
fn full_disk_degrades_to_read_only_with_typed_refusals() {
    let dir = std::env::temp_dir().join(format!("ctcp-chaos-disk-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let (mut daemon, addr, _daemon_out) = spawn_daemon(&dir.join("store"), "1", Some("disk-full"));

    // The breaker trips on this batch's first memoization attempt; the
    // batch itself must still finish and render.
    let first = stdout_of(&run(&[
        "client",
        "sweep",
        "--addr",
        &addr,
        "--benches",
        "gzip",
        "--strategies",
        "fdrt",
        "--insts",
        "2000",
        "--csv",
    ]));
    assert!(first.contains("fdrt"), "the tripping batch still renders");

    let status = stdout_of(&run(&["client", "status", "--addr", &addr]));
    let v = ctcp_telemetry::json::Value::parse(status.trim()).expect("status is JSON");
    assert_eq!(
        v.get("store_read_only")
            .map(|b| matches!(b, ctcp_telemetry::json::Value::Bool(true))),
        Some(true),
        "status must report the degraded store: {status}"
    );

    // New work is refused with the typed 503; a retry-less client
    // surfaces it as a clear degradation message.
    let refused = run(&[
        "client",
        "sweep",
        "--addr",
        &addr,
        "--benches",
        "twolf",
        "--strategies",
        "fdrt",
        "--insts",
        "2000",
        "--csv",
    ]);
    assert!(!refused.status.success(), "degraded daemon must refuse");
    let message = String::from_utf8_lossy(&refused.stderr);
    assert!(
        message.contains("unavailable") && message.contains("read-only"),
        "typed degradation message, got: {message}"
    );

    stdout_of(&run(&["client", "shutdown", "--addr", &addr]));
    assert!(daemon.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}
