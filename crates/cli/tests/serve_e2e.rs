//! End-to-end exercise of the resident sweep service: a real `ctcp
//! serve` daemon on an ephemeral port, driven by real `ctcp client`
//! processes.
//!
//! The tests assert the service's core promises:
//! 1. a remote sweep's stdout is byte-identical to the one-shot
//!    `ctcp sweep` command's — including under concurrency, for every
//!    request shape (sweep, sweep --attrib, analyze);
//! 2. overlapping grids from different clients share the daemon's warm
//!    cache (visible in the `serve_cache_hits` counter);
//! 3. the shared cell scheduler interleaves fairly: a tiny request is
//!    never starved behind a long warmup-heavy sweep;
//! 4. shutdown drains cleanly — even racing in-flight clients, no
//!    admitted cell is lost, the daemon exits zero, prints its
//!    summary, leaves a populated sharded store with no lock tokens,
//!    and stops listening.

use std::io::{BufRead, BufReader, Read};
use std::path::Path;
use std::process::{Child, Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ctcp")
}

fn run(args: &[&str]) -> std::process::Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn ctcp binary")
}

fn stdout_of(out: &std::process::Output) -> String {
    assert!(
        out.status.success(),
        "exit {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

/// Spawns the daemon and reads its bound address off the first stdout
/// line; the returned reader still holds the rest of the stream.
fn spawn_daemon(
    store_dir: &Path,
    jobs: &str,
) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut daemon = Command::new(bin())
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--jobs",
            jobs,
            "--dir",
            store_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    let mut reader = BufReader::new(daemon.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read listening line");
    assert!(line.contains("listening on "), "{line}");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address after 'listening on'")
        .to_string();
    (daemon, addr, reader)
}

#[test]
fn daemon_round_trips_sweeps_shares_its_cache_and_drains() {
    let dir = std::env::temp_dir().join(format!("ctcp-serve-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let store_dir = dir.join("store");
    let (mut daemon, addr, mut daemon_out) = spawn_daemon(&store_dir, "2");

    // 1. Remote sweep output is byte-identical to the one-shot CLI's.
    //    CSV mode: the prose header counts wall time and store hits,
    //    which legitimately differ between a cold CLI and a warm
    //    daemon; the table itself must not.
    let grid = [
        "--benches",
        "gzip",
        "--strategies",
        "fdrt",
        "--insts",
        "2000",
        "--csv",
    ];
    let mut client_argv = vec!["client", "sweep", "--addr", addr.as_str()];
    client_argv.extend_from_slice(&grid);
    let mut oneshot_argv = vec!["sweep"];
    oneshot_argv.extend_from_slice(&grid);
    let remote = stdout_of(&run(&client_argv));
    let oneshot = stdout_of(&run(&oneshot_argv));
    assert_eq!(remote, oneshot, "remote sweep must render identically");

    // 2. A second client with an overlapping grid: the gzip cells
    //    (baseline + fdrt) were memoized by the first sweep, so they
    //    come back from the daemon's warm cache.
    let wide = stdout_of(&run(&[
        "client",
        "sweep",
        "--addr",
        &addr,
        "--benches",
        "gzip,twolf",
        "--strategies",
        "fdrt",
        "--insts",
        "2000",
        "--csv",
    ]));
    let wide_oneshot = stdout_of(&run(&[
        "sweep",
        "--benches",
        "gzip,twolf",
        "--strategies",
        "fdrt",
        "--insts",
        "2000",
        "--csv",
    ]));
    assert_eq!(wide, wide_oneshot, "overlap must not perturb the output");

    let status = stdout_of(&run(&["client", "status", "--addr", &addr]));
    let v = ctcp_telemetry::json::Value::parse(status.trim()).expect("status is JSON");
    let counters = v.get("counters").expect("counters object");
    let cache_hits = counters
        .get("serve_cache_hits")
        .and_then(ctcp_telemetry::json::Value::as_u64)
        .expect("serve_cache_hits counter");
    assert_eq!(
        cache_hits, 2,
        "the second sweep's two gzip cells are cache hits: {status}"
    );
    assert!(
        counters.get("serve_requests").is_some(),
        "status exposes the request counter: {status}"
    );

    // 3. Shutdown drains: daemon exits zero with its summary printed,
    //    the sharded store is populated, no lock tokens remain, and
    //    the port is closed.
    stdout_of(&run(&["client", "shutdown", "--addr", &addr]));
    let code = daemon.wait().expect("daemon exit");
    assert!(code.success(), "daemon must exit cleanly, got {code:?}");
    let mut rest = String::new();
    daemon_out.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("drained after"), "{rest}");

    let shard_lines: usize = (0..ctcp_harness::STORE_SHARDS)
        .filter_map(|i| std::fs::read_to_string(store_dir.join(format!("shard-{i}.jsonl"))).ok())
        .map(|text| text.lines().count())
        .sum();
    assert_eq!(
        shard_lines, 4,
        "gzip and twolf, baseline and fdrt, memoized exactly once each"
    );
    let leftover_locks: Vec<_> = std::fs::read_dir(&store_dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".lock"))
        .collect();
    assert!(
        leftover_locks.is_empty(),
        "orphaned locks: {leftover_locks:?}"
    );

    let refused = run(&["client", "status", "--addr", &addr]);
    assert!(
        !refused.status.success(),
        "the drained daemon must not be listening"
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn counter(status_json: &str, name: &str) -> u64 {
    ctcp_telemetry::json::Value::parse(status_json.trim())
        .expect("status is JSON")
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(ctcp_telemetry::json::Value::as_u64)
        .unwrap_or_else(|| panic!("counter {name} in {status_json}"))
}

/// Three clients of different shapes — a CSV sweep, an attribution
/// sweep, and an analyze — hammer the daemon *simultaneously*. Every
/// one must render byte-identically to its one-shot equivalent, and a
/// repeat of the first grid must then be answered entirely from the
/// shared warm cache.
#[test]
fn concurrent_clients_render_identically_and_share_the_cache() {
    let dir = std::env::temp_dir().join(format!("ctcp-serve-conc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let (mut daemon, addr, _out) = spawn_daemon(&dir.join("store"), "2");

    // Distinct --insts per sweep so the two grids share no cell keys:
    // concurrent identical cells would race their store writes and
    // make the cache-hit arithmetic below nondeterministic.
    let sweep_grid = [
        "sweep",
        "--benches",
        "gzip,twolf",
        "--strategies",
        "fdrt",
        "--insts",
        "2000",
        "--csv",
    ];
    let attrib_grid = [
        "sweep",
        "--benches",
        "gzip",
        "--strategies",
        "friendly",
        "--insts",
        "2500",
        "--csv",
        "--attrib",
    ];
    let analyze = ["analyze", "--bench", "gzip", "--insts", "2000"];

    let shapes: Vec<Vec<String>> = [&sweep_grid[..], &attrib_grid[..], &analyze[..]]
        .iter()
        .map(|argv| argv.iter().map(|s| s.to_string()).collect())
        .collect();
    let clients: Vec<_> = shapes
        .iter()
        .map(|argv| {
            let mut remote: Vec<String> = vec![
                "client".into(),
                argv[0].clone(),
                "--addr".into(),
                addr.clone(),
            ];
            remote.extend(argv[1..].iter().cloned());
            std::thread::spawn(move || {
                let args: Vec<&str> = remote.iter().map(String::as_str).collect();
                stdout_of(&run(&args))
            })
        })
        .collect();
    let remote_outputs: Vec<String> = clients.into_iter().map(|c| c.join().unwrap()).collect();
    for (argv, remote) in shapes.iter().zip(&remote_outputs) {
        let args: Vec<&str> = argv.iter().map(String::as_str).collect();
        let oneshot = stdout_of(&run(&args));
        assert_eq!(
            remote, &oneshot,
            "{args:?} must render identically under concurrency"
        );
    }

    // Repeat the first grid: all four of its cells (2 benches ×
    // baseline + fdrt) are now warm, so the daemon answers from the
    // shared store without queueing a single cell.
    let before = counter(
        &stdout_of(&run(&["client", "status", "--addr", &addr])),
        "serve_cache_hits",
    );
    let mut repeat = vec!["client", "sweep", "--addr", addr.as_str()];
    repeat.extend_from_slice(&sweep_grid[1..]);
    let warm = stdout_of(&run(&repeat));
    assert_eq!(warm, remote_outputs[0], "the warm path renders identically");
    let after = counter(
        &stdout_of(&run(&["client", "status", "--addr", &addr])),
        "serve_cache_hits",
    );
    assert_eq!(after - before, 4, "all four repeated cells are cache hits");

    stdout_of(&run(&["client", "shutdown", "--addr", &addr]));
    assert!(daemon.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}

/// With a single resident worker, a long warmup-heavy sweep cannot
/// starve a tiny request that arrives after it: the round-robin cell
/// queue gives the newcomer the very next free slot, so it finishes
/// while the big sweep is still running.
#[test]
fn small_request_is_not_starved_by_a_running_sweep() {
    let dir = std::env::temp_dir().join(format!("ctcp-serve-fair-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let (mut daemon, addr, _out) = spawn_daemon(&dir.join("store"), "1");

    // ~30 warmup-heavy cells on one worker: several seconds of queued
    // work from this client alone.
    let mut big = Command::new(bin())
        .args([
            "client",
            "sweep",
            "--addr",
            &addr,
            "--benches",
            "focus",
            "--insts",
            "20000",
            "--warmup",
            "20000",
            "--csv",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn big sweep client");
    // Let the big sweep get admitted and occupy the worker.
    std::thread::sleep(std::time::Duration::from_millis(500));

    let t = std::time::Instant::now();
    let small = stdout_of(&run(&[
        "client",
        "sweep",
        "--addr",
        &addr,
        "--benches",
        "gzip",
        "--strategies",
        "fdrt",
        "--insts",
        "2000",
        "--csv",
    ]));
    let small_latency = t.elapsed();
    assert!(small.contains("fdrt"), "small sweep produced its table");
    assert!(
        big.try_wait().expect("poll big client").is_none(),
        "the big sweep must still be running when the small one finishes \
         (big done in under {:?} — grid too small to prove fairness)",
        t.elapsed()
    );
    let big_out = big.wait_with_output().expect("big sweep completes");
    assert!(big_out.status.success());
    assert!(
        small_latency < std::time::Duration::from_secs(5),
        "small sweep waited {small_latency:?} behind the big one"
    );

    stdout_of(&run(&["client", "shutdown", "--addr", &addr]));
    assert!(daemon.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}

/// A shutdown racing two in-flight sweeps must lose nothing: both
/// clients stream to completion, and every cell of both grids is
/// memoized in the store by the time the daemon exits.
#[test]
fn shutdown_racing_two_clients_loses_no_cells() {
    let dir = std::env::temp_dir().join(format!("ctcp-serve-race-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let store_dir = dir.join("store");
    let (mut daemon, addr, _out) = spawn_daemon(&store_dir, "1");

    // 30 cells (6 benches × baseline + 4 strategies) and 2 cells, on
    // distinct --insts so the grids share no keys: 32 stored lines iff
    // nothing is lost.
    let spawn_sweep = |argv: &[&str]| {
        Command::new(bin())
            .args(argv)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn sweep client")
    };
    let a = spawn_sweep(&[
        "client",
        "sweep",
        "--addr",
        &addr,
        "--benches",
        "focus",
        "--insts",
        "20000",
        "--csv",
    ]);
    let b = spawn_sweep(&[
        "client",
        "sweep",
        "--addr",
        &addr,
        "--benches",
        "gzip",
        "--strategies",
        "fdrt",
        "--insts",
        "7777",
        "--csv",
    ]);
    // Fire the shutdown while both batches are (very likely) mid-
    // flight; correctness must not depend on the timing either way.
    std::thread::sleep(std::time::Duration::from_millis(300));
    stdout_of(&run(&["client", "shutdown", "--addr", &addr]));

    let a = a.wait_with_output().expect("client A completes");
    let b = b.wait_with_output().expect("client B completes");
    assert!(a.status.success(), "draining must not abort client A");
    assert!(b.status.success(), "draining must not abort client B");
    let a_rows = String::from_utf8_lossy(&a.stdout).lines().count();
    assert_eq!(a_rows, 25, "header + 24 non-baseline cells");
    assert!(daemon.wait().unwrap().success());

    let shard_lines: usize = (0..ctcp_harness::STORE_SHARDS)
        .filter_map(|i| std::fs::read_to_string(store_dir.join(format!("shard-{i}.jsonl"))).ok())
        .map(|text| text.lines().count())
        .sum();
    assert_eq!(shard_lines, 32, "every admitted cell memoized exactly once");
    std::fs::remove_dir_all(&dir).ok();
}

/// Like [`spawn_daemon`], with extra `serve` flags and environment
/// overrides — the observability test runs one silent daemon and one
/// fully instrumented daemon.
fn spawn_daemon_with(
    store_dir: &Path,
    jobs: &str,
    extra: &[&str],
    envs: &[(&str, &str)],
) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut cmd = Command::new(bin());
    cmd.args([
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--jobs",
        jobs,
        "--dir",
        store_dir.to_str().unwrap(),
    ])
    .args(extra)
    .stdout(Stdio::piped())
    .stderr(Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut daemon = cmd.spawn().expect("spawn daemon");
    let mut reader = BufReader::new(daemon.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read listening line");
    assert!(line.contains("listening on "), "{line}");
    let addr = line.trim().rsplit(' ').next().unwrap().to_string();
    (daemon, addr, reader)
}

fn get(addr: &str, path: &str) -> (u16, String) {
    let resp = ctcp_serve::http::request(addr, "GET", path, b"", &mut |_| {}).expect("GET");
    (
        resp.status,
        String::from_utf8_lossy(&resp.body).into_owned(),
    )
}

/// The observability plane end to end, with its golden no-observer-
/// effect guarantee: the rendered sweep table from a daemon running
/// with logging off and zero scrapes is byte-identical to one from a
/// daemon running debug logging to a file while being scraped,
/// traced and watched by `ctcp top`.
#[test]
fn observability_never_perturbs_output_and_exports_metrics_logs_traces() {
    let dir = std::env::temp_dir().join(format!("ctcp-serve-obs-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let grid = [
        "--benches",
        "gzip",
        "--strategies",
        "fdrt,friendly",
        "--insts",
        "3000",
        "--csv",
    ];
    let sweep_via = |addr: &str| {
        let mut argv = vec!["client", "sweep", "--addr", addr];
        argv.extend_from_slice(&grid);
        stdout_of(&run(&argv))
    };

    // Daemon A: logging forced off, nobody watching.
    let (mut quiet, quiet_addr, _out) =
        spawn_daemon_with(&dir.join("store-a"), "2", &[], &[("CTCP_LOG", "off")]);
    let unobserved = sweep_via(&quiet_addr);
    stdout_of(&run(&["client", "shutdown", "--addr", &quiet_addr]));
    assert!(quiet.wait().unwrap().success());

    // Daemon B: debug logs to a file, scraped before/after, traced,
    // and rendered by `ctcp top`.
    let log_file = dir.join("serve.log");
    let (mut loud, addr, _out) = spawn_daemon_with(
        &dir.join("store-b"),
        "2",
        &[
            "--log-level",
            "debug",
            "--log-file",
            log_file.to_str().unwrap(),
        ],
        &[],
    );
    let (code, before) = get(&addr, "/metrics");
    assert_eq!(code, 200);
    let observed = sweep_via(&addr);
    assert_eq!(
        observed, unobserved,
        "observability must not change a single output byte"
    );

    // The exposition parses: every sample line is `name[{labels}] value`.
    let (_, after) = get(&addr, "/metrics");
    let samples = |text: &str| -> Vec<(String, f64)> {
        text.lines()
            .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
            .map(|l| {
                let (name, v) = l.rsplit_once(' ').expect("sample line");
                (name.to_string(), v.parse::<f64>().expect("numeric value"))
            })
            .collect()
    };
    let (before, after) = (samples(&before), samples(&after));
    assert!(after.len() >= before.len());
    for (name, v) in &before {
        if !name.ends_with("_total") {
            continue;
        }
        let now = after
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("{name} vanished between scrapes"))
            .1;
        assert!(now >= *v, "{name} went backwards: {v} -> {now}");
    }
    let requests = after
        .iter()
        .find(|(n, _)| n == "ctcp_serve_requests_total")
        .unwrap()
        .1;
    assert!(requests >= 2.0, "sweep + first scrape counted: {requests}");

    // The structured log is one JSON object per line, and names the
    // finished request's token — which /trace then resolves to a
    // loadable Chrome trace with per-worker cell spans.
    let log_text = std::fs::read_to_string(&log_file).expect("log file written");
    let mut token = None;
    for line in log_text.lines() {
        let v = ctcp_telemetry::json::Value::parse(line)
            .unwrap_or_else(|e| panic!("unparseable log line {line}: {e}"));
        for key in ["ts_ms", "level", "target", "msg"] {
            assert!(v.get(key).is_some(), "log line missing {key}: {line}");
        }
        if v.get("msg").and_then(ctcp_telemetry::json::Value::as_str) == Some("request finished") {
            token = v
                .get("token")
                .and_then(ctcp_telemetry::json::Value::as_str)
                .map(str::to_string);
        }
    }
    let token = token.expect("an info-level 'request finished' record in the log");
    let (code, trace) = get(&addr, &format!("/trace/{token}"));
    assert_eq!(code, 200);
    let summary = ctcp_telemetry::validate_chrome_trace(&trace).expect("loadable trace");
    assert!(
        summary.spans >= 4 && summary.lanes >= 3,
        "admit + run + cells + stream over service/stream/worker lanes: {summary:?}"
    );

    // `ctcp top --once`: one frame, no ANSI, dashboard sections present.
    let top = stdout_of(&run(&["top", "--addr", &addr, "--once"]));
    assert!(top.contains(&format!("daemon {addr}")), "{top}");
    assert!(top.contains("workers"), "{top}");
    assert!(top.contains("requests"), "{top}");
    assert!(!top.contains('\x1b'), "--once must not emit ANSI control");

    stdout_of(&run(&["client", "shutdown", "--addr", &addr]));
    assert!(loud.wait().unwrap().success());
    std::fs::remove_dir_all(&dir).ok();
}
