//! End-to-end exercise of the resident sweep service: a real `ctcp
//! serve` daemon on an ephemeral port, driven by real `ctcp client`
//! processes.
//!
//! The test asserts the service's three core promises:
//! 1. a remote sweep's stdout is byte-identical to the one-shot
//!    `ctcp sweep` command's;
//! 2. overlapping grids from different clients share the daemon's warm
//!    cache (visible in the `serve_cache_hits` counter);
//! 3. shutdown drains cleanly — the daemon exits zero, prints its
//!    summary, leaves a populated sharded store with no lock tokens,
//!    and stops listening.

use std::io::{BufRead, BufReader, Read};
use std::path::Path;
use std::process::{Child, Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ctcp")
}

fn run(args: &[&str]) -> std::process::Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn ctcp binary")
}

fn stdout_of(out: &std::process::Output) -> String {
    assert!(
        out.status.success(),
        "exit {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

/// Spawns the daemon and reads its bound address off the first stdout
/// line; the returned reader still holds the rest of the stream.
fn spawn_daemon(store_dir: &Path) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut daemon = Command::new(bin())
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--jobs",
            "2",
            "--dir",
            store_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    let mut reader = BufReader::new(daemon.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("read listening line");
    assert!(line.contains("listening on "), "{line}");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address after 'listening on'")
        .to_string();
    (daemon, addr, reader)
}

#[test]
fn daemon_round_trips_sweeps_shares_its_cache_and_drains() {
    let dir = std::env::temp_dir().join(format!("ctcp-serve-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let store_dir = dir.join("store");
    let (mut daemon, addr, mut daemon_out) = spawn_daemon(&store_dir);

    // 1. Remote sweep output is byte-identical to the one-shot CLI's.
    //    CSV mode: the prose header counts wall time and store hits,
    //    which legitimately differ between a cold CLI and a warm
    //    daemon; the table itself must not.
    let grid = [
        "--benches",
        "gzip",
        "--strategies",
        "fdrt",
        "--insts",
        "2000",
        "--csv",
    ];
    let mut client_argv = vec!["client", "sweep", "--addr", addr.as_str()];
    client_argv.extend_from_slice(&grid);
    let mut oneshot_argv = vec!["sweep"];
    oneshot_argv.extend_from_slice(&grid);
    let remote = stdout_of(&run(&client_argv));
    let oneshot = stdout_of(&run(&oneshot_argv));
    assert_eq!(remote, oneshot, "remote sweep must render identically");

    // 2. A second client with an overlapping grid: the gzip cells
    //    (baseline + fdrt) were memoized by the first sweep, so they
    //    come back from the daemon's warm cache.
    let wide = stdout_of(&run(&[
        "client",
        "sweep",
        "--addr",
        &addr,
        "--benches",
        "gzip,twolf",
        "--strategies",
        "fdrt",
        "--insts",
        "2000",
        "--csv",
    ]));
    let wide_oneshot = stdout_of(&run(&[
        "sweep",
        "--benches",
        "gzip,twolf",
        "--strategies",
        "fdrt",
        "--insts",
        "2000",
        "--csv",
    ]));
    assert_eq!(wide, wide_oneshot, "overlap must not perturb the output");

    let status = stdout_of(&run(&["client", "status", "--addr", &addr]));
    let v = ctcp_telemetry::json::Value::parse(status.trim()).expect("status is JSON");
    let counters = v.get("counters").expect("counters object");
    let cache_hits = counters
        .get("serve_cache_hits")
        .and_then(ctcp_telemetry::json::Value::as_u64)
        .expect("serve_cache_hits counter");
    assert_eq!(
        cache_hits, 2,
        "the second sweep's two gzip cells are cache hits: {status}"
    );
    assert!(
        counters.get("serve_requests").is_some(),
        "status exposes the request counter: {status}"
    );

    // 3. Shutdown drains: daemon exits zero with its summary printed,
    //    the sharded store is populated, no lock tokens remain, and
    //    the port is closed.
    stdout_of(&run(&["client", "shutdown", "--addr", &addr]));
    let code = daemon.wait().expect("daemon exit");
    assert!(code.success(), "daemon must exit cleanly, got {code:?}");
    let mut rest = String::new();
    daemon_out.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("drained after"), "{rest}");

    let shard_lines: usize = (0..ctcp_harness::STORE_SHARDS)
        .filter_map(|i| std::fs::read_to_string(store_dir.join(format!("shard-{i}.jsonl"))).ok())
        .map(|text| text.lines().count())
        .sum();
    assert_eq!(
        shard_lines, 4,
        "gzip and twolf, baseline and fdrt, memoized exactly once each"
    );
    let leftover_locks: Vec<_> = std::fs::read_dir(&store_dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".lock"))
        .collect();
    assert!(
        leftover_locks.is_empty(),
        "orphaned locks: {leftover_locks:?}"
    );

    let refused = run(&["client", "status", "--addr", &addr]);
    assert!(
        !refused.status.success(),
        "the drained daemon must not be listening"
    );
    std::fs::remove_dir_all(&dir).ok();
}
