//! Benchmark presets: 12 SPEC CINT2000-class and 14 MediaBench-class
//! synthetic workloads.

use crate::{generate, WorkloadParams};
use ctcp_isa::Program;

/// Which suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// SPEC CINT2000-class workload.
    SpecInt,
    /// MediaBench-class workload.
    MediaBench,
}

/// A named synthetic benchmark: a [`WorkloadParams`] preset mimicking one
/// of the paper's programs.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    /// The paper's benchmark name this preset mimics.
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    params: WorkloadParams,
}

impl Benchmark {
    /// The generator parameters.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// Generates the program (deterministic).
    pub fn program(&self) -> Program {
        generate(&self.params)
    }

    /// Finds a benchmark by name across both suites.
    pub fn by_name(name: &str) -> Option<Benchmark> {
        Self::spec_all()
            .into_iter()
            .chain(Self::mediabench())
            .find(|b| b.name == name)
    }

    /// The six SPECint benchmarks the paper analyses in depth (Table 6):
    /// bzip2, eon, gzip, perlbmk, twolf, vpr.
    pub fn spec_focus() -> Vec<Benchmark> {
        ["bzip2", "eon", "gzip", "perlbmk", "twolf", "vpr"]
            .iter()
            .map(|n| Self::by_name_in(Self::spec_all(), n))
            .collect()
    }

    fn by_name_in(list: Vec<Benchmark>, name: &str) -> Benchmark {
        list.into_iter()
            .find(|b| b.name == name)
            .expect("known benchmark name")
    }

    /// All 12 SPEC CINT2000-class benchmarks (Figure 9).
    pub fn spec_all() -> Vec<Benchmark> {
        let d = WorkloadParams::default;
        let mk = |name, params| Benchmark {
            name,
            suite: Suite::SpecInt,
            params,
        };
        vec![
            // Compression: biased loops plus genuinely data-dependent
            // decisions, modest working set, integer-only.
            mk(
                "bzip2",
                WorkloadParams {
                    seed: 0xb21b,
                    kernels: 4,
                    blocks_per_kernel: 5,
                    unpredictable_branch_fraction: 0.22,
                    taken_prob: 0.4,
                    mem_fraction: 0.25,
                    working_set_words: 1 << 12, // 32 KB (MinneSPEC-scale)
                    dep_chain_bias: 0.8,
                    ilp_chains: 4,
                    stable_src_fraction: 0.3,
                    irregular_index_fraction: 0.3,
                    ..d()
                },
            ),
            // Chess: shift/mask bit tricks, predictable search loops.
            mk(
                "crafty",
                WorkloadParams {
                    seed: 0xc4af,
                    kernels: 6,
                    unpredictable_branch_fraction: 0.12,
                    mem_fraction: 0.22,
                    working_set_words: 1 << 13,
                    dep_chain_bias: 0.75,
                    complex_fraction: 0.03,
                    ..d()
                },
            ),
            // Ray tracer (C++): FP-heavy, call-heavy, predictable.
            mk(
                "eon",
                WorkloadParams {
                    seed: 0xe0e1,
                    kernels: 8,
                    blocks_per_kernel: 3,
                    unpredictable_branch_fraction: 0.08,
                    mem_fraction: 0.26,
                    fp_fraction: 0.3,
                    complex_fraction: 0.08,
                    working_set_words: 1 << 12,
                    dep_chain_bias: 0.75,
                    ilp_chains: 4,
                    stable_src_fraction: 0.32,
                    ..d()
                },
            ),
            // Group theory interpreter: integer, mul-heavy, branchy.
            mk(
                "gap",
                WorkloadParams {
                    seed: 0x6a9,
                    kernels: 5,
                    unpredictable_branch_fraction: 0.15,
                    complex_fraction: 0.15,
                    mem_fraction: 0.3,
                    working_set_words: 1 << 14,
                    ..d()
                },
            ),
            // Compiler: large static footprint, branchy, some indirect.
            mk(
                "gcc",
                WorkloadParams {
                    seed: 0x6cc,
                    kernels: 10,
                    blocks_per_kernel: 6,
                    ops_per_block: (3, 8),
                    unpredictable_branch_fraction: 0.18,
                    mem_fraction: 0.3,
                    working_set_words: 1 << 14,
                    dispatch_targets: Some(8),
                    dep_chain_bias: 0.55,
                    ..d()
                },
            ),
            // Compression, lighter than bzip2.
            mk(
                "gzip",
                WorkloadParams {
                    seed: 0x671b,
                    kernels: 3,
                    blocks_per_kernel: 4,
                    unpredictable_branch_fraction: 0.15,
                    taken_prob: 0.45,
                    mem_fraction: 0.28,
                    working_set_words: 1 << 12, // 32 KB
                    dep_chain_bias: 0.75,
                    ilp_chains: 3,
                    stable_src_fraction: 0.35,
                    ..d()
                },
            ),
            // Network simplex: pointer chasing over a huge working set.
            mk(
                "mcf",
                WorkloadParams {
                    seed: 0x3cf,
                    kernels: 3,
                    unpredictable_branch_fraction: 0.18,
                    mem_fraction: 0.45,
                    chase_fraction: 0.5,
                    irregular_index_fraction: 0.6,
                    working_set_words: 1 << 17, // 1 MB
                    dep_chain_bias: 0.6,
                    ..d()
                },
            ),
            // Link grammar parser: branchy, recursive flavour.
            mk(
                "parser",
                WorkloadParams {
                    seed: 0xa45e,
                    kernels: 6,
                    blocks_per_kernel: 5,
                    unpredictable_branch_fraction: 0.22,
                    mem_fraction: 0.33,
                    chase_fraction: 0.2,
                    working_set_words: 1 << 13,
                    ..d()
                },
            ),
            // Perl interpreter: indirect dispatch over many op handlers.
            mk(
                "perlbmk",
                WorkloadParams {
                    seed: 0xe41,
                    kernels: 4,
                    blocks_per_kernel: 3,
                    ops_per_block: (3, 7),
                    unpredictable_branch_fraction: 0.15,
                    mem_fraction: 0.3,
                    working_set_words: 1 << 12,
                    dispatch_targets: Some(16),
                    dep_chain_bias: 0.7,
                    ilp_chains: 3,
                    stable_src_fraction: 0.35,
                    ..d()
                },
            ),
            // Place & route (timberwolf): pointer-chasing, data-dependent.
            mk(
                "twolf",
                WorkloadParams {
                    seed: 0x2bf,
                    kernels: 5,
                    unpredictable_branch_fraction: 0.28,
                    taken_prob: 0.5,
                    mem_fraction: 0.32,
                    chase_fraction: 0.25,
                    irregular_index_fraction: 0.4,
                    working_set_words: 1 << 12, // MinneSPEC-scale
                    dep_chain_bias: 0.75,
                    ilp_chains: 3,
                    stable_src_fraction: 0.35,
                    ..d()
                },
            ),
            // OO database: call-heavy, balanced loads/stores, predictable.
            mk(
                "vortex",
                WorkloadParams {
                    seed: 0x9042,
                    kernels: 8,
                    blocks_per_kernel: 4,
                    unpredictable_branch_fraction: 0.08,
                    mem_fraction: 0.4,
                    store_fraction: 0.45,
                    working_set_words: 1 << 14,
                    ..d()
                },
            ),
            // FPGA place & route: mix of chasing and arithmetic cost
            // functions (small FP component).
            mk(
                "vpr",
                WorkloadParams {
                    seed: 0x44e,
                    kernels: 5,
                    unpredictable_branch_fraction: 0.24,
                    mem_fraction: 0.3,
                    chase_fraction: 0.2,
                    irregular_index_fraction: 0.35,
                    fp_fraction: 0.12,
                    working_set_words: 1 << 12,
                    dep_chain_bias: 0.75,
                    ilp_chains: 4,
                    stable_src_fraction: 0.35,
                    ..d()
                },
            ),
        ]
    }

    /// The 14 MediaBench-class benchmarks used in prior four-cluster work
    /// (Figure 9). Media kernels are loop-dominated with predictable
    /// branches and high ILP.
    pub fn mediabench() -> Vec<Benchmark> {
        let mk = |name, params| Benchmark {
            name,
            suite: Suite::MediaBench,
            params,
        };
        // A common media-kernel base: tight predictable loops, small
        // working sets, long arithmetic chains over loaded samples.
        let base = WorkloadParams {
            kernels: 2,
            blocks_per_kernel: 3,
            ops_per_block: (4, 9),
            trip_count: (32, 128),
            unpredictable_branch_fraction: 0.08,
            mem_fraction: 0.3,
            store_fraction: 0.4,
            working_set_words: 1 << 11, // 16 KB
            dep_chain_bias: 0.6,
            use_calls: true,
            ..WorkloadParams::default()
        };
        vec![
            mk(
                "adpcm_enc",
                WorkloadParams {
                    seed: 0xad01,
                    kernels: 1,
                    dep_chain_bias: 0.85, // bit-serial coder: deep chains
                    mem_fraction: 0.2,
                    unpredictable_branch_fraction: 0.25,
                    ..base
                },
            ),
            mk(
                "adpcm_dec",
                WorkloadParams {
                    seed: 0xad02,
                    kernels: 1,
                    dep_chain_bias: 0.85,
                    mem_fraction: 0.2,
                    unpredictable_branch_fraction: 0.2,
                    ..base
                },
            ),
            mk(
                "epic",
                WorkloadParams {
                    seed: 0xe41c,
                    fp_fraction: 0.35,
                    complex_fraction: 0.1,
                    working_set_words: 1 << 13,
                    ..base
                },
            ),
            mk(
                "unepic",
                WorkloadParams {
                    seed: 0xe41d,
                    fp_fraction: 0.3,
                    working_set_words: 1 << 13,
                    ..base
                },
            ),
            mk(
                "g721_enc",
                WorkloadParams {
                    seed: 0x6721,
                    complex_fraction: 0.18, // integer DSP multiplies
                    dep_chain_bias: 0.75,
                    ..base
                },
            ),
            mk(
                "g721_dec",
                WorkloadParams {
                    seed: 0x6722,
                    complex_fraction: 0.18,
                    dep_chain_bias: 0.75,
                    ..base
                },
            ),
            // Ghostscript: the outlier — branchy and indirect, more like
            // an integer SPEC program.
            mk(
                "gs",
                WorkloadParams {
                    seed: 0x6500,
                    kernels: 6,
                    blocks_per_kernel: 5,
                    ops_per_block: (3, 8),
                    unpredictable_branch_fraction: 0.35,
                    dispatch_targets: Some(8),
                    working_set_words: 1 << 13,
                    ..base
                },
            ),
            mk(
                "jpeg_enc",
                WorkloadParams {
                    seed: 0x04e6,
                    complex_fraction: 0.2, // DCT multiplies
                    dep_chain_bias: 0.45,  // high ILP
                    mem_fraction: 0.35,
                    ..base
                },
            ),
            mk(
                "jpeg_dec",
                WorkloadParams {
                    seed: 0x04e7,
                    complex_fraction: 0.2,
                    dep_chain_bias: 0.45,
                    mem_fraction: 0.35,
                    ..base
                },
            ),
            // 3-D rendering: FP-dominated.
            mk(
                "mesa",
                WorkloadParams {
                    seed: 0x3e5a,
                    fp_fraction: 0.55,
                    complex_fraction: 0.15,
                    working_set_words: 1 << 13,
                    ..base
                },
            ),
            mk(
                "mpeg2_enc",
                WorkloadParams {
                    seed: 0x3e61,
                    kernels: 3,
                    dep_chain_bias: 0.4, // motion estimation: wide ILP
                    mem_fraction: 0.4,
                    working_set_words: 1 << 13,
                    ..base
                },
            ),
            mk(
                "mpeg2_dec",
                WorkloadParams {
                    seed: 0x3e62,
                    kernels: 3,
                    dep_chain_bias: 0.4,
                    mem_fraction: 0.4,
                    working_set_words: 1 << 13,
                    ..base
                },
            ),
            // Elliptic-curve crypto: xor/shift chains, very serial.
            mk(
                "pegwit",
                WorkloadParams {
                    seed: 0xe691,
                    kernels: 2,
                    dep_chain_bias: 0.9,
                    mem_fraction: 0.18,
                    complex_fraction: 0.1,
                    ..base
                },
            ),
            // Speech recognition front-end: FP filters.
            mk(
                "rasta",
                WorkloadParams {
                    seed: 0x4a57,
                    fp_fraction: 0.45,
                    complex_fraction: 0.12,
                    dep_chain_bias: 0.7,
                    ..base
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_the_paper() {
        assert_eq!(Benchmark::spec_all().len(), 12);
        assert_eq!(Benchmark::mediabench().len(), 14);
        assert_eq!(Benchmark::spec_focus().len(), 6);
    }

    #[test]
    fn focus_names_match_table6() {
        let names: Vec<&str> = Benchmark::spec_focus().iter().map(|b| b.name).collect();
        assert_eq!(
            names,
            vec!["bzip2", "eon", "gzip", "perlbmk", "twolf", "vpr"]
        );
    }

    #[test]
    fn all_benchmarks_generate_valid_programs() {
        for b in Benchmark::spec_all()
            .into_iter()
            .chain(Benchmark::mediabench())
        {
            let p = b.program();
            assert!(p.len() > 50, "{} too small", b.name);
            // And they run without executor errors.
            let mut ex = ctcp_isa::Executor::new(&p);
            for _ in 0..20_000 {
                if ex.next().is_none() {
                    break;
                }
            }
            assert!(ex.error().is_none(), "{} run error", b.name);
            assert!(!ex.halted(), "{} halted prematurely", b.name);
        }
    }

    #[test]
    fn by_name_finds_both_suites() {
        assert!(Benchmark::by_name("bzip2").is_some());
        assert!(Benchmark::by_name("mesa").is_some());
        assert!(Benchmark::by_name("nonesuch").is_none());
    }

    #[test]
    fn seeds_are_unique() {
        let mut seeds: Vec<u64> = Benchmark::spec_all()
            .into_iter()
            .chain(Benchmark::mediabench())
            .map(|b| b.params().seed)
            .collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 26);
    }
}
