//! A small vendored PCG32 generator.
//!
//! The workspace builds fully offline, so the program generator cannot
//! depend on the `rand` crate. This is the standard PCG-XSH-RR 64/32
//! generator (O'Neill, 2014) seeded through SplitMix64: one 64-bit
//! multiply and a rotate per output, a 2^64 period per stream, and —
//! the property the generator actually relies on — a stream that is a
//! pure function of the seed, on every platform, forever.
//!
//! Streams are *not* compatible with the `rand::SmallRng` streams the
//! seed revision used; programs generated for a given seed changed once
//! when this module was introduced and are stable from then on.

/// PCG-XSH-RR 64/32: 64 bits of state, 32-bit outputs.
#[derive(Debug, Clone)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MUL: u64 = 6364136223846793005;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Pcg32 {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Pcg32 {
        let mut sm = seed;
        let init_state = splitmix64(&mut sm);
        let inc = splitmix64(&mut sm) | 1; // stream selector must be odd
        let mut rng = Pcg32 { state: 0, inc };
        rng.state = init_state.wrapping_add(inc);
        rng.next_u32(); // advance once so state depends on both words
        rng
    }

    /// The next 32 uniform bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MUL).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// The next 64 uniform bits (two 32-bit outputs).
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn chance(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the conventional u64 -> f64 mapping.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// A uniform integer in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        // Lemire's multiply-shift; the bias over a 64-bit draw is
        // immeasurable for the small spans used here.
        let scaled = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        lo.wrapping_add(scaled as i64)
    }

    /// A uniform index in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range(0, n as i64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = Pcg32::seed_from_u64(42);
        let mut b = Pcg32::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn first_outputs_are_pinned() {
        // Guards the stream against accidental algorithm changes: any
        // edit to seeding or output permutation changes every generated
        // workload, which invalidates the result store and recalibrates
        // every experiment.
        let mut r = Pcg32::seed_from_u64(1);
        let first: Vec<u32> = (0..4).map(|_| r.next_u32()).collect();
        let mut again = Pcg32::seed_from_u64(1);
        let repeat: Vec<u32> = (0..4).map(|_| again.next_u32()).collect();
        assert_eq!(first, repeat);
        // Different seeds must diverge immediately.
        let mut other = Pcg32::seed_from_u64(2);
        assert_ne!(first[0], other.next_u32());
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Pcg32::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.range(-64, 64);
            assert!((-64..64).contains(&v));
            let i = r.index(12);
            assert!(i < 12);
        }
    }

    #[test]
    fn range_covers_small_spans() {
        let mut r = Pcg32::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some values never drawn: {seen:?}");
    }

    #[test]
    fn chance_tracks_probability() {
        let mut r = Pcg32::seed_from_u64(11);
        let n = 20_000;
        let hits = (0..n).filter(|_| r.chance(0.25)).count();
        let rate = hits as f64 / n as f64;
        assert!((0.22..0.28).contains(&rate), "rate {rate}");
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
