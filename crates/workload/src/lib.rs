//! # Synthetic benchmark generators
//!
//! The paper evaluates on precompiled Alpha binaries of SPEC CINT2000
//! (MinneSPEC inputs) and 14 MediaBench programs. Those binaries are not
//! reproducible here, so this crate generates *synthetic* TRISC programs
//! whose dynamic behaviour mimics each workload class: dependency-chain
//! shape, branch predictability, memory footprint and access pattern,
//! instruction mix (integer / complex / FP / memory), call and indirect
//! dispatch rates.
//!
//! Cluster-assignment quality depends on exactly these properties — the
//! mix of intra- vs inter-trace dependencies, producer stability, and
//! forwarding criticality — so the generators preserve the behaviours the
//! paper's evaluation exercises, even though absolute IPC differs from
//! the original testbed (see DESIGN.md for the substitution argument).
//!
//! ## Example
//!
//! ```
//! use ctcp_workload::Benchmark;
//!
//! let bench = Benchmark::spec_focus()[0]; // bzip2-class workload
//! let program = bench.program();
//! assert!(program.len() > 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod params;
pub mod rng;
mod suites;

pub use gen::generate;
pub use params::WorkloadParams;
pub use rng::Pcg32;
pub use suites::{Benchmark, Suite};
