//! The program generator.

use crate::rng::Pcg32;
use crate::WorkloadParams;
use ctcp_isa::{Label, Program, ProgramBuilder, Reg};

/// Base address of the generated program's working set.
const WS_BASE: i64 = 0x10_0000;
/// Base address of the indirect-dispatch jump table.
const TABLE_BASE: i64 = 0x8_0000;
/// Maximum nodes initialised in the pointer-chase chain.
const MAX_CHAIN_NODES: i64 = 2048;
/// Outer-loop iteration bound (effectively infinite; simulations truncate
/// by instruction count).
const OUTER_ITERS: i64 = 1 << 30;

// Register conventions inside generated code.
const DATA_REGS: [Reg; 12] = [
    Reg::R1,
    Reg::R2,
    Reg::R3,
    Reg::R4,
    Reg::R5,
    Reg::R6,
    Reg::R7,
    Reg::R8,
    Reg::R22,
    Reg::R23,
    Reg::R24,
    Reg::R25,
];
const RNG_REG: Reg = Reg::R9; // xorshift state
const BASE_REG: Reg = Reg::R10; // working-set base
const CHASE_REG: Reg = Reg::R11; // pointer-chase cursor
const TRIP_REG: Reg = Reg::R12; // inner loop counter
const OUTER_REG: Reg = Reg::R13; // outer loop counter
const TABLE_REG: Reg = Reg::R14; // dispatch table base
const T0: Reg = Reg::R15; // scratch
const T1: Reg = Reg::R16; // scratch
const T2: Reg = Reg::R17; // scratch
/// Long-lived value registers: written once per outer-loop iteration, so
/// reads almost always come from the register file.
const STABLE_REGS: [Reg; 4] = [Reg::R18, Reg::R19, Reg::R20, Reg::R21];

/// Generates a program from `params` (deterministic in `params.seed`).
///
/// # Panics
///
/// Panics if the parameters fail [`WorkloadParams::validate`].
pub fn generate(params: &WorkloadParams) -> Program {
    params.validate();
    let mut g = Gen {
        b: ProgramBuilder::new(),
        rng: Pcg32::seed_from_u64(params.seed ^ 0x5DEECE66D),
        p: *params,
        next_data: 0,
        chains: vec![None; params.ilp_chains],
        cur_chain: 0,
        last_fp_dest: None,
    };
    g.emit_program();
    g.b.build()
}

struct Gen {
    b: ProgramBuilder,
    rng: Pcg32,
    p: WorkloadParams,
    next_data: usize,
    /// Last destination of each interleaved dependency chain.
    chains: Vec<Option<Reg>>,
    /// Chain the next operation extends (round-robin).
    cur_chain: usize,
    last_fp_dest: Option<Reg>,
}

impl Gen {
    fn emit_program(&mut self) {
        self.emit_init();

        let kernel_labels: Vec<Label> = (0..self.p.kernels).map(|_| self.b.label()).collect();

        // Main loop.
        self.b.movi(OUTER_REG, 0);
        let main_top = self.b.here();
        // Refresh the long-lived registers once per outer iteration.
        for (i, r) in STABLE_REGS.iter().enumerate() {
            self.b.addi(*r, OUTER_REG, 0x40 + (i as i64) * 0x11);
        }
        if self.p.use_calls {
            for &k in &kernel_labels {
                self.b.call(k);
            }
        } else {
            for i in 0..self.p.kernels {
                self.emit_kernel_body(i);
            }
        }
        self.b.addi(OUTER_REG, OUTER_REG, 1);
        self.b.movi(T0, OUTER_ITERS);
        self.b.blt(OUTER_REG, T0, main_top);
        self.b.halt();

        // Kernel functions (only reachable via call).
        if self.p.use_calls {
            for (i, &k) in kernel_labels.iter().enumerate() {
                self.b.bind(k);
                self.emit_kernel_body(i);
                self.b.ret();
            }
        } else {
            // Labels must still be bound; they are unused.
            for &k in &kernel_labels {
                self.b.bind(k);
            }
            self.b.halt();
        }
    }

    /// Initialisation: xorshift seed, pointer-chase chain, dispatch table.
    fn emit_init(&mut self) {
        let seed = (self.rng.next_u32() as i64) | 1;
        self.b.movi(RNG_REG, seed);
        self.b.movi(BASE_REG, WS_BASE);

        // Pointer-chase chain through the lower half of the working set:
        // node_i at BASE + ((i * stride) & half_mask) * 8, closed into a
        // cycle.
        let half_words = (self.p.working_set_words / 2).max(2) as i64;
        let nodes = half_words.min(MAX_CHAIN_NODES);
        let stride = ((half_words / 3) | 1).max(1);
        let mask = half_words - 1;

        self.b.movi(Reg::R1, 0); // i
        self.b.movi(Reg::R2, nodes);
        self.b.movi(Reg::R3, WS_BASE); // cur = node_0
        self.b.movi(Reg::R5, stride);
        let init_top = self.b.here();
        self.b.addi(Reg::R4, Reg::R1, 1);
        self.b.mul(Reg::R4, Reg::R4, Reg::R5);
        self.b.andi(Reg::R4, Reg::R4, mask);
        self.b.slli(Reg::R4, Reg::R4, 3);
        self.b.add(Reg::R4, Reg::R4, BASE_REG);
        self.b.st(Reg::R4, Reg::R3, 0); // next pointer
        self.b.mov(Reg::R3, Reg::R4);
        self.b.addi(Reg::R1, Reg::R1, 1);
        self.b.blt(Reg::R1, Reg::R2, init_top);
        // Close the cycle.
        self.b.st(BASE_REG, Reg::R3, 0);
        self.b.movi(CHASE_REG, WS_BASE);

        // Data registers start with distinct values.
        for (i, r) in DATA_REGS.iter().enumerate() {
            self.b.movi(*r, (i as i64 + 3) * 0x12345);
        }
        // FP registers seeded from integers.
        for i in 0..4 {
            self.b.itof(Reg::fp(i), DATA_REGS[i as usize]);
        }

        // Dispatch table (if any) is filled by each kernel's own handler
        // labels; reserve the base register here.
        self.b.movi(TABLE_REG, TABLE_BASE);
    }

    /// One kernel: an inner loop whose body is `blocks_per_kernel` basic
    /// blocks, optionally entered through an indirect dispatch.
    fn emit_kernel_body(&mut self, kernel_idx: usize) {
        let trip = self.rng.range(
            i64::from(self.p.trip_count.0),
            i64::from(self.p.trip_count.1) + 1,
        );

        // Indirect dispatch setup: fill this kernel's slice of the jump
        // table with handler addresses (done once per kernel invocation;
        // cheap and keeps the generator simple).
        let dispatch = self.p.dispatch_targets;
        let handler_labels: Vec<Label> = match dispatch {
            Some(k) => (0..k).map(|_| self.b.label()).collect(),
            None => Vec::new(),
        };
        if let Some(k) = dispatch {
            let table_off = (kernel_idx * k * 8) as i64;
            for (j, &h) in handler_labels.iter().enumerate() {
                self.b.movi_label(T0, h);
                self.b.st(T0, TABLE_REG, table_off + (j * 8) as i64);
            }
        }

        self.b.movi(TRIP_REG, trip);
        let loop_top = self.b.here();

        if let Some(k) = dispatch {
            // idx = rng & (k-1); target = table[kernel][idx]; jr target
            self.emit_xorshift();
            self.b.andi(T0, RNG_REG, (k - 1) as i64);
            self.b.slli(T0, T0, 3);
            self.b.add(T0, T0, TABLE_REG);
            self.b.ld(T1, T0, (kernel_idx * k * 8) as i64);
            self.b.jr(T1);
            let join = self.b.label();
            for &h in &handler_labels {
                self.b.bind(h);
                self.emit_block(false);
                self.b.jmp(join);
            }
            self.b.bind(join);
        }

        for blk in 0..self.p.blocks_per_kernel {
            let last = blk + 1 == self.p.blocks_per_kernel;
            self.emit_block(!last);
        }

        self.b.addi(TRIP_REG, TRIP_REG, -1);
        self.b.bne(TRIP_REG, Reg::ZERO, loop_top);
    }

    /// A basic block of operations, optionally terminated by a forward
    /// conditional branch over a short "then" region.
    fn emit_block(&mut self, with_terminator: bool) {
        let (lo, hi) = self.p.ops_per_block;
        let n = self.rng.range(lo as i64, hi as i64 + 1);
        for _ in 0..n {
            self.emit_op();
        }
        if !with_terminator {
            return;
        }
        if self.rng.chance(self.p.unpredictable_branch_fraction) {
            self.emit_data_dependent_branch();
        } else {
            self.emit_structured_branch();
        }
    }

    /// A data-dependent forward branch: taken with `taken_prob`, driven by
    /// the xorshift state, so it is hard to predict.
    fn emit_data_dependent_branch(&mut self) {
        self.emit_xorshift();
        // t = ((rng >> 4) & 255) < threshold  (threshold = taken_prob*256)
        let threshold = ((1.0 - self.p.taken_prob) * 256.0).round() as i64;
        self.b.srli(T0, RNG_REG, 4);
        self.b.andi(T0, T0, 255);
        self.b.movi(T1, threshold.clamp(0, 256));
        self.b.slt(T0, T0, T1);
        let skip = self.b.label();
        self.b.beq(T0, Reg::ZERO, skip);
        // A short "then" region.
        for _ in 0..self.rng.range(1, 4) {
            self.emit_op();
        }
        self.b.bind(skip);
    }

    /// A structured (predictable) branch: either strongly biased on data
    /// (rarely taken) or periodic with a long period, so two-bit counters
    /// and history predictors do well on it.
    fn emit_structured_branch(&mut self) {
        if self.rng.chance(0.6) {
            // Rarely-taken data test (~4%).
            self.emit_xorshift();
            self.b.srli(T0, RNG_REG, 9);
            self.b.andi(T0, T0, 255);
            self.b.movi(T1, 10);
            self.b.slt(T0, T0, T1);
            let skip = self.b.label();
            self.b.beq(T0, Reg::ZERO, skip);
            for _ in 0..self.rng.range(1, 4) {
                self.emit_op();
            }
            self.b.bind(skip);
        } else {
            let period = [8i64, 16][self.rng.index(2)];
            self.b.andi(T0, TRIP_REG, period - 1);
            let skip = self.b.label();
            self.b.bne(T0, Reg::ZERO, skip);
            for _ in 0..self.rng.range(1, 4) {
                self.emit_op();
            }
            self.b.bind(skip);
        }
    }

    /// xorshift64 step on the RNG register (three simple-op pairs).
    fn emit_xorshift(&mut self) {
        self.b.slli(T2, RNG_REG, 13);
        self.b.xor(RNG_REG, RNG_REG, T2);
        self.b.srli(T2, RNG_REG, 7);
        self.b.xor(RNG_REG, RNG_REG, T2);
        self.b.slli(T2, RNG_REG, 17);
        self.b.xor(RNG_REG, RNG_REG, T2);
    }

    fn pick_data_reg(&mut self) -> Reg {
        DATA_REGS[self.rng.index(DATA_REGS.len())]
    }

    fn next_dest(&mut self) -> Reg {
        let r = DATA_REGS[self.next_data];
        self.next_data = (self.next_data + 1) % DATA_REGS.len();
        r
    }

    /// Records a produced value as the tail of the current chain.
    fn note_dest(&mut self, d: Reg) {
        self.chains[self.cur_chain] = Some(d);
    }

    /// A dependent source: the tail of the current chain. Because the
    /// generator round-robins over `ilp_chains` independent chains (like
    /// a compiler scheduling for ILP), a chain's links are spaced several
    /// instructions apart in program order.
    fn chain_src(&mut self) -> Reg {
        if self.rng.chance(self.p.dep_chain_bias) {
            self.chains[self.cur_chain].unwrap_or(RNG_REG)
        } else if self.rng.chance(self.p.stable_src_fraction) {
            STABLE_REGS[self.rng.index(STABLE_REGS.len())]
        } else {
            self.pick_data_reg()
        }
    }

    /// One operation, drawn from the configured mix. Operations rotate
    /// round-robin over the interleaved dependency chains.
    fn emit_op(&mut self) {
        self.cur_chain = (self.cur_chain + 1) % self.chains.len();
        if self.rng.chance(self.p.mem_fraction) {
            self.emit_mem_op();
        } else if self.rng.chance(self.p.fp_fraction) {
            self.emit_fp_op();
        } else if self.rng.chance(self.p.complex_fraction) {
            self.emit_complex_op();
        } else {
            self.emit_simple_op();
        }
    }

    /// A second operand: stable registers with the configured bias,
    /// otherwise a rotating data register.
    fn other_src(&mut self) -> Reg {
        if self.rng.chance(self.p.stable_src_fraction) {
            STABLE_REGS[self.rng.index(STABLE_REGS.len())]
        } else {
            self.pick_data_reg()
        }
    }

    fn emit_simple_op(&mut self) {
        let d = self.next_dest();
        let a = self.chain_src();
        let b = self.other_src();
        match self.rng.range(0, 7) {
            0 => self.b.add(d, a, b),
            1 => self.b.sub(d, a, b),
            2 => self.b.xor(d, a, b),
            3 => self.b.and(d, a, b),
            4 => self.b.or(d, a, b),
            5 => {
                let imm = self.rng.range(-64, 64);
                self.b.addi(d, a, imm)
            }
            _ => {
                let sh = self.rng.range(1, 8);
                self.b.slli(d, a, sh)
            }
        };
        self.note_dest(d);
    }

    fn emit_complex_op(&mut self) {
        let d = self.next_dest();
        let a = self.chain_src();
        let b = self.other_src();
        if self.rng.chance(0.03) {
            self.b.div(d, a, b);
        } else {
            self.b.mul(d, a, b);
        }
        self.note_dest(d);
    }

    fn emit_fp_op(&mut self) {
        let d = Reg::fp(self.rng.index(8) as u8);
        let chain = self.rng.chance(self.p.dep_chain_bias);
        let a = self
            .last_fp_dest
            .filter(|_| chain)
            .unwrap_or(Reg::fp(self.rng.index(4) as u8));
        let b = Reg::fp(self.rng.index(4) as u8);
        match self.rng.range(0, 5) {
            0 => self.b.fadd(d, a, b),
            1 => self.b.fsub(d, a, b),
            2 => self.b.fmul(d, a, b),
            3 => self.b.fadd(d, a, b),
            _ => {
                // Couple the integer and FP domains.
                let i = self.chain_src();
                self.b.itof(d, i)
            }
        };
        self.last_fp_dest = Some(d);
    }

    fn emit_mem_op(&mut self) {
        let ws_bytes = (self.p.working_set_words * 8) as i64;
        let half = ws_bytes / 2;
        if self.rng.chance(self.p.store_fraction) {
            // Stores stay in the upper half so the chase chain survives.
            let v = self.chain_src();
            if self.rng.chance(self.p.irregular_index_fraction) {
                self.b
                    .andi(T0, RNG_REG, self.p.working_set_words as i64 / 2 - 1);
                self.b.slli(T0, T0, 3);
                self.b.add(T0, T0, BASE_REG);
                self.b.st(v, T0, half);
            } else {
                let off = self.rng.range(0, half / 8) * 8;
                self.b.st(v, BASE_REG, half + off);
            }
        } else if self.rng.chance(self.p.chase_fraction) {
            // Pointer chase: the load feeds the next load's address.
            self.b.ld(CHASE_REG, CHASE_REG, 0);
            self.note_dest(CHASE_REG);
        } else {
            let d = self.next_dest();
            if self.rng.chance(self.p.irregular_index_fraction) {
                self.b
                    .andi(T0, RNG_REG, self.p.working_set_words as i64 - 1);
                self.b.slli(T0, T0, 3);
                self.b.add(T0, T0, BASE_REG);
                self.b.ld(d, T0, 0);
            } else {
                let off = self.rng.range(0, ws_bytes / 8) * 8;
                self.b.ld(d, BASE_REG, off);
            }
            self.note_dest(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctcp_isa::Executor;

    fn run_count(p: &WorkloadParams, n: usize) -> usize {
        let prog = generate(p);
        let mut ex = Executor::new(&prog);
        let mut count = 0;
        for _ in 0..n {
            if ex.next().is_none() {
                break;
            }
            count += 1;
        }
        assert!(ex.error().is_none(), "executor error: {:?}", ex.error());
        count
    }

    #[test]
    fn default_program_runs_long() {
        let n = run_count(&WorkloadParams::default(), 100_000);
        assert_eq!(n, 100_000, "program should not halt early");
    }

    #[test]
    fn generation_is_deterministic() {
        let p = WorkloadParams::default();
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a.instructions(), b.instructions());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&WorkloadParams::default());
        let b = generate(&WorkloadParams {
            seed: 99,
            ..WorkloadParams::default()
        });
        assert_ne!(a.instructions(), b.instructions());
    }

    #[test]
    fn dispatch_workload_executes_indirect_jumps() {
        let p = WorkloadParams {
            dispatch_targets: Some(8),
            ..WorkloadParams::default()
        };
        let prog = generate(&p);
        let mut ex = Executor::new(&prog);
        let mut indirect = 0;
        for d in ex.by_ref().take(50_000) {
            if d.op() == ctcp_isa::Opcode::Jr {
                indirect += 1;
            }
        }
        assert!(
            indirect > 10,
            "expected indirect dispatches, saw {indirect}"
        );
    }

    #[test]
    fn pointer_chase_workload_issues_dependent_loads() {
        let p = WorkloadParams {
            chase_fraction: 0.8,
            mem_fraction: 0.5,
            ..WorkloadParams::default()
        };
        let prog = generate(&p);
        let ex = Executor::new(&prog);
        let mut chase_loads = 0;
        for d in ex.take(50_000) {
            if d.op() == ctcp_isa::Opcode::Ld
                && d.inst.dest == Some(CHASE_REG)
                && d.inst.src1 == Some(CHASE_REG)
            {
                chase_loads += 1;
                // The cursor must stay inside the working set.
                let addr = d.mem_addr.unwrap();
                assert!(addr >= WS_BASE as u64);
            }
        }
        assert!(chase_loads > 100, "saw only {chase_loads} chase loads");
    }

    #[test]
    fn fp_workload_contains_fp_ops() {
        let p = WorkloadParams {
            fp_fraction: 0.6,
            ..WorkloadParams::default()
        };
        let prog = generate(&p);
        let fp = prog
            .instructions()
            .iter()
            .filter(|i| {
                matches!(
                    i.class(),
                    ctcp_isa::OpClass::FpBasic | ctcp_isa::OpClass::FpComplex
                )
            })
            .count();
        assert!(fp > 20, "expected FP instructions, found {fp}");
    }

    #[test]
    fn taken_prob_shapes_branch_behaviour() {
        let rate = |tp: f64| -> f64 {
            let p = WorkloadParams {
                unpredictable_branch_fraction: 1.0,
                taken_prob: tp,
                seed: 7,
                ..WorkloadParams::default()
            };
            let prog = generate(&p);
            let ex = Executor::new(&prog);
            let (mut taken, mut total) = (0u64, 0u64);
            for d in ex.take(80_000) {
                if d.op() == ctcp_isa::Opcode::Beq {
                    total += 1;
                    if d.taken() {
                        taken += 1;
                    }
                }
            }
            assert!(total > 100);
            taken as f64 / total as f64
        };
        // The skip branch is taken with probability ~taken_prob.
        let low = rate(0.2);
        let high = rate(0.8);
        assert!(
            high > low + 0.3,
            "taken rate should rise with taken_prob: {low} vs {high}"
        );
    }
}
