//! Workload parameterisation.

/// Knobs controlling the character of a generated program.
///
/// The defaults describe a bland integer workload; the presets in
/// [`crate::Benchmark`] tune them per benchmark class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadParams {
    /// RNG seed: same seed, same program.
    pub seed: u64,
    /// Number of distinct inner-loop kernels (static code footprint).
    pub kernels: usize,
    /// Basic blocks per kernel body.
    pub blocks_per_kernel: usize,
    /// Arithmetic/memory operations per basic block (min, max).
    pub ops_per_block: (usize, usize),
    /// Inner-loop trip count range per kernel invocation.
    pub trip_count: (u32, u32),
    /// Probability that a block terminator is a *data-dependent* branch
    /// (hard to predict) rather than a well-structured one.
    pub unpredictable_branch_fraction: f64,
    /// Taken probability of data-dependent branches.
    pub taken_prob: f64,
    /// Fraction of ops that touch memory.
    pub mem_fraction: f64,
    /// Of memory ops, the fraction that are stores.
    pub store_fraction: f64,
    /// Of loads, the fraction that pointer-chase (load feeds next
    /// address).
    pub chase_fraction: f64,
    /// Of loads/stores, the fraction using data-dependent (irregular)
    /// indices instead of static offsets.
    pub irregular_index_fraction: f64,
    /// Working-set size in 8-byte words (power of two). Determines cache
    /// behaviour.
    pub working_set_words: u64,
    /// Fraction of arithmetic ops that are floating point.
    pub fp_fraction: f64,
    /// Fraction of arithmetic ops that are complex (multiply/divide).
    pub complex_fraction: f64,
    /// Probability an op's input comes from a recently produced value
    /// (short dependency distance / long chains) rather than a stable
    /// loop-carried register.
    pub dep_chain_bias: f64,
    /// Number of independent dependency chains interleaved by the
    /// "compiler schedule" (2–6). Real compiled code interleaves chains
    /// for ILP, so a chain's links are spaced `ilp_chains` instructions
    /// apart — which is what makes slot-based baseline steering split
    /// chains across clusters (the paper's base sees only ~40%%
    /// intra-cluster forwarding).
    pub ilp_chains: usize,
    /// Of non-chained inputs, the fraction drawn from long-lived
    /// registers (loop invariants, bases): these producers have usually
    /// retired, so the value reads from the register file — this knob
    /// shapes the paper's Figure 4 "From RF" share.
    pub stable_src_fraction: f64,
    /// Invoke kernels through `call`/`ret` (vs inline jumps).
    pub use_calls: bool,
    /// If set, each kernel iteration dispatches through an indirect jump
    /// table of this many targets (interpreter-like workloads).
    pub dispatch_targets: Option<usize>,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            seed: 1,
            kernels: 4,
            blocks_per_kernel: 4,
            ops_per_block: (3, 7),
            trip_count: (8, 32),
            unpredictable_branch_fraction: 0.2,
            taken_prob: 0.5,
            mem_fraction: 0.3,
            store_fraction: 0.35,
            chase_fraction: 0.0,
            irregular_index_fraction: 0.2,
            working_set_words: 1 << 12, // 32 KB
            fp_fraction: 0.0,
            complex_fraction: 0.05,
            dep_chain_bias: 0.6,
            ilp_chains: 3,
            stable_src_fraction: 0.45,
            use_calls: true,
            dispatch_targets: None,
        }
    }
}

impl WorkloadParams {
    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if a fraction is outside `[0, 1]`, a range is inverted, or
    /// the working set is not a power of two.
    pub fn validate(&self) {
        for (name, f) in [
            (
                "unpredictable_branch_fraction",
                self.unpredictable_branch_fraction,
            ),
            ("taken_prob", self.taken_prob),
            ("mem_fraction", self.mem_fraction),
            ("store_fraction", self.store_fraction),
            ("chase_fraction", self.chase_fraction),
            ("irregular_index_fraction", self.irregular_index_fraction),
            ("fp_fraction", self.fp_fraction),
            ("complex_fraction", self.complex_fraction),
            ("dep_chain_bias", self.dep_chain_bias),
            ("stable_src_fraction", self.stable_src_fraction),
        ] {
            assert!((0.0..=1.0).contains(&f), "{name} out of range: {f}");
        }
        assert!(self.kernels > 0 && self.blocks_per_kernel > 0);
        assert!(
            (1..=8).contains(&self.ilp_chains),
            "ilp_chains must be in 1..=8"
        );
        assert!(self.ops_per_block.0 >= 1 && self.ops_per_block.0 <= self.ops_per_block.1);
        assert!(self.trip_count.0 >= 1 && self.trip_count.0 <= self.trip_count.1);
        assert!(
            self.working_set_words.is_power_of_two(),
            "working set must be a power of two"
        );
        if let Some(k) = self.dispatch_targets {
            assert!(
                k.is_power_of_two() && k >= 2,
                "dispatch table must be 2^n >= 2"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_validate() {
        WorkloadParams::default().validate();
    }

    #[test]
    #[should_panic]
    fn bad_fraction_panics() {
        let p = WorkloadParams {
            mem_fraction: 1.5,
            ..WorkloadParams::default()
        };
        p.validate();
    }

    #[test]
    #[should_panic]
    fn non_pow2_working_set_panics() {
        let p = WorkloadParams {
            working_set_words: 1000,
            ..WorkloadParams::default()
        };
        p.validate();
    }
}
