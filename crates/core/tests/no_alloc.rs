//! Steady-state allocation audit for the event-driven scheduler: after
//! a warmup period (which grows every scratch buffer, queue, and pool
//! to its high-water mark), `tick_into` — dispatch, complete, select,
//! retire — must perform zero heap allocations per cycle.

use ctcp_core::{Engine, EngineConfig, FetchedInst, SteeringMode, TickResult};
use ctcp_isa::{Instruction, Opcode, Reg};
use ctcp_tracecache::ProfileFields;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Counts every allocation (and reallocation) passing through the
/// global allocator; frees are not interesting here.
struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the counter has no effect on
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn group_of_16(base_seq: u64, group: u64) -> [FetchedInst; 16] {
    std::array::from_fn(|i| {
        let seq = base_seq + i as u64;
        // Dense read-after-write traffic: each dest register is consumed
        // by the next couple of instructions, so producer wakeup lists
        // (and the ready queues they feed) are exercised every cycle.
        let inst = Instruction::new(
            Opcode::Add,
            Some(Reg::int((i % 8) as u8)),
            Some(Reg::int(((i + 1) % 8) as u8)),
            Some(Reg::int(((i + 3) % 8) as u8)),
            0,
        );
        FetchedInst {
            seq,
            pc: 0x1000 + seq * 4,
            index: seq as u32,
            inst,
            mem_addr: None,
            taken: None,
            slot: i as u8,
            group,
            from_tc: false,
            tc_loc: None,
            profile: ProfileFields::default(),
            mispredicted: false,
        }
    })
}

#[test]
fn steady_state_tick_does_not_allocate() {
    let mut engine = Engine::new(EngineConfig::default(), SteeringMode::Slot);
    let mut out = TickResult::default();
    let mut seq = 0u64;
    let mut group_id = 0u64;

    let mut run = |engine: &mut Engine, cycles: u64, start: u64| -> u64 {
        let mut tick_allocs = 0u64;
        for now in start..start + cycles {
            if engine.can_accept(16) {
                engine.accept(&group_of_16(seq, group_id), now);
                seq += 16;
                group_id += 1;
            }
            let before = ALLOCS.load(Ordering::Relaxed);
            engine.tick_into(now, &mut out);
            tick_allocs += ALLOCS.load(Ordering::Relaxed) - before;
        }
        tick_allocs
    };

    // Warmup: grow every queue, wheel slot, scratch buffer, and the
    // consumer-list pool to steady-state capacity.
    run(&mut engine, 3_000, 0);
    let measured = run(&mut engine, 2_000, 3_000);
    assert!(
        engine.stats().retired > 4_000,
        "pipeline must actually be busy (retired {})",
        engine.stats().retired
    );
    assert_eq!(
        measured, 0,
        "tick/complete/select/retire allocated {measured} times over 2000 steady-state cycles"
    );
}
