//! Behavioural tests of the execution engine: functional-unit blocking,
//! memory ordering, interconnect shapes, and steering corner cases.

use ctcp_core::{ClusterGeometry, Engine, EngineConfig, FetchedInst, SteeringMode, Topology};
use ctcp_isa::{Instruction, Opcode, Reg};
use ctcp_tracecache::ProfileFields;

fn fetched(seq: u64, inst: Instruction, slot: u8) -> FetchedInst {
    FetchedInst {
        seq,
        pc: 0x1000 + seq * 4,
        index: seq as u32,
        inst,
        mem_addr: None,
        taken: None,
        slot,
        group: 0,
        from_tc: false,
        tc_loc: None,
        profile: ProfileFields::default(),
        mispredicted: false,
    }
}

fn drain(engine: &mut Engine, start: u64) -> (Vec<ctcp_core::RetiredInst>, u64) {
    let mut retired = Vec::new();
    let mut now = start;
    for _ in 0..100_000 {
        let r = engine.tick(now);
        retired.extend(r.retired);
        now += 1;
        if engine.in_flight() == 0 {
            break;
        }
    }
    (retired, now)
}

fn alu(d: Reg, a: Reg, b: Reg) -> Instruction {
    Instruction::new(Opcode::Add, Some(d), Some(a), Some(b), 0)
}

#[test]
fn divide_blocks_its_unit_but_not_the_cluster() {
    // Two divides on the same cluster serialise on the single CPX unit;
    // an independent add on the same cluster proceeds immediately.
    let mut e = Engine::new(EngineConfig::default(), SteeringMode::Slot);
    let div = |seq, d: u8| {
        fetched(
            seq,
            Instruction::new(
                Opcode::Div,
                Some(Reg::int(d)),
                Some(Reg::R9),
                Some(Reg::R10),
                0,
            ),
            0,
        )
    };
    let group = vec![
        div(0, 1),
        div(1, 2),
        fetched(2, alu(Reg::R3, Reg::R9, Reg::R10), 1),
    ];
    e.accept(&group, 0);
    let (retired, _) = drain(&mut e, 1);
    // The add completes long before the second divide.
    let t_add = retired.iter().find(|r| r.seq == 2).unwrap().retire_cycle;
    let t_div2 = retired.iter().find(|r| r.seq == 1).unwrap().retire_cycle;
    // In-order retire: both retire when div1 does, but div1's completion
    // dominates; check instead via cycle count: two 20-cycle blocking
    // divides need ~40 cycles end to end.
    assert!(t_div2 >= 40, "second divide retired at {t_div2}");
    assert!(t_add <= t_div2);
}

#[test]
fn ring_topology_shortens_end_to_end_forwarding() {
    let run = |topology: Topology| -> u64 {
        let mut cfg = EngineConfig::default();
        cfg.geometry.topology = topology;
        let mut e = Engine::new(cfg, SteeringMode::Slot);
        // Producer on cluster 0, consumer on cluster 3.
        let group = vec![
            fetched(0, alu(Reg::R1, Reg::R9, Reg::R10), 0),
            fetched(1, alu(Reg::R2, Reg::R1, Reg::R10), 12),
        ];
        e.accept(&group, 0);
        let (retired, _) = drain(&mut e, 1);
        retired[1].retire_cycle
    };
    let linear = run(Topology::Linear);
    let ring = run(Topology::Ring);
    // Linear distance 3 (6 cycles), ring distance 1 (2 cycles).
    assert!(ring + 4 <= linear, "ring {ring} vs linear {linear}");
}

#[test]
fn loads_wait_for_older_store_addresses() {
    // Store 0's address depends on a long divide; the younger load to a
    // *different* address must still wait (no speculative
    // disambiguation).
    let mut e = Engine::new(EngineConfig::default(), SteeringMode::Slot);
    let div = Instruction::new(Opcode::Div, Some(Reg::R1), Some(Reg::R2), Some(Reg::R3), 0);
    let st = Instruction::new(Opcode::St, None, Some(Reg::R1), Some(Reg::R4), 0);
    let ld = Instruction::new(Opcode::Ld, Some(Reg::R5), Some(Reg::R6), None, 0);
    let mut fst = fetched(1, st, 4);
    fst.mem_addr = Some(0x1000);
    let mut fld = fetched(2, ld, 8);
    fld.mem_addr = Some(0x2000);
    e.accept(&[fetched(0, div, 0), fst, fld], 0);
    let (retired, _) = drain(&mut e, 1);
    // The load completes only after the divide (20 cycles) resolves the
    // store's address, even though its own address register was ready.
    assert!(retired[2].retire_cycle > 20);
}

#[test]
fn independent_loads_pipeline_through_one_mem_unit() {
    // Four independent loads on one cluster: the single MEM unit issues
    // one per cycle, so completion is staggered but far better than
    // serial cache latencies.
    let mut e = Engine::new(EngineConfig::default(), SteeringMode::Slot);
    let mut group = Vec::new();
    for i in 0..4u64 {
        let ld = Instruction::new(
            Opcode::Ld,
            Some(Reg::int(1 + i as u8)),
            Some(Reg::R9),
            None,
            0,
        );
        let mut f = fetched(i, ld, 0);
        f.mem_addr = Some(0x4000 + i * 8);
        group.push(f);
    }
    e.accept(&group, 0);
    let (retired, cycles) = drain(&mut e, 1);
    assert_eq!(retired.len(), 4);
    // Cold TLB (31) + L1 miss path (~75) dominates; pipelining means the
    // whole group finishes well under 4 full serial accesses.
    assert!(cycles < 160, "took {cycles} cycles");
}

#[test]
fn issue_time_balances_when_no_producers_exist() {
    let mut e = Engine::new(EngineConfig::default(), SteeringMode::IssueTime);
    let group: Vec<FetchedInst> = (0..16)
        .map(|i| fetched(i, alu(Reg::int((i % 8) as u8), Reg::R20, Reg::R21), 0))
        .collect();
    e.accept(&group, 0);
    let (retired, _) = drain(&mut e, 1);
    let mut counts = [0usize; 4];
    for r in &retired {
        counts[r.cluster as usize] += 1;
    }
    assert_eq!(counts.iter().sum::<usize>(), 16);
    assert!(counts.iter().all(|&c| c == 4), "unbalanced: {counts:?}");
}

#[test]
fn issue_time_follows_the_late_producer() {
    // Consumer with two producers: a fast add (slot 0 -> cluster 0) and a
    // slow divide (slot 4 -> cluster 1). Steering should chase the
    // divide, the critical input.
    let mut e = Engine::new(EngineConfig::default(), SteeringMode::IssueTime);
    e.accept(
        &[
            fetched(0, alu(Reg::R1, Reg::R9, Reg::R10), 0),
            fetched(
                1,
                Instruction::new(Opcode::Div, Some(Reg::R2), Some(Reg::R9), Some(Reg::R10), 0),
                0,
            ),
        ],
        0,
    );
    // Let both steer; then send the consumer next cycle.
    e.tick(1);
    e.accept(&[fetched(2, alu(Reg::R3, Reg::R1, Reg::R2), 0)], 1);
    let div_cluster = {
        // Drain and inspect.
        let (retired, _) = drain(&mut e, 2);
        let div = retired.iter().find(|r| r.seq == 1).unwrap().cluster;
        let consumer = retired.iter().find(|r| r.seq == 2).unwrap().cluster;
        assert_eq!(consumer, div, "consumer should land with the slow producer");
        div
    };
    let _ = div_cluster;
}

#[test]
fn eight_cluster_geometry_works_end_to_end() {
    let cfg = EngineConfig {
        geometry: ClusterGeometry {
            clusters: 8,
            slots_per_cluster: 2,
            topology: Topology::Linear,
        },
        ..EngineConfig::default()
    };
    let mut e = Engine::new(cfg, SteeringMode::Slot);
    let group: Vec<FetchedInst> = (0..16)
        .map(|i| fetched(i, alu(Reg::int((i % 8) as u8), Reg::R20, Reg::R21), i as u8))
        .collect();
    e.accept(&group, 0);
    let (retired, _) = drain(&mut e, 1);
    assert_eq!(retired.len(), 16);
    for r in &retired {
        assert_eq!(u64::from(r.cluster), r.seq / 2);
    }
}

#[test]
fn fp_ops_use_fp_units_with_table7_latencies() {
    // A chain fsqrt -> fadd: 24-cycle sqrt then 2-cycle add.
    let mut e = Engine::new(EngineConfig::default(), SteeringMode::Slot);
    let sqrt = Instruction::new(Opcode::FSqrt, Some(Reg::fp(1)), Some(Reg::fp(0)), None, 0);
    let fadd = Instruction::new(
        Opcode::FAdd,
        Some(Reg::fp(2)),
        Some(Reg::fp(1)),
        Some(Reg::fp(0)),
        0,
    );
    e.accept(&[fetched(0, sqrt, 0), fetched(1, fadd, 1)], 0);
    let (retired, _) = drain(&mut e, 1);
    // RF ready at 2, sqrt completes ~26, fadd at ~28 (same cluster).
    let t = retired[1].retire_cycle;
    assert!((26..40).contains(&t), "fadd retired at {t}");
}

#[test]
fn store_forwarding_beats_the_cache() {
    let run = |forwarded: bool| -> u64 {
        let mut e = Engine::new(EngineConfig::default(), SteeringMode::Slot);
        let st = Instruction::new(Opcode::St, None, Some(Reg::R1), Some(Reg::R2), 0);
        let ld = Instruction::new(Opcode::Ld, Some(Reg::R3), Some(Reg::R1), None, 0);
        let mut fst = fetched(0, st, 0);
        fst.mem_addr = Some(0x7000);
        let mut fld = fetched(1, ld, 1);
        fld.mem_addr = Some(if forwarded { 0x7000 } else { 0x9000 });
        e.accept(&[fst, fld], 0);
        let (retired, _) = drain(&mut e, 1);
        retired[1].retire_cycle
    };
    let hit = run(true);
    let miss = run(false);
    assert!(hit < miss, "forwarded load {hit} vs cache load {miss}");
}

#[test]
fn wide_dependent_chain_is_execution_serial() {
    // A 32-long chain through one register must take >= 32 execute
    // cycles regardless of the 16-wide front end.
    let mut e = Engine::new(EngineConfig::default(), SteeringMode::Slot);
    let mut seq = 0u64;
    let mut now = 0u64;
    while seq < 32 {
        let mut group = Vec::new();
        for s in 0..16 {
            if seq >= 32 {
                break;
            }
            group.push(fetched(seq, alu(Reg::R1, Reg::R1, Reg::R2), s));
            seq += 1;
        }
        while !e.can_accept(group.len()) {
            e.tick(now);
            now += 1;
        }
        e.accept(&group, now);
    }
    let (_, end) = drain(&mut e, now + 1);
    assert!(end >= 32, "chain of 32 finished in {end} cycles");
}
