//! Forwarding statistics: everything Tables 2, 3, 8 and Figure 4 need.

use std::collections::HashMap;

/// Tracks, per static instruction, the last observed forwarding producer
/// of each source register, to measure producer repetition (Table 3).
#[derive(Debug, Default)]
pub struct ProducerHistory {
    last: HashMap<u64, [Option<u64>; 2]>,
    /// (same, total) per source, over all forwarded inputs.
    all: [(u64, u64); 2],
    /// (same, total) per source, over critical inter-trace inputs only.
    critical_inter: [(u64, u64); 2],
}

impl ProducerHistory {
    /// Records a forwarded input: consumer at `consumer_pc` source `src`
    /// (0 = RS1, 1 = RS2) received data from `producer_pc`.
    pub fn record(
        &mut self,
        consumer_pc: u64,
        src: usize,
        producer_pc: u64,
        critical: bool,
        inter_trace: bool,
    ) {
        let entry = self.last.entry(consumer_pc).or_default();
        if let Some(prev) = entry[src] {
            let same = prev == producer_pc;
            self.all[src].1 += 1;
            if same {
                self.all[src].0 += 1;
            }
            if critical && inter_trace {
                self.critical_inter[src].1 += 1;
                if same {
                    self.critical_inter[src].0 += 1;
                }
            }
        }
        entry[src] = Some(producer_pc);
    }

    /// Fraction of forwarded inputs whose producer repeated, per source
    /// (Table 3 columns "All Input RS1/RS2").
    pub fn repeat_rate_all(&self, src: usize) -> f64 {
        ratio(self.all[src])
    }

    /// Fraction of *critical inter-trace* inputs whose producer repeated
    /// (Table 3 columns "Critical Inter-trace RS1/RS2").
    pub fn repeat_rate_critical_inter(&self, src: usize) -> f64 {
        ratio(self.critical_inter[src])
    }
}

fn ratio((num, den): (u64, u64)) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Aggregate forwarding statistics collected as instructions begin
/// execution.
#[derive(Debug, Default, Clone, Copy)]
pub struct ForwardingStats {
    /// Retired instructions that had at least one register input.
    pub insts_with_inputs: u64,
    /// Critical input came from the register file (Figure 4 "From RF").
    pub crit_from_rf: u64,
    /// Critical input forwarded from the RS1 producer.
    pub crit_from_rs1: u64,
    /// Critical input forwarded from the RS2 producer.
    pub crit_from_rs2: u64,
    /// All source operands satisfied by data forwarding.
    pub forwarded_inputs: u64,
    /// Forwarded operands that were the critical (last-arriving) input.
    pub forwarded_critical: u64,
    /// Critical forwarded operands whose producer was in a different
    /// trace (Table 2, column 2).
    pub critical_inter_trace: u64,
    /// Critical forwarded operands satisfied within the same cluster
    /// (Table 8a).
    pub critical_intra_cluster: u64,
    /// Sum of cluster distances over critical forwarded operands
    /// (Table 8b numerator).
    pub critical_distance_sum: u64,
}

impl ForwardingStats {
    /// Fraction of forwarded dependencies that were critical (Table 2,
    /// column 1).
    pub fn critical_fraction(&self) -> f64 {
        ratio((self.forwarded_critical, self.forwarded_inputs))
    }

    /// Fraction of critical forwarded dependencies that were inter-trace
    /// (Table 2, column 2).
    pub fn inter_trace_fraction(&self) -> f64 {
        ratio((self.critical_inter_trace, self.forwarded_critical))
    }

    /// Fraction of critical forwarded dependencies satisfied
    /// intra-cluster (Table 8a).
    pub fn intra_cluster_fraction(&self) -> f64 {
        ratio((self.critical_intra_cluster, self.forwarded_critical))
    }

    /// Mean cluster distance of critical forwarded data (Table 8b).
    pub fn mean_distance(&self) -> f64 {
        if self.forwarded_critical == 0 {
            0.0
        } else {
            self.critical_distance_sum as f64 / self.forwarded_critical as f64
        }
    }

    /// Critical-input source distribution `(rf, rs1, rs2)` as fractions of
    /// instructions with inputs (Figure 4).
    pub fn critical_source_distribution(&self) -> (f64, f64, f64) {
        let n = self.insts_with_inputs;
        if n == 0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.crit_from_rf as f64 / n as f64,
            self.crit_from_rs1 as f64 / n as f64,
            self.crit_from_rs2 as f64 / n as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn producer_history_counts_repeats() {
        let mut h = ProducerHistory::default();
        // First observation establishes history, no sample.
        h.record(0x100, 0, 0x50, true, true);
        assert_eq!(h.repeat_rate_all(0), 0.0);
        // Repeat.
        h.record(0x100, 0, 0x50, true, true);
        // Change.
        h.record(0x100, 0, 0x60, true, true);
        assert_eq!(h.repeat_rate_all(0), 0.5);
        assert_eq!(h.repeat_rate_critical_inter(0), 0.5);
        // Non-critical sample doesn't move the critical counters.
        h.record(0x100, 0, 0x60, false, true);
        assert_eq!(h.repeat_rate_critical_inter(0), 0.5);
        assert!(h.repeat_rate_all(0) > 0.5);
    }

    #[test]
    fn sources_tracked_independently() {
        let mut h = ProducerHistory::default();
        h.record(0x100, 0, 0x50, true, false);
        h.record(0x100, 1, 0x54, true, false);
        h.record(0x100, 0, 0x50, true, false);
        assert_eq!(h.repeat_rate_all(0), 1.0);
        assert_eq!(h.repeat_rate_all(1), 0.0); // only one sample -> no pair yet
    }

    #[test]
    fn stats_fractions() {
        let s = ForwardingStats {
            insts_with_inputs: 10,
            crit_from_rf: 4,
            crit_from_rs1: 3,
            crit_from_rs2: 3,
            forwarded_inputs: 12,
            forwarded_critical: 6,
            critical_inter_trace: 2,
            critical_intra_cluster: 3,
            critical_distance_sum: 9,
        };
        assert_eq!(s.critical_fraction(), 0.5);
        assert!((s.inter_trace_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.intra_cluster_fraction(), 0.5);
        assert_eq!(s.mean_distance(), 1.5);
        let (rf, r1, r2) = s.critical_source_distribution();
        assert_eq!((rf, r1, r2), (0.4, 0.3, 0.3));
    }

    #[test]
    fn empty_stats_are_all_zero() {
        let s = ForwardingStats::default();
        assert_eq!(s.critical_fraction(), 0.0);
        assert_eq!(s.mean_distance(), 0.0);
        assert_eq!(s.critical_source_distribution(), (0.0, 0.0, 0.0));
    }
}
