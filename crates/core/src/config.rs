//! Engine configuration.

use crate::ClusterGeometry;
use ctcp_isa::OpClass;
use ctcp_memory::MemoryConfig;

/// Execution and issue latency of one operation class on its functional
/// unit (Table 7's "Exec. lat." / "Issue lat."). `issue` is the initiation
/// interval: the FU cannot start another operation for `issue` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuLatency {
    /// Cycles from issue to result.
    pub exec: u64,
    /// Cycles before the FU can accept another operation.
    pub issue: u64,
}

/// Idealisation knobs used by the Figure 5 study: selectively remove data
/// forwarding or register-file latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyOverrides {
    /// All inter-cluster forwarding is free ("No Fwd Lat").
    pub no_forward_latency: bool,
    /// Only the last-arriving (critical) forwarded input is free
    /// ("No Crit Fwd Lat").
    pub no_critical_forward_latency: bool,
    /// Forwarding between instructions of the same trace is free
    /// ("No Intra-Trace Lat").
    pub no_intra_trace_latency: bool,
    /// Forwarding between instructions of different traces is free
    /// ("No Inter-Trace Lat").
    pub no_inter_trace_latency: bool,
}

/// Full configuration of the execution engine. Defaults reproduce the
/// baseline architecture of Table 7.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Cluster count / slots / topology.
    pub geometry: ClusterGeometry,
    /// Inter-cluster forwarding latency per hop (2 cycles).
    pub hop_latency: u64,
    /// Register file read latency (2 cycles).
    pub rf_latency: u64,
    /// Reorder buffer entries (128).
    pub rob_entries: usize,
    /// Instructions renamed/accepted per cycle (16).
    pub rename_width: usize,
    /// Instructions retired per cycle (16).
    pub retire_width: usize,
    /// Entries per reservation station (8).
    pub rs_entries: usize,
    /// Write ports per reservation station (2).
    pub rs_write_ports: usize,
    /// Instructions dispatched into one cluster per cycle (4).
    pub dispatch_per_cluster: usize,
    /// Extra pipeline latency of issue-time steering (0 for the ideal
    /// study, 4 for the realistic one; unused by slot-based steering).
    pub steer_latency: u64,
    /// Idealisation knobs (Figure 5).
    pub overrides: LatencyOverrides,
    /// Data memory system configuration.
    pub memory: MemoryConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            geometry: ClusterGeometry::default(),
            hop_latency: 2,
            rf_latency: 2,
            rob_entries: 128,
            rename_width: 16,
            retire_width: 16,
            rs_entries: 8,
            rs_write_ports: 2,
            dispatch_per_cluster: 4,
            steer_latency: 0,
            overrides: LatencyOverrides::default(),
            memory: MemoryConfig::default(),
        }
    }
}

impl EngineConfig {
    /// Latency of `class` on its functional unit (Table 7).
    pub fn fu_latency(class: OpClass) -> FuLatency {
        match class {
            OpClass::SimpleInt | OpClass::Branch => FuLatency { exec: 1, issue: 1 },
            OpClass::FpBasic => FuLatency { exec: 2, issue: 1 },
            // Integer multiply: 3/1. Divide: 20/19. The engine picks
            // per-opcode below; this is the pipelined (mul) case.
            OpClass::ComplexInt => FuLatency { exec: 3, issue: 1 },
            OpClass::FpComplex => FuLatency { exec: 3, issue: 1 },
            // Memory classes: 1 cycle of address generation; the cache
            // model supplies the rest.
            OpClass::Load | OpClass::Store | OpClass::FpLoad | OpClass::FpStore => {
                FuLatency { exec: 1, issue: 1 }
            }
        }
    }

    /// Latency of a specific opcode, distinguishing divide/sqrt from
    /// multiply (Table 7: Int Mul/Div 3/20 exec, 1/19 issue; FP
    /// Mul/Div/Sqrt 3/12/24 exec, 1/12/24 issue).
    pub fn opcode_latency(op: ctcp_isa::Opcode) -> FuLatency {
        use ctcp_isa::Opcode::*;
        match op {
            Mul => FuLatency { exec: 3, issue: 1 },
            Div => FuLatency {
                exec: 20,
                issue: 19,
            },
            FMul => FuLatency { exec: 3, issue: 1 },
            FDiv => FuLatency {
                exec: 12,
                issue: 12,
            },
            FSqrt => FuLatency {
                exec: 24,
                issue: 24,
            },
            _ => Self::fu_latency(op.class()),
        }
    }

    /// The forwarding latency between two clusters under this
    /// configuration, before any [`LatencyOverrides`] are applied.
    pub fn forward_latency(&self, from: u8, to: u8) -> u64 {
        self.hop_latency * u64::from(self.geometry.distance(from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctcp_isa::Opcode;

    #[test]
    fn table7_latencies() {
        assert_eq!(
            EngineConfig::opcode_latency(Opcode::Add),
            FuLatency { exec: 1, issue: 1 }
        );
        assert_eq!(
            EngineConfig::opcode_latency(Opcode::Div),
            FuLatency {
                exec: 20,
                issue: 19
            }
        );
        assert_eq!(
            EngineConfig::opcode_latency(Opcode::FSqrt),
            FuLatency {
                exec: 24,
                issue: 24
            }
        );
        assert_eq!(
            EngineConfig::opcode_latency(Opcode::FAdd),
            FuLatency { exec: 2, issue: 1 }
        );
    }

    #[test]
    fn forwarding_latency_scales_with_distance() {
        let c = EngineConfig::default();
        assert_eq!(c.forward_latency(0, 0), 0);
        assert_eq!(c.forward_latency(0, 1), 2);
        assert_eq!(c.forward_latency(0, 3), 6);
    }

    #[test]
    fn default_matches_table7() {
        let c = EngineConfig::default();
        assert_eq!(c.rob_entries, 128);
        assert_eq!(c.rename_width, 16);
        assert_eq!(c.rs_entries, 8);
        assert_eq!(c.rs_write_ports, 2);
        assert_eq!(c.hop_latency, 2);
        assert_eq!(c.rf_latency, 2);
        assert_eq!(c.geometry.total_slots(), 16);
    }
}
