//! The clustered out-of-order execution engine.
//!
//! Scheduling is event-driven: completions live in a calendar queue
//! (popped exactly when due), wakeups traverse per-producer consumer
//! lists built at rename, and selectable instructions sit in per-RS
//! ready queues keyed by their operand-arrival cycle. The original
//! scan-per-cycle scheduler is retained as a runtime-selectable
//! determinism oracle (see [`Engine::set_legacy_scheduler`]); both
//! paths produce cycle-for-cycle identical results.

use crate::arena::{ConsumerArena, EngineArena, NIL};
use crate::entry::{Entry, SrcState, Stage};
use crate::fu::FuPool;
use crate::rob::Rob;
use crate::sched::{CompletionWheel, ReadyQueue};
use crate::{EngineConfig, ForwardingStats, ProducerHistory, RsClass};
use ctcp_isa::Instruction;
use ctcp_memory::{AccessKind, CacheStats, DataMemory, StoreForward};
use ctcp_telemetry::{
    Counter, Hist, InstAttrib, InstTimeline, NullProbe, Probe, RetireSlotKind, SrcAttrib, SrcKind,
};
use ctcp_tracecache::{ExecFeedback, ProducerInfo, ProfileFields, TcLocation};
use std::collections::{BTreeSet, VecDeque};
use std::rc::Rc;

/// One instruction delivered by the front-end, already renamed into a
/// fetch-group slot. `slot` determines the cluster under slot-based
/// steering; issue-time steering ignores it.
#[derive(Debug, Clone, Copy)]
pub struct FetchedInst {
    /// Global dynamic sequence number (dense, program order).
    pub seq: u64,
    /// Static PC.
    pub pc: u64,
    /// Static instruction index.
    pub index: u32,
    /// The instruction.
    pub inst: Instruction,
    /// Effective address for memory operations.
    pub mem_addr: Option<u64>,
    /// Dynamic direction for control transfers.
    pub taken: Option<bool>,
    /// Physical issue slot within the fetch group.
    pub slot: u8,
    /// Fetch-group (trace) id.
    pub group: u64,
    /// Fetched from the trace cache (vs the instruction cache).
    pub from_tc: bool,
    /// Trace cache location, when fetched from a resident line.
    pub tc_loc: Option<TcLocation>,
    /// Profile fields carried from the trace cache.
    pub profile: ProfileFields,
    /// The front-end mispredicted this branch; completion redirects fetch.
    pub mispredicted: bool,
}

/// A retired instruction, carrying everything the fill unit and the
/// statistics machinery need.
#[derive(Debug, Clone, Copy)]
pub struct RetiredInst {
    /// Global dynamic sequence number.
    pub seq: u64,
    /// Static PC.
    pub pc: u64,
    /// Static instruction index.
    pub index: u32,
    /// The instruction.
    pub inst: Instruction,
    /// Effective address for memory operations.
    pub mem_addr: Option<u64>,
    /// Dynamic direction for control transfers.
    pub taken: Option<bool>,
    /// Fetch-group (trace) id.
    pub group: u64,
    /// Fetched from the trace cache.
    pub from_tc: bool,
    /// Trace cache location the instruction was fetched from.
    pub tc_loc: Option<TcLocation>,
    /// Profile fields as fetched.
    pub profile: ProfileFields,
    /// Cluster the instruction executed on.
    pub cluster: u8,
    /// Execution feedback (critical input, forwarding producers).
    pub feedback: ExecFeedback,
    /// Cycle at which the instruction retired.
    pub retire_cycle: u64,
}

/// What one engine cycle produced.
#[derive(Debug, Default)]
pub struct TickResult {
    /// Instructions retired this cycle, in program order.
    pub retired: Vec<RetiredInst>,
    /// Sequence numbers of mispredicted branches that resolved this
    /// cycle (the front-end may resume fetching the following cycle).
    pub redirects: Vec<u64>,
}

/// Aggregate engine counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineStats {
    /// Instructions retired.
    pub retired: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Store-to-load forwards.
    pub store_forwards: u64,
    /// Cycles on which dispatch stalled for a full reservation station.
    pub rs_full_stalls: u64,
    /// Mispredicted branches resolved.
    pub redirects: u64,
    /// Instructions executed per cluster (up to 8 clusters).
    pub executed_per_cluster: [u64; 8],
    /// Total cycles instructions spent waiting in reservation stations.
    pub sum_rs_wait: u64,
    /// Total cycles between completion and retirement.
    pub sum_complete_to_retire: u64,
    /// Total cycles between rename and dispatch.
    pub sum_dispatch_wait: u64,
    /// RS-wait cycles per functional-unit type.
    pub rs_wait_by_fu: [u64; 7],
    /// Executed instructions per functional-unit type.
    pub count_by_fu: [u64; 7],
}

/// One-shot snapshot of every statistic the engine owns: the aggregate
/// counters, the forwarding profile, the producer-repetition rates, and
/// the data-memory cache statistics. [`Engine::metrics`] is the single
/// source of truth consumers derive reports from — there is no need to
/// stitch together per-subsystem accessors.
#[derive(Debug, Clone, Copy)]
pub struct EngineMetrics {
    /// Aggregate engine counters.
    pub stats: EngineStats,
    /// Forwarding statistics (Tables 2/8, Figure 4).
    pub fwd: ForwardingStats,
    /// Producer repeat rates per source, all inputs (Table 3).
    pub repeat_all: [f64; 2],
    /// Producer repeat rates per source, critical inter-trace inputs.
    pub repeat_critical_inter: [f64; 2],
    /// L1 data cache statistics.
    pub l1d: CacheStats,
}

/// How the engine picks a cluster for each instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteeringMode {
    /// Slot-based: cluster = slot / slots_per_cluster (baseline and all
    /// retire-time strategies).
    Slot,
    /// Issue-time dependency steering with `EngineConfig::steer_latency`
    /// extra pipeline stages.
    IssueTime,
}

/// A producer that just completed, as seen by the consumers it wakes.
struct Completed {
    seq: u64,
    at: u64,
    cluster: u8,
    group: u64,
}

struct ClusterState {
    dispatch_q: VecDeque<u64>,
    /// Legacy scheduler only: flat per-RS candidate lists.
    rs: [Vec<u64>; 5],
    /// Event scheduler only: per-RS ready/pending queues.
    queues: [ReadyQueue; 5],
    /// Station residency, maintained identically by both schedulers
    /// (incremented at dispatch, decremented at issue): the single
    /// source every occupancy read — dispatch back-pressure, routing,
    /// diagnostics, and the `rs_occupancy` histogram — samples, so the
    /// telemetry cannot diverge between scheduler implementations.
    station_occ: [usize; 5],
    fus: FuPool,
}

impl ClusterState {
    /// A cluster built from recycled queue storage (cleared here); the
    /// arena's pools run dry harmlessly — missing pieces are allocated
    /// fresh.
    fn from_arena(arena: &mut EngineArena) -> Self {
        let take_seq = |arena: &mut EngineArena| arena.seq_lists.pop().unwrap_or_default();
        let take_queue = |arena: &mut EngineArena| {
            ReadyQueue::from_parts(
                arena.seq_lists.pop().unwrap_or_default(),
                arena.pending_lists.pop().unwrap_or_default(),
            )
        };
        let mut dispatch_q = arena.dispatch_qs.pop().unwrap_or_default();
        dispatch_q.clear();
        let mut rs: [Vec<u64>; 5] = std::array::from_fn(|_| take_seq(arena));
        for list in &mut rs {
            list.clear();
        }
        ClusterState {
            dispatch_q,
            rs,
            queues: std::array::from_fn(|_| take_queue(arena)),
            station_occ: [0; 5],
            fus: FuPool::new(),
        }
    }

    /// Returns the cluster's queue storage to the arena's pools.
    fn into_arena(self, arena: &mut EngineArena) {
        arena.dispatch_qs.push(self.dispatch_q);
        for list in self.rs {
            arena.seq_lists.push(list);
        }
        for q in self.queues {
            let (ready, pending) = q.into_parts();
            arena.seq_lists.push(ready);
            arena.pending_lists.push(pending);
        }
    }
}

/// The clustered out-of-order engine: rename → steer → dispatch →
/// select/execute → complete → retire, with distance-proportional
/// inter-cluster operand forwarding.
pub struct Engine {
    cfg: EngineConfig,
    mode: SteeringMode,
    rob: Rob,
    rat: [Option<u64>; ctcp_isa::Reg::NUM],
    clusters: Vec<ClusterState>,
    mem: DataMemory,
    unresolved_stores: BTreeSet<u64>,
    stats: EngineStats,
    fwd: ForwardingStats,
    history: ProducerHistory,
    probe: Rc<dyn Probe>,
    /// Cached `probe.enabled()`: the telemetry-off fast path is one
    /// branch per hook site, never a virtual call.
    probe_on: bool,
    /// Cached `CTCP_TRACE` env check (an env lookup per executed
    /// instruction is measurable; the flag cannot change mid-run).
    debug_trace: bool,
    /// Event-driven scheduling (the default). `false` selects the
    /// legacy scan-per-cycle path, kept as a determinism oracle.
    event_driven: bool,
    /// Calendar queue of `(complete_cycle, seq)` execution completions.
    wheel: CompletionWheel,
    /// Scratch for the wheel's per-cycle drain (reused every tick).
    scratch_events: Vec<(u64, u64)>,
    /// Struct-of-arrays slab holding every entry's wakeup chain; entries
    /// carry `cons_head`/`cons_tail` handles into it.
    consumers: ConsumerArena,
    /// Scratch for one producer's drained wakeup chain (reused every
    /// completion).
    scratch_wakes: Vec<(u64, u8)>,
    /// Scratch for issue-time steering's per-group cluster counts.
    steer_counts: Vec<u32>,
}

impl Engine {
    /// Creates an empty engine. The scheduler defaults to event-driven;
    /// set `CTCP_SCHED=legacy` in the environment (or call
    /// [`Engine::set_legacy_scheduler`]) to select the scan oracle.
    pub fn new(cfg: EngineConfig, mode: SteeringMode) -> Self {
        Engine::with_arena(cfg, mode, EngineArena::default())
    }

    /// Creates an empty engine out of recycled storage. Behaviourally
    /// identical to [`Engine::new`]: every piece of the arena is cleared
    /// before use (capacities are kept), so no state can leak from the
    /// previous run. Harvest the storage back with
    /// [`Engine::into_arena`] when the run ends.
    pub fn with_arena(cfg: EngineConfig, mode: SteeringMode, mut arena: EngineArena) -> Self {
        let n = cfg.geometry.clusters as usize;
        let clusters = (0..n)
            .map(|_| ClusterState::from_arena(&mut arena))
            .collect();
        let EngineArena {
            entries,
            mut consumers,
            wheel_slots,
            mut events,
            mut wakes,
            mut steer_counts,
            ..
        } = arena;
        consumers.clear();
        events.clear();
        wakes.clear();
        steer_counts.clear();
        Engine {
            mem: DataMemory::new(cfg.memory),
            cfg,
            mode,
            rob: Rob::from_storage(entries, cfg.rob_entries),
            rat: [None; ctcp_isa::Reg::NUM],
            clusters,
            unresolved_stores: BTreeSet::new(),
            stats: EngineStats::default(),
            fwd: ForwardingStats::default(),
            history: ProducerHistory::default(),
            probe: Rc::new(NullProbe),
            probe_on: false,
            debug_trace: std::env::var("CTCP_TRACE").is_ok(),
            event_driven: std::env::var("CTCP_SCHED").map_or(true, |v| v != "legacy"),
            wheel: CompletionWheel::from_slots(wheel_slots),
            scratch_events: events,
            consumers,
            scratch_wakes: wakes,
            steer_counts,
        }
    }

    /// Tears the engine down to its recyclable storage so the next
    /// [`Engine::with_arena`] construction starts with warm, already-
    /// grown allocations instead of a cold heap.
    pub fn into_arena(self) -> EngineArena {
        let mut arena = EngineArena {
            entries: self.rob.into_storage(),
            consumers: self.consumers,
            wheel_slots: self.wheel.into_slots(),
            events: self.scratch_events,
            wakes: self.scratch_wakes,
            steer_counts: self.steer_counts,
            ..EngineArena::default()
        };
        for c in self.clusters {
            c.into_arena(&mut arena);
        }
        arena
    }

    /// Selects the legacy scan-per-cycle scheduler (`legacy = true`) or
    /// the event-driven one. The scan path is the determinism oracle:
    /// differential tests run both and require byte-identical reports.
    ///
    /// # Panics
    ///
    /// Panics if instructions have already been accepted — the two
    /// schedulers keep different bookkeeping and cannot be swapped
    /// mid-flight.
    pub fn set_legacy_scheduler(&mut self, legacy: bool) {
        assert!(
            self.rob.is_empty() && self.stats.retired == 0,
            "scheduler must be selected before the first fetch group"
        );
        self.event_driven = !legacy;
    }

    /// Attaches a telemetry probe. The engine caches
    /// [`Probe::enabled`], so a [`NullProbe`] (the default) keeps every
    /// hook site on a single-branch fast path.
    pub fn set_probe(&mut self, probe: Rc<dyn Probe>) {
        self.probe_on = probe.enabled();
        self.probe = probe;
    }

    /// The configuration in use.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Aggregate counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Forwarding statistics (Tables 2/8, Figure 4).
    pub fn forwarding_stats(&self) -> &ForwardingStats {
        &self.fwd
    }

    /// Everything the engine measured, in one snapshot. Derive reports
    /// from this instead of combining the individual accessors.
    pub fn metrics(&self) -> EngineMetrics {
        EngineMetrics {
            stats: self.stats,
            fwd: self.fwd,
            repeat_all: [
                self.history.repeat_rate_all(0),
                self.history.repeat_rate_all(1),
            ],
            repeat_critical_inter: [
                self.history.repeat_rate_critical_inter(0),
                self.history.repeat_rate_critical_inter(1),
            ],
            l1d: self.mem.l1_stats(),
        }
    }

    /// The data memory system (for cache statistics).
    pub fn memory(&self) -> &DataMemory {
        &self.mem
    }

    /// Number of in-flight instructions.
    pub fn in_flight(&self) -> usize {
        self.rob.len()
    }

    /// Snapshots the macroscopic pipeline state at cycle `now` — what
    /// the retire-progress watchdog dumps when it aborts a wedged run.
    pub fn diagnostic(&self, now: u64) -> crate::PipelineDiagnostic {
        let head = self.rob.front();
        crate::PipelineDiagnostic {
            cycle: now,
            retired: self.stats.retired,
            in_flight: self.rob.len(),
            head_seq: head.map(|e| e.seq),
            head_stage: head.map(|e| format!("{:?}", e.stage)),
            head_cluster: head.map(|e| e.cluster),
            clusters: (0..self.clusters.len())
                .map(|ci| crate::ClusterOccupancy {
                    dispatch: self.clusters[ci].dispatch_q.len(),
                    stations: (0..5).map(|rsi| self.station_len(ci, rsi)).sum(),
                })
                .collect(),
        }
    }

    /// True if a fetch group of `n` instructions can be accepted now.
    pub fn can_accept(&self, n: usize) -> bool {
        n <= self.cfg.rename_width && self.rob.len() + n <= self.cfg.rob_entries
    }

    #[inline]
    fn entry(&self, seq: u64) -> Option<&Entry> {
        self.rob.get(seq)
    }

    #[inline]
    fn entry_mut(&mut self, seq: u64) -> Option<&mut Entry> {
        self.rob.get_mut(seq)
    }

    /// Renames and steers one fetch group at cycle `now`. Call
    /// [`Engine::can_accept`] first.
    ///
    /// # Panics
    ///
    /// Panics if the group exceeds rename width or ROB capacity, or if
    /// sequence numbers are not dense and increasing.
    pub fn accept(&mut self, group: &[FetchedInst], now: u64) {
        assert!(self.can_accept(group.len()), "caller must check can_accept");
        // Issue-time steering balances within the cycle's group.
        let mut cycle_counts = std::mem::take(&mut self.steer_counts);
        cycle_counts.clear();
        cycle_counts.resize(self.cfg.geometry.clusters as usize, 0);
        let slots_per = u32::from(self.cfg.geometry.slots_per_cluster);
        for f in group {
            let expected = self.rob.next_seq();
            assert_eq!(f.seq, expected, "sequence numbers must be dense");
            let srcs = self.resolve_sources(&f.inst, f.group, now);
            if self.event_driven {
                // Register this consumer on each still-executing
                // producer's wakeup list; completion resolves exactly
                // these sources instead of broadcasting over the ROB.
                for (i, s) in srcs.iter().enumerate() {
                    if let SrcState::Waiting { producer_seq } = *s {
                        let p = self
                            .rob
                            .get_mut(producer_seq)
                            .expect("RAT points at in-ROB producer");
                        self.consumers
                            .append(&mut p.cons_head, &mut p.cons_tail, f.seq, i as u8);
                    }
                }
            }
            let cluster = match self.mode {
                SteeringMode::Slot => self.cfg.geometry.cluster_of_slot(f.slot),
                SteeringMode::IssueTime => {
                    self.steer_issue_time(&srcs, &mut cycle_counts, slots_per)
                }
            };
            let rs = self.route_rs(cluster, f.inst.class());
            let dispatch_at = now
                + 1
                + if self.mode == SteeringMode::IssueTime {
                    self.cfg.steer_latency
                } else {
                    0
                };
            if f.inst.op.is_store() {
                self.unresolved_stores.insert(f.seq);
            }
            let entry = Entry {
                seq: f.seq,
                pc: f.pc,
                index: f.index,
                inst: f.inst,
                mem_addr: f.mem_addr,
                taken: f.taken,
                group: f.group,
                from_tc: f.from_tc,
                tc_loc: f.tc_loc,
                profile: f.profile,
                cluster,
                rs,
                srcs,
                stage: Stage::AwaitDispatch { at: dispatch_at },
                mispredicted: f.mispredicted,
                renamed_at: now,
                dispatched_at: 0,
                exec_start: 0,
                feedback: ExecFeedback::default(),
                cons_head: NIL,
                cons_tail: NIL,
            };
            if let Some(d) = f.inst.dest {
                self.rat[d.index()] = Some(f.seq);
            }
            self.clusters[cluster as usize].dispatch_q.push_back(f.seq);
            self.rob.push_back(entry);
        }
        self.steer_counts = cycle_counts;
    }

    fn resolve_sources(&self, inst: &Instruction, group: u64, now: u64) -> [SrcState; 2] {
        let mut srcs = [SrcState::None, SrcState::None];
        for (i, reg) in [inst.dep_src1(), inst.dep_src2()].into_iter().enumerate() {
            let Some(r) = reg else { continue };
            srcs[i] = match self.rat[r.index()] {
                None => SrcState::RfReady {
                    at: now + self.cfg.rf_latency,
                },
                Some(pseq) => {
                    let p = self.entry(pseq).expect("RAT points at in-ROB producer");
                    match p.complete_cycle() {
                        // Producer already wrote back: the consumer's
                        // rename-stage register-file access returns the
                        // value — no distance-based forwarding.
                        Some(c) if c <= now => SrcState::RfReady {
                            at: now + self.cfg.rf_latency,
                        },
                        // Producer still executing: the value arrives via
                        // the (distance-dependent) forwarding network.
                        Some(c) => SrcState::Forwarded {
                            producer_seq: pseq,
                            complete: c,
                            cluster: p.cluster,
                            same_trace: p.group == group,
                        },
                        None => SrcState::Waiting { producer_seq: pseq },
                    }
                }
            };
        }
        srcs
    }

    /// Issue-time steering: send the instruction to the cluster where its
    /// latest-arriving (most critical) input is generated, subject to
    /// ≤ slots_per_cluster per cycle, falling back to the other producer,
    /// a neighbour, and finally the least-loaded cluster.
    fn steer_issue_time(&self, srcs: &[SrcState; 2], counts: &mut [u32], slots_per: u32) -> u8 {
        // (cluster, expected completion). A producer that has not begun
        // executing ranks above any executing one, ordered among its
        // peers by its opcode's execution latency — the steering
        // hardware's cheap criticality estimate.
        let mut producers = [(0u8, 0u64); 2];
        let mut np = 0;
        for s in srcs {
            let pc = match s {
                SrcState::Waiting { producer_seq } => self.entry(*producer_seq).map(|e| {
                    let estimate = e
                        .complete_cycle()
                        .unwrap_or(u64::MAX / 2 + EngineConfig::opcode_latency(e.inst.op).exec);
                    (e.cluster, estimate)
                }),
                SrcState::Forwarded {
                    cluster, complete, ..
                } => Some((*cluster, *complete)),
                _ => None,
            };
            if let Some(p) = pc {
                producers[np] = p;
                np += 1;
            }
        }
        // Latest-completing producer first: that input is the one worth
        // being next to (stable on ties, like the old sort).
        if np == 2 && producers[1].1 > producers[0].1 {
            producers.swap(0, 1);
        }
        let mut candidates = [0u8; 8];
        let mut nc = 0;
        for &(c, _) in &producers[..np] {
            if !candidates[..nc].contains(&c) {
                candidates[nc] = c;
                nc += 1;
            }
        }
        if nc > 0 {
            for nb in self.cfg.geometry.neighbors(candidates[0]) {
                if nc < candidates.len() && !candidates[..nc].contains(&nb) {
                    candidates[nc] = nb;
                    nc += 1;
                }
            }
        }
        for &c in &candidates[..nc] {
            if counts[c as usize] < slots_per {
                counts[c as usize] += 1;
                return c;
            }
        }
        // Balance: least-loaded this cycle, most central first on ties.
        let order = self.cfg.geometry.middle_order();
        let c = order
            .iter()
            .copied()
            .min_by_key(|&c| counts[c as usize])
            .expect("at least one cluster");
        counts[c as usize] += 1;
        c
    }

    /// Occupancy of one reservation station. Reads the shared residency
    /// counter both schedulers maintain at the same points (dispatch,
    /// issue), so every consumer samples scheduler-independent state.
    #[inline]
    fn station_len(&self, ci: usize, rsi: usize) -> usize {
        self.clusters[ci].station_occ[rsi]
    }

    fn route_rs(&self, cluster: u8, class: ctcp_isa::OpClass) -> RsClass {
        let ci = cluster as usize;
        let balance = self.station_len(ci, RsClass::Simple1.index())
            < self.station_len(ci, RsClass::Simple0.index());
        RsClass::route(class, balance)
    }

    /// Advances the back-end by one cycle, allocating a fresh
    /// [`TickResult`]. Prefer [`Engine::tick_into`] on hot paths.
    pub fn tick(&mut self, now: u64) -> TickResult {
        let mut out = TickResult::default();
        self.tick_into(now, &mut out);
        out
    }

    /// Advances the back-end by one cycle, reusing the caller's buffers:
    /// `out` is cleared and refilled, so a caller that holds one
    /// `TickResult` across cycles pays no per-cycle allocation.
    pub fn tick_into(&mut self, now: u64, out: &mut TickResult) {
        out.retired.clear();
        out.redirects.clear();
        self.dispatch(now);
        // Complete (and wake consumers) before select so that a result
        // produced at cycle `now` can be consumed intra-cluster at `now` —
        // the paper's "same cycle as instruction dispatch" forwarding.
        if self.event_driven {
            self.complete_event(now, &mut out.redirects);
            self.select_event(now);
        } else {
            self.complete_scan(now, &mut out.redirects);
            self.select_scan(now);
        }
        self.retire_into(now, &mut out.retired);
        self.mem.drain_stores(2);
        if self.probe_on {
            self.probe.counter(Counter::Cycles, 1);
            let mshrs = self.mem.mshr_in_use(now) as u64;
            self.probe.observe(Hist::MshrOccupancy, mshrs);
            let lq = self.mem.load_queue_len() as u64;
            self.probe.observe(Hist::LoadQueueOccupancy, lq);
            for ci in 0..self.clusters.len() {
                let occ = (0..5).map(|rsi| self.station_len(ci, rsi)).sum::<usize>();
                self.probe.observe(Hist::RsOccupancy, occ as u64);
            }
        }
    }

    fn dispatch(&mut self, now: u64) {
        for ci in 0..self.clusters.len() {
            let mut dispatched = 0;
            let mut port_use = [0usize; 5];
            while dispatched < self.cfg.dispatch_per_cluster {
                let Some(&seq) = self.clusters[ci].dispatch_q.front() else {
                    break;
                };
                let entry = self.entry(seq).expect("queued entries are in ROB");
                let Stage::AwaitDispatch { at } = entry.stage else {
                    // Should not happen, but drop defensively.
                    self.clusters[ci].dispatch_q.pop_front();
                    continue;
                };
                if at > now {
                    break;
                }
                let rs = entry.rs;
                let is_load = entry.inst.op.is_load();
                if self.station_len(ci, rs.index()) >= self.cfg.rs_entries
                    || port_use[rs.index()] >= self.cfg.rs_write_ports
                {
                    self.stats.rs_full_stalls += 1;
                    break;
                }
                if is_load && !self.mem.load_queue().has_room() {
                    break;
                }
                if is_load {
                    self.mem.load_queue().insert(seq);
                }
                port_use[rs.index()] += 1;
                self.clusters[ci].dispatch_q.pop_front();
                let at_wait = now - at;
                self.stats.sum_dispatch_wait += at_wait;
                let e = self.entry_mut(seq).expect("in ROB");
                e.stage = Stage::InRs;
                e.dispatched_at = now;
                self.clusters[ci].station_occ[rs.index()] += 1;
                if self.event_driven {
                    // If every operand is already resolved, the ready
                    // cycle is final: file it now. Otherwise the last
                    // producer's wakeup will file it.
                    let ready_at = {
                        let e = self.entry(seq).expect("in ROB");
                        if e.srcs.iter().any(|s| matches!(s, SrcState::Waiting { .. })) {
                            None
                        } else {
                            Some(self.readiness(e).expect("no waiting sources").0)
                        }
                    };
                    if let Some(at) = ready_at {
                        self.clusters[ci].queues[rs.index()].push_at(at, seq, now);
                    }
                } else {
                    self.clusters[ci].rs[rs.index()].push(seq);
                }
                dispatched += 1;
            }
        }
    }

    /// Computes the operand-arrival cycle of `src` for a consumer on
    /// `cluster`, applying the latency-override knobs. Returns `None`
    /// while the producer is incomplete.
    fn arrival(&self, src: &SrcState, cluster: u8) -> Option<u64> {
        match *src {
            SrcState::None => Some(0),
            SrcState::RfReady { at } => Some(at),
            SrcState::Waiting { .. } => None,
            SrcState::Forwarded {
                complete,
                cluster: pc,
                same_trace,
                ..
            } => {
                let ov = &self.cfg.overrides;
                let mut lat = self.cfg.forward_latency(pc, cluster);
                if ov.no_forward_latency
                    || (ov.no_intra_trace_latency && same_trace)
                    || (ov.no_inter_trace_latency && !same_trace)
                {
                    lat = 0;
                }
                Some(complete + lat)
            }
        }
    }

    /// Ready cycle and critical-source index for an entry, honouring the
    /// "no critical forwarding latency" idealisation.
    fn readiness(&self, e: &Entry) -> Option<(u64, Option<usize>)> {
        let a0 = self.arrival(&e.srcs[0], e.cluster)?;
        let a1 = self.arrival(&e.srcs[1], e.cluster)?;
        let has0 = !matches!(e.srcs[0], SrcState::None);
        let has1 = !matches!(e.srcs[1], SrcState::None);
        let critical = match (has0, has1) {
            (false, false) => None,
            (true, false) => Some(0),
            (false, true) => Some(1),
            (true, true) => Some(if a1 > a0 { 1 } else { 0 }),
        };
        let mut ready = a0.max(a1);
        if self.cfg.overrides.no_critical_forward_latency {
            if let Some(ci) = critical {
                if let SrcState::Forwarded { complete, .. } = e.srcs[ci] {
                    let other = if ci == 0 { a1 } else { a0 };
                    ready = other.max(complete);
                }
            }
        }
        Some((ready, critical))
    }

    /// Issue checks shared by both schedulers. `seq` must sit in a
    /// reservation station of cluster `ci`. Returns `true` when
    /// execution began (the caller removes it from its station).
    fn try_issue(&mut self, seq: u64, now: u64, min_unresolved: Option<u64>, ci: usize) -> bool {
        let e = self.entry(seq).expect("RS entries are in ROB");
        debug_assert!(matches!(e.stage, Stage::InRs));
        let Some((ready, critical)) = self.readiness(e) else {
            return false;
        };
        if ready > now {
            return false;
        }
        let op = e.inst.op;
        // No speculative disambiguation: loads wait for all older store
        // addresses.
        if op.is_load() {
            if let Some(ms) = min_unresolved {
                if ms < seq {
                    return false;
                }
            }
        }
        if op.is_store() && !self.mem.store_buffer().has_room() {
            return false;
        }
        let lat = EngineConfig::opcode_latency(op);
        if !self.clusters[ci]
            .fus
            .try_claim(op.fu_type(), now, lat.issue)
        {
            return false;
        }
        self.begin_execution(seq, now, lat.exec, critical);
        true
    }

    /// Legacy select: poll `readiness()` on every station resident.
    fn select_scan(&mut self, now: u64) {
        let min_unresolved = self.unresolved_stores.iter().next().copied();
        let mut issued = [0u32; 8];
        for ci in 0..self.clusters.len() {
            for rsi in 0..5 {
                let candidates: Vec<u64> = self.clusters[ci].rs[rsi].clone();
                for seq in candidates {
                    if self.try_issue(seq, now, min_unresolved, ci) {
                        issued[ci.min(7)] += 1;
                        self.clusters[ci].rs[rsi].retain(|&s| s != seq);
                        self.clusters[ci].station_occ[rsi] -= 1;
                    }
                }
            }
        }
        self.observe_issue(&issued);
    }

    /// Event-driven select: only entries whose operands have arrived are
    /// visited; non-issuers (FU or memory structural hazards) stay via
    /// in-place compaction instead of O(n) `retain` removals.
    fn select_event(&mut self, now: u64) {
        let min_unresolved = self.unresolved_stores.iter().next().copied();
        let mut issued = [0u32; 8];
        for ci in 0..self.clusters.len() {
            for rsi in 0..5 {
                self.clusters[ci].queues[rsi].promote(now);
                if self.clusters[ci].queues[rsi].ready.is_empty() {
                    continue;
                }
                let mut ready = std::mem::take(&mut self.clusters[ci].queues[rsi].ready);
                let mut keep = 0;
                for i in 0..ready.len() {
                    let seq = ready[i];
                    if self.try_issue(seq, now, min_unresolved, ci) {
                        issued[ci.min(7)] += 1;
                        self.clusters[ci].station_occ[rsi] -= 1;
                    } else {
                        ready[keep] = seq;
                        keep += 1;
                    }
                }
                ready.truncate(keep);
                self.clusters[ci].queues[rsi].ready = ready;
            }
        }
        self.observe_issue(&issued);
    }

    fn observe_issue(&mut self, issued: &[u32; 8]) {
        if self.probe_on {
            for ci in 0..self.clusters.len() {
                let n = u64::from(issued[ci.min(7)]);
                self.probe.observe(Hist::ClusterIssueOccupancy, n);
            }
        }
    }

    fn begin_execution(&mut self, seq: u64, now: u64, exec_lat: u64, critical: Option<usize>) {
        // Record forwarding statistics and execution feedback first.
        self.record_forwarding(seq, critical);
        let (cluster, op, addr) = {
            let e = self.entry(seq).expect("in ROB");
            (e.cluster as usize, e.inst.op, e.mem_addr)
        };
        self.stats.executed_per_cluster[cluster.min(7)] += 1;
        let complete = if op.is_load() {
            self.stats.loads += 1;
            let addr = addr.expect("loads carry an address");
            match self.mem.store_buffer().check_load(seq, addr) {
                StoreForward::Forwarded { .. } => {
                    self.stats.store_forwards += 1;
                    now + 2 // AGU + buffer forward
                }
                StoreForward::None => self.mem.access(AccessKind::Load, addr, now + 1).ready_cycle,
            }
        } else if op.is_store() {
            self.stats.stores += 1;
            let addr = addr.expect("stores carry an address");
            self.unresolved_stores.remove(&seq);
            self.mem.store_buffer().insert(seq, addr);
            self.mem.access(AccessKind::Store, addr, now + 1);
            now + 1 // address + data captured in the buffer
        } else {
            now + exec_lat
        };
        if self.debug_trace && now < 600 {
            let e = self.entry(seq).expect("in ROB");
            eprintln!(
                "t={now} exec seq={seq} pc={:#x} {} cl={} complete={complete}",
                e.pc, e.inst.op, e.cluster
            );
        }
        if self.event_driven {
            // Every completion cycle the memory system can produce is
            // strictly in the future, so the wheel never misses one.
            debug_assert!(complete > now);
            self.wheel.schedule(complete, seq);
        }
        let e = self.entry_mut(seq).expect("in ROB");
        e.stage = Stage::Executing { complete };
        e.exec_start = now;
        let wait = now - e.dispatched_at;
        let fu = e.inst.op.fu_type().index();
        self.stats.sum_rs_wait += wait;
        self.stats.rs_wait_by_fu[fu] += wait;
        self.stats.count_by_fu[fu] += 1;
    }

    /// Builds [`ExecFeedback`] and updates forwarding statistics as `seq`
    /// begins execution.
    fn record_forwarding(&mut self, seq: u64, critical: Option<usize>) {
        let e = self.entry(seq).expect("in ROB");
        let consumer_pc = e.pc;
        let consumer_cluster = e.cluster;
        let has_input = e.srcs.iter().any(|s| !matches!(s, SrcState::None));
        let critical_forwarded =
            critical.is_some_and(|c| matches!(e.srcs[c], SrcState::Forwarded { .. }));

        // Gather producer info for each forwarded source.
        let mut producers: [Option<ProducerInfo>; 2] = [None, None];
        for (i, s) in e.srcs.iter().enumerate() {
            if let SrcState::Forwarded {
                producer_seq,
                cluster,
                same_trace,
                ..
            } = *s
            {
                // Producer may have retired; fall back to minimal info.
                let (ppc, role, chain, loc) = match self.entry(producer_seq) {
                    Some(p) => (p.pc, p.profile.role, p.profile.chain_cluster, p.tc_loc),
                    None => (0, ctcp_tracecache::ChainRole::None, None, None),
                };
                producers[i] = Some(ProducerInfo {
                    pc: ppc,
                    cluster,
                    same_trace,
                    role,
                    chain_cluster: chain,
                    tc_location: loc,
                });
            }
        }

        if has_input {
            self.fwd.insts_with_inputs += 1;
            match (critical, critical_forwarded) {
                (Some(0), true) => self.fwd.crit_from_rs1 += 1,
                (Some(1), true) => self.fwd.crit_from_rs2 += 1,
                (Some(_), false) => self.fwd.crit_from_rf += 1,
                _ => {}
            }
        }
        for (i, p) in producers.iter().enumerate() {
            let Some(p) = p else { continue };
            if p.pc == 0 {
                // Retired producer with no recoverable identity: count the
                // forward but skip history.
                self.fwd.forwarded_inputs += 1;
            } else {
                self.fwd.forwarded_inputs += 1;
                self.history
                    .record(consumer_pc, i, p.pc, critical == Some(i), !p.same_trace);
            }
            if critical == Some(i) {
                self.fwd.forwarded_critical += 1;
                if !p.same_trace {
                    self.fwd.critical_inter_trace += 1;
                }
                let d = self.cfg.geometry.distance(p.cluster, consumer_cluster);
                if d == 0 {
                    self.fwd.critical_intra_cluster += 1;
                }
                self.fwd.critical_distance_sum += u64::from(d);
                if self.probe_on {
                    let lat = self.cfg.forward_latency(p.cluster, consumer_cluster);
                    self.probe.observe(Hist::ForwardLatency, lat);
                }
            }
        }

        let e = self.entry_mut(seq).expect("in ROB");
        e.feedback = ExecFeedback {
            executed_cluster: consumer_cluster,
            src_producers: producers,
            critical_src: critical.map(|c| c as u8),
            critical_forwarded,
        };
    }

    /// Legacy complete: scan the ROB for finishers, then broadcast each
    /// finisher against every entry's sources.
    fn complete_scan(&mut self, now: u64, redirects: &mut Vec<u64>) {
        let mut completed: Vec<(u64, u64, u8, u64)> = Vec::new(); // (seq, cycle, cluster, group)
        for e in self.rob.iter_mut() {
            if let Stage::Executing { complete } = e.stage {
                if complete <= now {
                    e.stage = Stage::Complete { at: complete };
                    completed.push((e.seq, complete, e.cluster, e.group));
                    if e.mispredicted {
                        redirects.push(e.seq);
                        self.stats.redirects += 1;
                    }
                }
            }
        }
        // Wakeup broadcast: resolve waiting consumers.
        let n = completed.len() as u64;
        let mut woken = 0u64;
        for (pseq, cycle, cluster, pgroup) in completed {
            for e in self.rob.iter_mut() {
                for s in e.srcs.iter_mut() {
                    if let SrcState::Waiting { producer_seq } = *s {
                        if producer_seq == pseq {
                            *s = SrcState::Forwarded {
                                producer_seq: pseq,
                                complete: cycle,
                                cluster,
                                same_trace: e.group == pgroup,
                            };
                            woken += 1;
                        }
                    }
                }
            }
        }
        self.note_completions(n, woken);
    }

    /// Event-driven complete: pop exactly the instructions finishing in
    /// `(last_tick, now]` from the wheel and wake only their registered
    /// consumers.
    fn complete_event(&mut self, now: u64, redirects: &mut Vec<u64>) {
        let mut events = std::mem::take(&mut self.scratch_events);
        let mut wakes = std::mem::take(&mut self.scratch_wakes);
        events.clear();
        self.wheel.drain_into(now, &mut events);
        let mut woken = 0u64;
        for &(at, seq) in &events {
            let e = self
                .rob
                .get_mut(seq)
                .expect("completing entries are in ROB");
            debug_assert!(matches!(e.stage, Stage::Executing { complete } if complete == at));
            e.stage = Stage::Complete { at };
            let (pcluster, pgroup) = (e.cluster, e.group);
            if e.mispredicted {
                redirects.push(seq);
                self.stats.redirects += 1;
            }
            let producer = Completed {
                seq,
                at,
                cluster: pcluster,
                group: pgroup,
            };
            let chain = e.cons_head;
            e.cons_head = NIL;
            e.cons_tail = NIL;
            wakes.clear();
            self.consumers.drain_into(chain, &mut wakes);
            for &(cseq, si) in &wakes {
                self.wake(cseq, usize::from(si), &producer, now);
            }
            woken += wakes.len() as u64;
        }
        // The wheel surfaces one cycle's completions in issue order; the
        // legacy scan reported them in program order. Sort so the two
        // paths stay observably identical.
        redirects.sort_unstable();
        self.note_completions(events.len() as u64, woken);
        self.scratch_events = events;
        self.scratch_wakes = wakes;
    }

    /// Resolves consumer `cseq`'s source `si` against `producer`, and
    /// files the consumer in its ready queue if that was its last
    /// outstanding operand.
    fn wake(&mut self, cseq: u64, si: usize, producer: &Completed, now: u64) {
        let c = self
            .rob
            .get_mut(cseq)
            .expect("registered consumers cannot retire before their producer");
        debug_assert!(
            matches!(c.srcs[si], SrcState::Waiting { producer_seq } if producer_seq == producer.seq)
        );
        c.srcs[si] = SrcState::Forwarded {
            producer_seq: producer.seq,
            complete: producer.at,
            cluster: producer.cluster,
            same_trace: c.group == producer.group,
        };
        let in_rs = matches!(c.stage, Stage::InRs);
        let resolved = !c.srcs.iter().any(|s| matches!(s, SrcState::Waiting { .. }));
        if !(in_rs && resolved) {
            // Not dispatched yet (dispatch files it) or still waiting on
            // another producer (that wakeup files it).
            return;
        }
        let (ccl, crs) = (c.cluster as usize, c.rs.index());
        let c = self.rob.get(cseq).expect("in ROB");
        let (ready_at, _) = self.readiness(c).expect("all sources resolved");
        self.clusters[ccl].queues[crs].push_at(ready_at, cseq, now);
    }

    fn note_completions(&mut self, completions: u64, woken: u64) {
        if self.probe_on {
            if completions > 0 {
                self.probe.counter(Counter::SchedCompletions, completions);
            }
            if woken > 0 {
                self.probe.counter(Counter::SchedWakeups, woken);
            }
        }
    }

    /// Builds the attribution record for a retiring entry: stage stamps
    /// plus per-source operand provenance (register file vs same-cluster
    /// bypass vs inter-cluster forward). Probe-on path only.
    fn attrib_of(&self, e: &Entry, complete_at: u64, now: u64) -> InstAttrib {
        let mut srcs = [SrcAttrib::default(); 2];
        for (i, s) in e.srcs.iter().enumerate() {
            srcs[i] = match *s {
                SrcState::None => SrcAttrib::default(),
                SrcState::RfReady { at } => SrcAttrib {
                    kind: SrcKind::RegFile,
                    arrival: at,
                    ..SrcAttrib::default()
                },
                // Unreachable at retire (producers are older and must
                // have completed), kept total for safety.
                SrcState::Waiting { producer_seq } => SrcAttrib {
                    kind: SrcKind::RegFile,
                    producer_seq,
                    ..SrcAttrib::default()
                },
                SrcState::Forwarded {
                    producer_seq,
                    complete,
                    cluster,
                    ..
                } => {
                    let hops = self.cfg.geometry.distance(cluster, e.cluster);
                    SrcAttrib {
                        kind: if hops == 0 {
                            SrcKind::Bypass
                        } else {
                            SrcKind::Forward
                        },
                        producer_seq,
                        producer_cluster: cluster,
                        hops,
                        complete,
                        arrival: self.arrival(s, e.cluster).unwrap_or(complete),
                    }
                }
            };
        }
        InstAttrib {
            seq: e.seq,
            pc: e.pc,
            cluster: e.cluster,
            renamed_at: e.renamed_at,
            dispatched_at: e.dispatched_at,
            exec_start: e.exec_start,
            complete_at,
            retired_at: now,
            srcs,
            critical_src: e.feedback.critical_src.map(usize::from),
        }
    }

    /// Classifies what the ROB head is waiting on at cycle `now` — the
    /// blame bucket for a retire slot that went unused this cycle.
    /// Returns `None` when the ROB is empty (the caller distinguishes
    /// the front-end causes: mispredict squash vs fetch starvation).
    ///
    /// Priority order (first match wins): an undispatched head is
    /// RS/dispatch pressure; a head in a station waiting on a critical
    /// operand still crossing the interconnect is inter-cluster delay;
    /// a head executing a load is memory; a head with arrived operands
    /// that has not issued is RS/dispatch (structural) pressure;
    /// everything else is base in-order drain.
    pub fn head_blame(&self, now: u64) -> Option<RetireSlotKind> {
        let head = self.rob.front()?;
        Some(match head.stage {
            Stage::AwaitDispatch { .. } => RetireSlotKind::RsDispatch,
            Stage::Complete { .. } => RetireSlotKind::Base,
            Stage::Executing { .. } => {
                if head.inst.op.is_load() {
                    RetireSlotKind::Memory
                } else {
                    RetireSlotKind::Base
                }
            }
            Stage::InRs => match self.readiness(head) {
                Some((ready, critical)) if ready > now => {
                    let in_transit = critical.map(|c| head.srcs[c]).is_some_and(|s| {
                        matches!(s, SrcState::Forwarded { cluster, .. }
                            if self.cfg.geometry.distance(cluster, head.cluster) > 0)
                    });
                    if in_transit {
                        RetireSlotKind::InterCluster
                    } else {
                        RetireSlotKind::Base
                    }
                }
                // Operands arrived (or a source is still unresolved,
                // which cannot happen at the head): structural pressure.
                _ => RetireSlotKind::RsDispatch,
            },
        })
    }

    fn retire_into(&mut self, now: u64, retired: &mut Vec<RetiredInst>) {
        while retired.len() < self.cfg.retire_width {
            let Some(head) = self.rob.front() else { break };
            let Stage::Complete { at } = head.stage else {
                break;
            };
            if at > now {
                break;
            }
            let e = self.rob.pop_front().expect("checked front");
            if let Stage::Complete { at } = e.stage {
                self.stats.sum_complete_to_retire += now - at;
                if self.probe_on {
                    self.probe.counter(Counter::Retired, 1);
                    self.probe.timeline(&InstTimeline {
                        seq: e.seq,
                        pc: e.pc,
                        cluster: e.cluster,
                        renamed_at: e.renamed_at,
                        dispatched_at: e.dispatched_at,
                        exec_start: e.exec_start,
                        complete_at: at,
                        retired_at: now,
                    });
                    self.probe.retire_attrib(&self.attrib_of(&e, at, now));
                }
            }
            if let Some(d) = e.inst.dest {
                if self.rat[d.index()] == Some(e.seq) {
                    self.rat[d.index()] = None;
                }
            }
            if e.inst.op.is_store() {
                self.mem.store_buffer().mark_retired(e.seq);
            }
            if e.inst.op.is_load() {
                self.mem.load_queue().remove(e.seq);
            }
            self.stats.retired += 1;
            retired.push(RetiredInst {
                seq: e.seq,
                pc: e.pc,
                index: e.index,
                inst: e.inst,
                mem_addr: e.mem_addr,
                taken: e.taken,
                group: e.group,
                from_tc: e.from_tc,
                tc_loc: e.tc_loc,
                profile: e.profile,
                cluster: e.cluster,
                feedback: e.feedback,
                retire_cycle: now,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctcp_isa::{Opcode, Reg};

    fn cfg() -> EngineConfig {
        EngineConfig::default()
    }

    fn fetched(seq: u64, inst: Instruction, slot: u8) -> FetchedInst {
        FetchedInst {
            seq,
            pc: 0x1000 + seq * 4,
            index: seq as u32,
            inst,
            mem_addr: None,
            taken: None,
            slot,
            group: 0,
            from_tc: false,
            tc_loc: None,
            profile: ProfileFields::default(),
            mispredicted: false,
        }
    }

    fn add(d: Reg, a: Reg, b: Reg) -> Instruction {
        Instruction::new(Opcode::Add, Some(d), Some(a), Some(b), 0)
    }

    fn run_until_drained(engine: &mut Engine, start: u64) -> (Vec<RetiredInst>, u64) {
        let mut retired = Vec::new();
        let mut now = start;
        for _ in 0..10_000 {
            let r = engine.tick(now);
            retired.extend(r.retired);
            now += 1;
            if engine.in_flight() == 0 {
                break;
            }
        }
        (retired, now)
    }

    /// Runs the same fetch groups through a legacy-scan engine and an
    /// event-driven engine in lockstep, asserting identical per-cycle
    /// results and identical final statistics. Returns the retired
    /// stream (from the event engine).
    fn assert_schedulers_agree(
        cfg: EngineConfig,
        mode: SteeringMode,
        groups: &[Vec<FetchedInst>],
    ) -> Vec<RetiredInst> {
        let mut legacy = Engine::new(cfg, mode);
        legacy.set_legacy_scheduler(true);
        let mut event = Engine::new(cfg, mode);
        event.set_legacy_scheduler(false);
        let mut gi = 0;
        let mut retired = Vec::new();
        for now in 0..50_000u64 {
            assert_eq!(
                legacy.in_flight(),
                event.in_flight(),
                "in-flight diverged at cycle {now}"
            );
            if gi < groups.len() && legacy.can_accept(groups[gi].len()) {
                legacy.accept(&groups[gi], now);
                event.accept(&groups[gi], now);
                gi += 1;
            }
            let rl = legacy.tick(now);
            let re = event.tick(now);
            assert_eq!(
                format!("{rl:?}"),
                format!("{re:?}"),
                "tick result diverged at cycle {now}"
            );
            retired.extend(re.retired);
            if gi == groups.len() && event.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(legacy.in_flight(), 0, "legacy engine did not drain");
        assert_eq!(event.in_flight(), 0, "event engine did not drain");
        assert_eq!(
            format!("{:?}", legacy.stats()),
            format!("{:?}", event.stats()),
            "engine stats diverged"
        );
        assert_eq!(
            format!("{:?}", legacy.forwarding_stats()),
            format!("{:?}", event.forwarding_stats()),
            "forwarding stats diverged"
        );
        retired
    }

    #[test]
    fn single_instruction_flows_through() {
        let mut e = Engine::new(cfg(), SteeringMode::Slot);
        e.accept(&[fetched(0, add(Reg::R1, Reg::R2, Reg::R3), 0)], 0);
        let (retired, _) = run_until_drained(&mut e, 1);
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].seq, 0);
        assert_eq!(retired[0].cluster, 0);
        assert_eq!(e.stats().retired, 1);
    }

    #[test]
    fn slot_steering_maps_slots_to_clusters() {
        let mut e = Engine::new(cfg(), SteeringMode::Slot);
        let group: Vec<FetchedInst> = (0..16)
            .map(|i| fetched(i, add(Reg::int(i as u8 % 8), Reg::R9, Reg::R10), i as u8))
            .collect();
        e.accept(&group, 0);
        let (retired, _) = run_until_drained(&mut e, 1);
        assert_eq!(retired.len(), 16);
        for r in &retired {
            assert_eq!(u64::from(r.cluster), r.seq / 4);
        }
    }

    #[test]
    fn retirement_is_in_program_order() {
        let mut e = Engine::new(cfg(), SteeringMode::Slot);
        // A slow op first (divide), then fast dependent-free adds.
        let mut group = vec![fetched(
            0,
            Instruction::new(Opcode::Div, Some(Reg::R1), Some(Reg::R2), Some(Reg::R3), 0),
            0,
        )];
        for i in 1..8 {
            group.push(fetched(
                i,
                add(Reg::int(10 + i as u8), Reg::R9, Reg::R9),
                i as u8,
            ));
        }
        e.accept(&group, 0);
        let (retired, _) = run_until_drained(&mut e, 1);
        let seqs: Vec<u64> = retired.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn dependent_instruction_waits_for_producer() {
        let mut e = Engine::new(cfg(), SteeringMode::Slot);
        // producer on cluster 0 (slot 0); consumer on cluster 3 (slot 12).
        let group = vec![
            fetched(0, add(Reg::R1, Reg::R9, Reg::R9), 0),
            fetched(1, add(Reg::R2, Reg::R1, Reg::R9), 12),
        ];
        e.accept(&group, 0);
        let (retired, _) = run_until_drained(&mut e, 1);
        assert_eq!(retired.len(), 2);
        let fb = retired[1].feedback;
        assert_eq!(fb.critical_src, Some(0));
        assert!(fb.critical_forwarded);
        let p = fb.src_producers[0].unwrap();
        assert_eq!(p.cluster, 0);
        // Distance 3 on a linear interconnect.
        assert_eq!(e.forwarding_stats().critical_distance_sum, 3);
        assert_eq!(e.forwarding_stats().critical_intra_cluster, 0);
    }

    #[test]
    fn same_cluster_forwarding_is_faster_than_cross_cluster() {
        let run = |consumer_slot: u8| -> u64 {
            let mut e = Engine::new(cfg(), SteeringMode::Slot);
            let group = vec![
                fetched(0, add(Reg::R1, Reg::R9, Reg::R9), 0),
                fetched(1, add(Reg::R2, Reg::R1, Reg::R9), consumer_slot),
            ];
            e.accept(&group, 0);
            let (retired, _) = run_until_drained(&mut e, 1);
            retired[1].retire_cycle
        };
        let same = run(1); // same cluster
        let far = run(12); // 3 hops away
        assert!(far >= same + 6, "far={far} same={same}");
    }

    #[test]
    fn issue_time_steers_to_producer_cluster() {
        let mut c = cfg();
        c.steer_latency = 0;
        let mut e = Engine::new(c, SteeringMode::IssueTime);
        // Producer then consumer: consumer should land on the producer's
        // cluster regardless of slots.
        let group = vec![
            fetched(0, add(Reg::R1, Reg::R9, Reg::R9), 0),
            fetched(1, add(Reg::R2, Reg::R1, Reg::R9), 15),
        ];
        e.accept(&group, 0);
        let (retired, _) = run_until_drained(&mut e, 1);
        assert_eq!(retired[0].cluster, retired[1].cluster);
    }

    #[test]
    fn issue_time_respects_per_cluster_limit() {
        let mut e = Engine::new(cfg(), SteeringMode::IssueTime);
        // 16 independent instructions: must spread 4 per cluster.
        let group: Vec<FetchedInst> = (0..16)
            .map(|i| fetched(i, add(Reg::int((i % 8) as u8), Reg::R9, Reg::R10), 0))
            .collect();
        e.accept(&group, 0);
        let (retired, _) = run_until_drained(&mut e, 1);
        let mut counts = [0; 4];
        for r in &retired {
            counts[r.cluster as usize] += 1;
        }
        assert_eq!(counts, [4, 4, 4, 4]);
    }

    #[test]
    fn store_load_forwarding_hits_buffer() {
        let mut e = Engine::new(cfg(), SteeringMode::Slot);
        let st = Instruction::new(Opcode::St, None, Some(Reg::R1), Some(Reg::R2), 0);
        let ld = Instruction::new(Opcode::Ld, Some(Reg::R3), Some(Reg::R1), None, 0);
        let mut g0 = fetched(0, st, 0);
        g0.mem_addr = Some(0x9000);
        let mut g1 = fetched(1, ld, 1);
        g1.mem_addr = Some(0x9000);
        e.accept(&[g0, g1], 0);
        let (retired, _) = run_until_drained(&mut e, 1);
        assert_eq!(retired.len(), 2);
        assert_eq!(e.stats().store_forwards, 1);
    }

    #[test]
    fn load_waits_for_unresolved_older_store_address() {
        // Store whose address operand is produced late (div), followed by
        // a load: the load must not complete before the store resolves.
        let mut e = Engine::new(cfg(), SteeringMode::Slot);
        let div = Instruction::new(Opcode::Div, Some(Reg::R1), Some(Reg::R2), Some(Reg::R3), 0);
        let st = Instruction::new(Opcode::St, None, Some(Reg::R1), Some(Reg::R4), 0);
        let ld = Instruction::new(Opcode::Ld, Some(Reg::R5), Some(Reg::R6), None, 0);
        let mut s = fetched(1, st, 1);
        s.mem_addr = Some(0x5000);
        let mut l = fetched(2, ld, 2);
        l.mem_addr = Some(0x6000);
        e.accept(&[fetched(0, div, 0), s, l], 0);
        let (retired, _) = run_until_drained(&mut e, 1);
        // div takes 20 cycles; the load, though independent, retires after
        // the store resolves -> all in order anyway; check the load's
        // retire is not absurdly early by checking total cycles > 20.
        assert!(retired[2].retire_cycle > 20);
    }

    #[test]
    fn loads_wait_on_older_unresolved_store_across_clusters() {
        // The store's address is produced late (div) on cluster 0;
        // younger loads sit on clusters 1..3 with their own (disjoint)
        // addresses. Without speculative disambiguation none of them may
        // begin execution until the store's address resolves — and the
        // ready-queue scheduler must reproduce the scan scheduler's
        // behaviour cycle for cycle while they wait.
        let div = Instruction::new(Opcode::Div, Some(Reg::R1), Some(Reg::R2), Some(Reg::R3), 0);
        let st = Instruction::new(Opcode::St, None, Some(Reg::R1), Some(Reg::R4), 0);
        let mut s = fetched(1, st, 1);
        s.mem_addr = Some(0x5000);
        let mut group = vec![fetched(0, div, 0), s];
        for i in 0..3u64 {
            let ld = Instruction::new(
                Opcode::Ld,
                Some(Reg::int(5 + i as u8)),
                Some(Reg::R9),
                None,
                0,
            );
            let mut l = fetched(2 + i, ld, (4 * (i + 1)) as u8); // clusters 1, 2, 3
            l.mem_addr = Some(0x6000 + 0x100 * i);
            group.push(l);
        }
        let retired = assert_schedulers_agree(cfg(), SteeringMode::Slot, &[group]);
        assert_eq!(retired.len(), 5);
        // The div (latency 20) gates the store; every load must retire
        // after the store's address resolved, despite disjoint addresses
        // and free load ports on their clusters.
        let store_retire = retired[1].retire_cycle;
        for r in &retired[2..] {
            assert!(r.cluster >= 1, "loads sit on remote clusters");
            assert!(
                r.retire_cycle >= store_retire && r.retire_cycle > 20,
                "load seq {} retired at {} before the store resolved",
                r.seq,
                r.retire_cycle
            );
        }
    }

    #[test]
    fn schedulers_agree_on_cross_cluster_chains() {
        // Mixed-latency dependency chains spanning clusters, several
        // groups deep, under slot steering.
        let mut groups = Vec::new();
        let mut seq = 0u64;
        for g in 0..6u64 {
            let mut group = Vec::new();
            for i in 0..8u64 {
                let slot = ((i * 3 + g) % 16) as u8;
                let inst = match i % 4 {
                    0 => Instruction::new(
                        Opcode::Div,
                        Some(Reg::int((i % 8) as u8)),
                        Some(Reg::R9),
                        Some(Reg::R10),
                        0,
                    ),
                    1 => Instruction::new(
                        Opcode::Mul,
                        Some(Reg::int((i % 8) as u8)),
                        Some(Reg::int(((i + 3) % 8) as u8)),
                        Some(Reg::R9),
                        0,
                    ),
                    _ => add(
                        Reg::int((i % 8) as u8),
                        Reg::int(((i + 1) % 8) as u8),
                        Reg::int(((i + 5) % 8) as u8),
                    ),
                };
                let mut f = fetched(seq, inst, slot);
                f.group = g;
                group.push(f);
                seq += 1;
            }
            groups.push(group);
        }
        assert_schedulers_agree(cfg(), SteeringMode::Slot, &groups);
        assert_schedulers_agree(cfg(), SteeringMode::IssueTime, &groups);
    }

    #[test]
    fn schedulers_agree_on_random_mix() {
        // Deterministic LCG-generated soup of ALU ops, loads, stores and
        // branches across many fetch groups, run under both steering
        // modes. This is the broadest engine-level differential net; the
        // sim-level test covers full benchmarks.
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rnd = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let mut groups = Vec::new();
        let mut seq = 0u64;
        for g in 0..40u64 {
            let n = 1 + (rnd() % 16);
            let mut group = Vec::new();
            for _ in 0..n {
                let d = Reg::int((rnd() % 8) as u8);
                let a = Reg::int((rnd() % 12) as u8);
                let b = Reg::int((rnd() % 12) as u8);
                let slot = (seq % 16) as u8;
                let mut f = match rnd() % 10 {
                    0 => fetched(
                        seq,
                        Instruction::new(Opcode::Div, Some(d), Some(a), Some(b), 0),
                        slot,
                    ),
                    1 | 2 => {
                        let mut f = fetched(
                            seq,
                            Instruction::new(Opcode::Ld, Some(d), Some(a), None, 0),
                            slot,
                        );
                        f.mem_addr = Some((rnd() % 0x4000) * 8);
                        f
                    }
                    3 => {
                        let mut f = fetched(
                            seq,
                            Instruction::new(Opcode::St, None, Some(a), Some(b), 0),
                            slot,
                        );
                        f.mem_addr = Some((rnd() % 0x4000) * 8);
                        f
                    }
                    4 => {
                        let mut f = fetched(
                            seq,
                            Instruction::new(Opcode::Bne, None, Some(a), Some(b), 0),
                            slot,
                        );
                        f.taken = Some(rnd() % 2 == 0);
                        f.mispredicted = rnd() % 4 == 0;
                        f
                    }
                    5 => fetched(
                        seq,
                        Instruction::new(Opcode::Mul, Some(d), Some(a), Some(b), 0),
                        slot,
                    ),
                    _ => fetched(seq, add(d, a, b), slot),
                };
                f.group = g;
                group.push(f);
                seq += 1;
            }
            groups.push(group);
        }
        assert_schedulers_agree(cfg(), SteeringMode::Slot, &groups);
        assert_schedulers_agree(cfg(), SteeringMode::IssueTime, &groups);
    }

    #[test]
    fn mispredicted_branch_reports_redirect() {
        let mut e = Engine::new(cfg(), SteeringMode::Slot);
        let br = Instruction::new(Opcode::Bne, None, Some(Reg::R1), Some(Reg::R2), 0);
        let mut f = fetched(0, br, 0);
        f.mispredicted = true;
        f.taken = Some(true);
        e.accept(&[f], 0);
        let mut redirected = false;
        for now in 1..=100 {
            let r = e.tick(now);
            if !r.redirects.is_empty() {
                assert_eq!(r.redirects, vec![0]);
                redirected = true;
            }
            if e.in_flight() == 0 {
                break;
            }
        }
        assert!(redirected);
        assert_eq!(e.stats().redirects, 1);
    }

    #[test]
    fn rob_capacity_gates_accept() {
        let mut c = cfg();
        c.rob_entries = 8;
        let e = Engine::new(c, SteeringMode::Slot);
        assert!(e.can_accept(8));
        assert!(!e.can_accept(9));
    }

    #[test]
    fn rf_latency_delays_first_use() {
        // With rf_latency = 2, an instruction renamed at cycle 0 cannot
        // execute before cycle 2.
        let mut e = Engine::new(cfg(), SteeringMode::Slot);
        e.accept(&[fetched(0, add(Reg::R1, Reg::R2, Reg::R3), 0)], 0);
        let (retired, _) = run_until_drained(&mut e, 1);
        // execute at >= 2, complete >= 3, retire >= 3.
        assert!(retired[0].retire_cycle >= 3);
    }

    #[test]
    fn no_forward_latency_override_speeds_up_cross_cluster() {
        let run = |ov: LatencyOverrides| -> u64 {
            let mut c = cfg();
            c.overrides = ov;
            let mut e = Engine::new(c, SteeringMode::Slot);
            let group = vec![
                fetched(0, add(Reg::R1, Reg::R9, Reg::R9), 0),
                fetched(1, add(Reg::R2, Reg::R1, Reg::R9), 12),
            ];
            e.accept(&group, 0);
            let (retired, _) = run_until_drained(&mut e, 1);
            retired[1].retire_cycle
        };
        use crate::LatencyOverrides;
        let base = run(LatencyOverrides::default());
        let ideal = run(LatencyOverrides {
            no_forward_latency: true,
            ..Default::default()
        });
        let crit = run(LatencyOverrides {
            no_critical_forward_latency: true,
            ..Default::default()
        });
        assert!(ideal < base);
        assert_eq!(crit, ideal, "single forwarded input is the critical one");
    }

    #[test]
    fn latency_overrides_agree_across_schedulers() {
        use crate::LatencyOverrides;
        for ov in [
            LatencyOverrides {
                no_forward_latency: true,
                ..Default::default()
            },
            LatencyOverrides {
                no_intra_trace_latency: true,
                ..Default::default()
            },
            LatencyOverrides {
                no_inter_trace_latency: true,
                ..Default::default()
            },
            LatencyOverrides {
                no_critical_forward_latency: true,
                ..Default::default()
            },
        ] {
            let mut c = cfg();
            c.overrides = ov;
            let mut groups = Vec::new();
            for g in 0..4u64 {
                let group: Vec<FetchedInst> = (0..8u64)
                    .map(|i| {
                        let seq = g * 8 + i;
                        let mut f = fetched(
                            seq,
                            add(
                                Reg::int((seq % 8) as u8),
                                Reg::int(((seq + 2) % 8) as u8),
                                Reg::int(((seq + 5) % 10) as u8),
                            ),
                            ((seq * 5) % 16) as u8,
                        );
                        f.group = g;
                        f
                    })
                    .collect();
                groups.push(group);
            }
            assert_schedulers_agree(c, SteeringMode::Slot, &groups);
        }
    }
}
