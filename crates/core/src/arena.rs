//! Recyclable, data-oriented storage for the engine's hot state.
//!
//! Constructing an [`Engine`](crate::Engine) allocates a ROB ring, a
//! 256-slot completion wheel, per-cluster dispatch queues, per-RS
//! ready/pending lists, and a consumer-list slab. For a single long
//! simulation that cost is noise; for a sweep that interleaves hundreds
//! of short cells on one worker thread it dominates, and it scatters
//! every cell's hot state across fresh, cache-cold allocations.
//!
//! [`EngineArena`] is the remedy: one bundle holding every recyclable
//! allocation an engine owns. [`Engine::with_arena`](crate::Engine)
//! builds an engine out of a (possibly used) arena, clearing contents
//! but keeping capacity; [`Engine::into_arena`](crate::Engine) harvests
//! the storage back when the engine is dropped. A batch runner that
//! round-trips one arena through consecutive cells reaches steady state
//! after the first cell: everything after that runs with warm caches
//! and zero construction allocation.
//!
//! [`ConsumerArena`] is the data-oriented half: wakeup lists, formerly
//! one `Vec<(u64, u8)>` per ROB entry, live in a single
//! struct-of-arrays slab of singly linked nodes. Entries carry two
//! `u32` handles (head and tail of their chain) instead of a vector,
//! which shrinks the entry, removes per-entry allocations entirely, and
//! keeps all wakeup traffic inside one slab.

use crate::entry::Entry;
use std::collections::VecDeque;

/// Null handle for [`ConsumerArena`] chains.
pub(crate) const NIL: u32 = u32::MAX;

/// Struct-of-arrays slab of wakeup-list nodes. Each node is one
/// `(consumer_seq, src_index)` registration; chains are threaded
/// through `next` and owned by the producer's ROB entry via its
/// `cons_head`/`cons_tail` handles. Freed nodes go on an intrusive
/// free list, so steady state allocates nothing.
#[derive(Debug)]
pub(crate) struct ConsumerArena {
    seqs: Vec<u64>,
    ops: Vec<u8>,
    next: Vec<u32>,
    free_head: u32,
}

impl Default for ConsumerArena {
    fn default() -> Self {
        ConsumerArena {
            seqs: Vec::new(),
            ops: Vec::new(),
            next: Vec::new(),
            free_head: NIL,
        }
    }
}

impl ConsumerArena {
    fn alloc(&mut self, seq: u64, op: u8) -> u32 {
        if self.free_head != NIL {
            let n = self.free_head;
            let i = n as usize;
            self.free_head = self.next[i];
            self.seqs[i] = seq;
            self.ops[i] = op;
            self.next[i] = NIL;
            n
        } else {
            let n = u32::try_from(self.seqs.len()).expect("consumer slab exceeds u32 handles");
            self.seqs.push(seq);
            self.ops.push(op);
            self.next.push(NIL);
            n
        }
    }

    /// Appends a `(seq, op)` registration to the chain whose handles the
    /// caller owns, updating them in place.
    pub(crate) fn append(&mut self, head: &mut u32, tail: &mut u32, seq: u64, op: u8) {
        let n = self.alloc(seq, op);
        if *head == NIL {
            *head = n;
        } else {
            self.next[*tail as usize] = n;
        }
        *tail = n;
    }

    /// Drains the chain starting at `head` into `out` in insertion
    /// order, returning every node to the free list.
    pub(crate) fn drain_into(&mut self, head: u32, out: &mut Vec<(u64, u8)>) {
        let mut n = head;
        while n != NIL {
            let i = n as usize;
            out.push((self.seqs[i], self.ops[i]));
            let next = self.next[i];
            self.next[i] = self.free_head;
            self.free_head = n;
            n = next;
        }
    }

    /// Forgets every chain and every free node, keeping capacity.
    pub(crate) fn clear(&mut self) {
        self.seqs.clear();
        self.ops.clear();
        self.next.clear();
        self.free_head = NIL;
    }
}

/// Every recyclable allocation one [`Engine`](crate::Engine) owns: the
/// ROB ring, the consumer slab, the completion wheel's slot vectors,
/// scratch buffers, and pools of per-cluster queue storage. Obtain a
/// fresh one with `EngineArena::default()`, pass it to
/// [`Engine::with_arena`](crate::Engine::with_arena), and harvest it
/// back with [`Engine::into_arena`](crate::Engine::into_arena) to reuse
/// across consecutive simulations. Contents are cleared (capacity kept)
/// when the next engine is built from it, so reuse cannot leak state
/// between runs.
#[derive(Debug, Default)]
pub struct EngineArena {
    pub(crate) entries: VecDeque<Entry>,
    pub(crate) consumers: ConsumerArena,
    pub(crate) wheel_slots: Vec<Vec<(u64, u64)>>,
    pub(crate) events: Vec<(u64, u64)>,
    pub(crate) wakes: Vec<(u64, u8)>,
    pub(crate) steer_counts: Vec<u32>,
    pub(crate) dispatch_qs: Vec<VecDeque<u64>>,
    pub(crate) seq_lists: Vec<Vec<u64>>,
    pub(crate) pending_lists: Vec<Vec<(u64, u64)>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_keep_insertion_order_and_recycle_nodes() {
        let mut a = ConsumerArena::default();
        let (mut h1, mut t1) = (NIL, NIL);
        let (mut h2, mut t2) = (NIL, NIL);
        a.append(&mut h1, &mut t1, 10, 0);
        a.append(&mut h2, &mut t2, 20, 1);
        a.append(&mut h1, &mut t1, 11, 1);
        a.append(&mut h1, &mut t1, 12, 0);
        let mut out = Vec::new();
        a.drain_into(h1, &mut out);
        assert_eq!(out, vec![(10, 0), (11, 1), (12, 0)]);
        out.clear();
        a.drain_into(h2, &mut out);
        assert_eq!(out, vec![(20, 1)]);
        // All four nodes are free now: new chains reuse them without
        // growing the slab.
        let before = a.seqs.len();
        let (mut h3, mut t3) = (NIL, NIL);
        for k in 0..4 {
            a.append(&mut h3, &mut t3, k, 0);
        }
        assert_eq!(a.seqs.len(), before, "free list must be reused");
        out.clear();
        a.drain_into(h3, &mut out);
        assert_eq!(out, vec![(0, 0), (1, 0), (2, 0), (3, 0)]);
    }

    #[test]
    fn clear_resets_chains_and_free_list() {
        let mut a = ConsumerArena::default();
        let (mut h, mut t) = (NIL, NIL);
        a.append(&mut h, &mut t, 1, 0);
        a.clear();
        let (mut h2, mut t2) = (NIL, NIL);
        a.append(&mut h2, &mut t2, 7, 1);
        let mut out = Vec::new();
        a.drain_into(h2, &mut out);
        assert_eq!(out, vec![(7, 1)]);
    }
}
