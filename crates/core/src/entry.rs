//! In-flight instruction state (ROB entries).

use crate::RsClass;
use ctcp_isa::Instruction;
use ctcp_tracecache::{ProfileFields, TcLocation};

/// Resolution state of one source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SrcState {
    /// No register source (or the zero register).
    None,
    /// Value comes from the register file, readable at the given cycle.
    RfReady { at: u64 },
    /// Value comes from an in-flight producer that has not completed.
    Waiting { producer_seq: u64 },
    /// Producer has completed: the raw result exists at `complete` on
    /// `cluster`; consumers add forwarding latency by distance.
    Forwarded {
        producer_seq: u64,
        complete: u64,
        cluster: u8,
        /// Producer fetched in the same trace/fetch group as the consumer.
        same_trace: bool,
    },
}

/// Pipeline stage of an in-flight instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Stage {
    /// Steered, waiting to be written into a reservation station.
    AwaitDispatch { at: u64 },
    /// In a reservation station, waiting for operands / functional unit.
    InRs,
    /// Executing; result at `complete`.
    Executing { complete: u64 },
    /// Result produced; eligible to retire when it reaches the ROB head.
    Complete { at: u64 },
}

/// One in-flight instruction, from rename to retirement. Lives in the
/// engine's ROB (a `VecDeque` indexed by sequence number offset).
#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub seq: u64,
    pub pc: u64,
    pub index: u32,
    pub inst: Instruction,
    pub mem_addr: Option<u64>,
    pub taken: Option<bool>,
    /// Fetch-group id (trace identity for inter/intra-trace decisions).
    pub group: u64,
    pub from_tc: bool,
    pub tc_loc: Option<TcLocation>,
    pub profile: ProfileFields,
    /// Assigned cluster.
    pub cluster: u8,
    /// Reservation station within the cluster.
    pub rs: RsClass,
    pub srcs: [SrcState; 2],
    pub stage: Stage,
    /// The branch was mispredicted at fetch; its completion redirects the
    /// front-end.
    pub mispredicted: bool,
    /// Cycle rename accepted the instruction into the window.
    pub renamed_at: u64,
    /// Cycle the instruction entered a reservation station.
    pub dispatched_at: u64,
    /// Cycle execution began.
    pub exec_start: u64,
    /// Execution feedback being accumulated for the fill unit.
    pub feedback: ctcp_tracecache::ExecFeedback,
    /// Head of this entry's wakeup chain in the engine's
    /// [`ConsumerArena`](crate::arena::ConsumerArena): the
    /// `(consumer_seq, src_index)` registrations made at rename for each
    /// in-flight instruction still waiting on this entry's result.
    /// Completion resolves exactly these sources, so no ROB-wide
    /// broadcast is needed. `NIL` when empty; drained (nodes returned to
    /// the slab's free list) when this entry completes.
    pub cons_head: u32,
    /// Tail of the wakeup chain, so registration appends in O(1) and the
    /// drain preserves insertion order.
    pub cons_tail: u32,
}

impl Entry {
    /// Completion cycle, if complete or executing.
    pub(crate) fn complete_cycle(&self) -> Option<u64> {
        match self.stage {
            Stage::Executing { complete } => Some(complete),
            Stage::Complete { at } => Some(at),
            _ => None,
        }
    }
}
