//! Reservation station classes.

use ctcp_isa::OpClass;

/// The five reservation stations of one cluster (Figure 3): one for
/// memory operations (integer and FP), one for branches, one for complex
/// arithmetic (integer and FP), and two for simple operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RsClass {
    /// First simple-operation station.
    Simple0,
    /// Second simple-operation station.
    Simple1,
    /// Memory operations (integer + FP).
    Mem,
    /// Branches.
    Br,
    /// Complex arithmetic (integer + FP).
    Cpx,
}

impl RsClass {
    /// All classes, in dense-index order.
    pub const ALL: [RsClass; 5] = [
        RsClass::Simple0,
        RsClass::Simple1,
        RsClass::Mem,
        RsClass::Br,
        RsClass::Cpx,
    ];

    /// Dense index in `0..5`.
    pub fn index(self) -> usize {
        match self {
            RsClass::Simple0 => 0,
            RsClass::Simple1 => 1,
            RsClass::Mem => 2,
            RsClass::Br => 3,
            RsClass::Cpx => 4,
        }
    }

    /// The station an operation class is routed to. Simple operations
    /// alternate between the two simple stations using `balance` (e.g. a
    /// per-cluster toggle or occupancy hint).
    pub fn route(class: OpClass, balance: bool) -> RsClass {
        match class {
            OpClass::SimpleInt | OpClass::FpBasic => {
                if balance {
                    RsClass::Simple1
                } else {
                    RsClass::Simple0
                }
            }
            OpClass::Load | OpClass::Store | OpClass::FpLoad | OpClass::FpStore => RsClass::Mem,
            OpClass::Branch => RsClass::Br,
            OpClass::ComplexInt | OpClass::FpComplex => RsClass::Cpx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_matches_figure3() {
        assert_eq!(RsClass::route(OpClass::SimpleInt, false), RsClass::Simple0);
        assert_eq!(RsClass::route(OpClass::SimpleInt, true), RsClass::Simple1);
        assert_eq!(RsClass::route(OpClass::FpBasic, false), RsClass::Simple0);
        assert_eq!(RsClass::route(OpClass::Load, false), RsClass::Mem);
        assert_eq!(RsClass::route(OpClass::FpStore, true), RsClass::Mem);
        assert_eq!(RsClass::route(OpClass::Branch, false), RsClass::Br);
        assert_eq!(RsClass::route(OpClass::ComplexInt, false), RsClass::Cpx);
        assert_eq!(RsClass::route(OpClass::FpComplex, true), RsClass::Cpx);
    }

    #[test]
    fn indices_are_dense() {
        for (i, c) in RsClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
