//! Pipeline-state diagnostics.
//!
//! When the retire-progress watchdog aborts a wedged simulation it
//! needs to say *where* the pipeline stopped, not just that it did. A
//! [`PipelineDiagnostic`] is a cheap, self-contained snapshot of the
//! engine taken at trip time: the head of the reorder buffer (the
//! instruction everything is stuck behind), total in-flight count, and
//! per-cluster queue occupancy. It is plain data with a `Display`
//! rendering so error types can embed and print it without holding any
//! reference into the engine.

use std::fmt;

/// Queue occupancy of one execution cluster at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterOccupancy {
    /// Instructions steered to the cluster but not yet written into a
    /// reservation station.
    pub dispatch: usize,
    /// Residents across all five reservation stations.
    pub stations: usize,
}

/// A point-in-time snapshot of the engine's macroscopic state, taken by
/// [`Engine::diagnostic`](crate::Engine::diagnostic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineDiagnostic {
    /// Cycle the snapshot was taken.
    pub cycle: u64,
    /// Instructions retired so far.
    pub retired: u64,
    /// In-flight instructions (reorder-buffer residents).
    pub in_flight: usize,
    /// Sequence number of the oldest in-flight instruction — the one
    /// the whole window is waiting on. `None` when the ROB is empty
    /// (the stall is in the front end, not the engine).
    pub head_seq: Option<u64>,
    /// `Debug` rendering of the head instruction's pipeline stage.
    pub head_stage: Option<String>,
    /// Cluster the head instruction was assigned to.
    pub head_cluster: Option<u8>,
    /// Per-cluster queue occupancy, indexed by cluster id.
    pub clusters: Vec<ClusterOccupancy>,
}

impl fmt::Display for PipelineDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {}, {} retired, {} in flight",
            self.cycle, self.retired, self.in_flight
        )?;
        match (self.head_seq, &self.head_stage, self.head_cluster) {
            (Some(seq), Some(stage), Some(cluster)) => {
                write!(f, "; rob head seq {seq} [{stage}] on cluster {cluster}")?;
            }
            _ => write!(f, "; rob empty (front-end stall)")?,
        }
        write!(f, "; occupancy (dispatch+rs)")?;
        for (i, c) in self.clusters.iter().enumerate() {
            write!(f, " c{i}:{}+{}", c.dispatch, c.stations)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_head_and_occupancy() {
        let d = PipelineDiagnostic {
            cycle: 500,
            retired: 42,
            in_flight: 7,
            head_seq: Some(42),
            head_stage: Some("InRs".into()),
            head_cluster: Some(1),
            clusters: vec![
                ClusterOccupancy {
                    dispatch: 2,
                    stations: 3,
                },
                ClusterOccupancy {
                    dispatch: 0,
                    stations: 2,
                },
            ],
        };
        let s = d.to_string();
        assert!(s.contains("cycle 500"), "{s}");
        assert!(s.contains("rob head seq 42 [InRs] on cluster 1"), "{s}");
        assert!(s.contains("c0:2+3 c1:0+2"), "{s}");
    }

    #[test]
    fn renders_empty_rob() {
        let d = PipelineDiagnostic {
            cycle: 9,
            retired: 0,
            in_flight: 0,
            head_seq: None,
            head_stage: None,
            head_cluster: None,
            clusters: vec![],
        };
        assert!(d.to_string().contains("rob empty"), "{d}");
    }
}
