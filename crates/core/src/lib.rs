//! # Clustered out-of-order execution engine
//!
//! The paper's primary contribution lives here: a 16-wide execution core
//! partitioned into four 4-wide clusters (Figures 1–3 of Bhargava & John,
//! ISCA 2003) together with **all four dynamic cluster-assignment
//! strategies** the paper evaluates:
//!
//! * slot-based **baseline** steering (cluster = slot / 4),
//! * **issue-time** dependency steering with configurable latency,
//! * **Friendly et al.** retire-time reordering (intra-trace dependencies
//!   only),
//! * **FDRT** — the proposed feedback-directed retire-time assignment with
//!   inter-trace cluster chaining, leader pinning, and the Table 5
//!   priority policy.
//!
//! Each cluster has five 8-entry reservation stations (two write ports
//! each) feeding eight special-purpose functional units; intra-cluster
//! forwarding is free while inter-cluster forwarding costs 2 cycles per
//! hop on a linear (or, optionally, ring/mesh) interconnect.
//!
//! The [`Engine`] consumes fetched-and-slotted instructions from the
//! front-end, executes them, and returns retired instructions carrying the
//! [`ctcp_tracecache::ExecFeedback`] the fill unit's FDRT strategy feeds
//! on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
pub mod assign;
mod config;
mod diag;
mod engine;
mod entry;
mod forwarding;
mod fu;
mod geometry;
mod rob;
mod rs;
mod sched;

pub use arena::EngineArena;
pub use config::{EngineConfig, FuLatency, LatencyOverrides};
pub use diag::{ClusterOccupancy, PipelineDiagnostic};
pub use engine::{
    Engine, EngineMetrics, EngineStats, FetchedInst, RetiredInst, SteeringMode, TickResult,
};
pub use forwarding::{ForwardingStats, ProducerHistory};
pub use geometry::{ClusterGeometry, Topology};
pub use rs::RsClass;
