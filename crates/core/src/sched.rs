//! Event-driven scheduling structures: the completion wheel and the
//! per-reservation-station ready queues.
//!
//! Both exist to remove the per-cycle O(ROB) scans from the engine's
//! `complete` and `select_and_execute` phases. A finish cycle is fixed
//! the moment execution begins, so completions live in a calendar queue
//! ([`CompletionWheel`]) and are popped exactly when due. A source's
//! arrival cycle is fixed the moment its last producer completes (or at
//! dispatch when nothing is outstanding), so selectable instructions
//! live in [`ReadyQueue`]s keyed by that cycle instead of being
//! re-polled with `readiness()` every cycle.

/// Number of slots in the completion wheel. Must comfortably exceed the
/// longest single-instruction latency (worst case is a load that misses
/// to memory plus MSHR queueing, well under 200 cycles), so events
/// almost never sit more than one lap out.
const WHEEL_SLOTS: usize = 256;

/// A calendar queue of `(complete_cycle, seq)` events keyed by finish
/// cycle modulo [`WHEEL_SLOTS`]. Each slot holds the events for every
/// lap, with a residual check on drain, so multi-lap latencies are
/// correct (just slightly slower to pop).
pub(crate) struct CompletionWheel {
    slots: Vec<Vec<(u64, u64)>>,
    /// Last cycle fully drained; events are only scheduled after it.
    cursor: u64,
    len: usize,
}

impl CompletionWheel {
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        CompletionWheel::from_slots(Vec::new())
    }

    /// An empty wheel built from recycled slot storage: each recycled
    /// slot vector is cleared (capacity kept) and the slot count is
    /// topped back up to [`WHEEL_SLOTS`].
    pub(crate) fn from_slots(mut slots: Vec<Vec<(u64, u64)>>) -> Self {
        for slot in &mut slots {
            slot.clear();
        }
        slots.resize_with(WHEEL_SLOTS, Vec::new);
        slots.truncate(WHEEL_SLOTS);
        CompletionWheel {
            slots,
            cursor: 0,
            len: 0,
        }
    }

    /// Tears the wheel down to its slot storage for arena recycling.
    pub(crate) fn into_slots(self) -> Vec<Vec<(u64, u64)>> {
        self.slots
    }

    /// Schedules `seq` to complete at `complete`, which must be in the
    /// future relative to the last `drain_into` call.
    pub(crate) fn schedule(&mut self, complete: u64, seq: u64) {
        debug_assert!(
            complete > self.cursor,
            "completion at {complete} scheduled after cycle {} was drained",
            self.cursor
        );
        self.slots[(complete as usize) % WHEEL_SLOTS].push((complete, seq));
        self.len += 1;
    }

    /// Appends every event due in `(cursor, now]` to `out`, ordered by
    /// cycle (events within one cycle keep their scheduling order).
    pub(crate) fn drain_into(&mut self, now: u64, out: &mut Vec<(u64, u64)>) {
        if now <= self.cursor {
            return;
        }
        if self.len == 0 {
            self.cursor = now;
            return;
        }
        if now - self.cursor >= WHEEL_SLOTS as u64 {
            // Catch-up path for a caller that skipped far ahead: one pass
            // over every slot, then sort for a deterministic cycle order.
            let start = out.len();
            for slot in &mut self.slots {
                let mut keep = 0;
                for i in 0..slot.len() {
                    let ev = slot[i];
                    if ev.0 <= now {
                        out.push(ev);
                    } else {
                        slot[keep] = ev;
                        keep += 1;
                    }
                }
                slot.truncate(keep);
            }
            self.len -= out.len() - start;
            out[start..].sort_unstable();
            self.cursor = now;
            return;
        }
        for cycle in (self.cursor + 1)..=now {
            let slot = &mut self.slots[(cycle as usize) % WHEEL_SLOTS];
            if slot.is_empty() {
                continue;
            }
            // Residual entries from later laps stay; in-place compaction
            // avoids any per-cycle allocation.
            let mut keep = 0;
            for i in 0..slot.len() {
                let ev = slot[i];
                if ev.0 == cycle {
                    out.push(ev);
                    self.len -= 1;
                } else {
                    slot[keep] = ev;
                    keep += 1;
                }
            }
            slot.truncate(keep);
        }
        self.cursor = now;
    }
}

/// Instructions in one reservation station, partitioned by whether
/// their operands have arrived. `ready` is kept in ascending sequence
/// order so selection visits candidates in the same (program) order the
/// legacy scan did; `pending` is ordered by `(ready_at, seq)` so
/// promotion is a prefix drain.
#[derive(Debug, Default)]
pub(crate) struct ReadyQueue {
    /// Selectable now (operands arrived), ascending seq.
    pub(crate) ready: Vec<u64>,
    /// Operands arrive at a known future cycle, ascending `(at, seq)`.
    pending: Vec<(u64, u64)>,
}

impl ReadyQueue {
    /// An empty queue built from recycled list storage (cleared here).
    pub(crate) fn from_parts(mut ready: Vec<u64>, mut pending: Vec<(u64, u64)>) -> Self {
        ready.clear();
        pending.clear();
        ReadyQueue { ready, pending }
    }

    /// Tears the queue down to its list storage for arena recycling.
    pub(crate) fn into_parts(self) -> (Vec<u64>, Vec<(u64, u64)>) {
        (self.ready, self.pending)
    }

    /// Files `seq`, whose operands arrive at `ready_at`, under the
    /// current cycle `now`. Station residency is tracked separately by
    /// the engine's shared per-station counters, which both schedulers
    /// maintain — this queue only orders selectable work.
    pub(crate) fn push_at(&mut self, ready_at: u64, seq: u64, now: u64) {
        if ready_at <= now {
            let i = self.ready.partition_point(|&s| s < seq);
            self.ready.insert(i, seq);
        } else {
            let key = (ready_at, seq);
            let i = self.pending.partition_point(|&p| p < key);
            self.pending.insert(i, key);
        }
    }

    /// Moves every pending entry whose arrival cycle has come into the
    /// ready list.
    pub(crate) fn promote(&mut self, now: u64) {
        let n = self.pending.partition_point(|&(at, _)| at <= now);
        for idx in 0..n {
            let seq = self.pending[idx].1;
            let i = self.ready.partition_point(|&s| s < seq);
            self.ready.insert(i, seq);
        }
        self.pending.drain(..n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wheel_pops_exactly_whats_due_in_order() {
        let mut w = CompletionWheel::new();
        w.schedule(3, 30);
        w.schedule(1, 10);
        w.schedule(2, 20);
        w.schedule(1, 11);
        let mut out = Vec::new();
        w.drain_into(2, &mut out);
        assert_eq!(out, vec![(1, 10), (1, 11), (2, 20)]);
        out.clear();
        w.drain_into(2, &mut out);
        assert!(out.is_empty(), "re-draining the same cycle yields nothing");
        w.drain_into(3, &mut out);
        assert_eq!(out, vec![(3, 30)]);
    }

    #[test]
    fn wheel_keeps_multi_lap_residents() {
        let mut w = CompletionWheel::new();
        let far = 5 + WHEEL_SLOTS as u64; // same slot as cycle 5, next lap
        w.schedule(far, 99);
        w.schedule(5, 1);
        let mut out = Vec::new();
        w.drain_into(5, &mut out);
        assert_eq!(out, vec![(5, 1)]);
        out.clear();
        w.drain_into(far - 1, &mut out);
        assert!(out.is_empty());
        w.drain_into(far, &mut out);
        assert_eq!(out, vec![(far, 99)]);
    }

    #[test]
    fn wheel_catch_up_path_sorts_by_cycle() {
        let mut w = CompletionWheel::new();
        w.schedule(300, 3);
        w.schedule(7, 7);
        w.schedule(150, 1);
        let mut out = Vec::new();
        // Jump well past a full lap in one call.
        w.drain_into(1000, &mut out);
        assert_eq!(out, vec![(7, 7), (150, 1), (300, 3)]);
    }

    #[test]
    fn ready_queue_promotes_in_seq_order() {
        let mut q = ReadyQueue::default();
        q.push_at(5, 42, 0); // future -> pending
        q.push_at(0, 7, 0); // already ready
        q.push_at(5, 13, 0);
        q.push_at(3, 99, 0);
        assert_eq!(q.ready, vec![7]);
        q.promote(4);
        assert_eq!(q.ready, vec![7, 99]);
        q.promote(5);
        assert_eq!(q.ready, vec![7, 13, 42, 99]);
    }
}
