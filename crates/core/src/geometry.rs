//! Cluster geometry and the inter-cluster interconnect.

/// Interconnect topology between clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// Clusters form a chain `0 – 1 – … – n-1`; the end clusters do not
    /// communicate directly (the paper's baseline).
    #[default]
    Linear,
    /// Clusters form a ring, so clusters `0` and `n-1` are adjacent (the
    /// paper's "mesh network" variant, which eliminates three-cluster
    /// communication for four clusters).
    Ring,
    /// Every pair of distinct clusters is one hop apart — an idealised
    /// point-to-point interconnect (Parcerisa et al., cited by the paper
    /// as the preferred alternative to buses).
    FullyConnected,
}

/// The shape of the clustered core: how many clusters, how many issue
/// slots each receives per fetch group, and how they are wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterGeometry {
    /// Number of clusters (the paper: 4; robustness study: 2).
    pub clusters: u8,
    /// Issue slots per cluster per fetch group (4).
    pub slots_per_cluster: u8,
    /// Interconnect topology.
    pub topology: Topology,
}

impl Default for ClusterGeometry {
    fn default() -> Self {
        ClusterGeometry {
            clusters: 4,
            slots_per_cluster: 4,
            topology: Topology::Linear,
        }
    }
}

impl ClusterGeometry {
    /// Total issue slots per fetch group (= trace line capacity).
    pub fn total_slots(&self) -> usize {
        self.clusters as usize * self.slots_per_cluster as usize
    }

    /// The cluster that issue slot `slot` feeds.
    pub fn cluster_of_slot(&self, slot: u8) -> u8 {
        slot / self.slots_per_cluster
    }

    /// Number of cluster hops data must traverse from `from` to `to`.
    pub fn distance(&self, from: u8, to: u8) -> u8 {
        debug_assert!(from < self.clusters && to < self.clusters);
        let d = from.abs_diff(to);
        match self.topology {
            Topology::Linear => d,
            Topology::Ring => d.min(self.clusters - d),
            Topology::FullyConnected => d.min(1),
        }
    }

    /// Clusters at distance 1 from `c`, nearest-to-centre first.
    pub fn neighbors(&self, c: u8) -> Vec<u8> {
        let mut n: Vec<u8> = (0..self.clusters)
            .filter(|&o| self.distance(c, o) == 1)
            .collect();
        n.sort_by_key(|&o| self.centrality(o));
        n
    }

    /// A centrality score: the maximum distance from `c` to any cluster
    /// (lower = more central).
    pub fn centrality(&self, c: u8) -> u8 {
        (0..self.clusters)
            .map(|o| self.distance(c, o))
            .max()
            .unwrap_or(0)
    }

    /// All clusters ordered most-central first (the "middle clusters" the
    /// FDRT strategy funnels unattached producers to), ties broken by
    /// index.
    pub fn middle_order(&self) -> Vec<u8> {
        let mut order: Vec<u8> = (0..self.clusters).collect();
        order.sort_by_key(|&c| (self.centrality(c), c));
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear4() -> ClusterGeometry {
        ClusterGeometry::default()
    }

    fn ring4() -> ClusterGeometry {
        ClusterGeometry {
            topology: Topology::Ring,
            ..ClusterGeometry::default()
        }
    }

    #[test]
    fn slot_to_cluster() {
        let g = linear4();
        assert_eq!(g.total_slots(), 16);
        assert_eq!(g.cluster_of_slot(0), 0);
        assert_eq!(g.cluster_of_slot(3), 0);
        assert_eq!(g.cluster_of_slot(4), 1);
        assert_eq!(g.cluster_of_slot(15), 3);
    }

    #[test]
    fn linear_distances() {
        let g = linear4();
        assert_eq!(g.distance(0, 0), 0);
        assert_eq!(g.distance(0, 1), 1);
        assert_eq!(g.distance(0, 3), 3);
        assert_eq!(g.distance(3, 1), 2);
    }

    #[test]
    fn ring_wraps_ends() {
        let g = ring4();
        assert_eq!(g.distance(0, 3), 1);
        assert_eq!(g.distance(0, 2), 2);
        assert_eq!(g.distance(1, 3), 2);
    }

    #[test]
    fn neighbors_linear() {
        let g = linear4();
        assert_eq!(g.neighbors(0), vec![1]);
        assert_eq!(g.neighbors(3), vec![2]);
        // Both neighbors, more central one first.
        let n1 = g.neighbors(1);
        assert_eq!(n1.len(), 2);
        assert_eq!(n1[0], 2); // 2 is central (max dist 2) like 1; ties by centrality then order
        assert!(n1.contains(&0));
    }

    #[test]
    fn middle_order_prefers_central_clusters() {
        let g = linear4();
        let order = g.middle_order();
        assert_eq!(&order[..2], &[1, 2]);
        assert_eq!(&order[2..], &[0, 3]);
    }

    #[test]
    fn ring_is_symmetric() {
        let g = ring4();
        // Every cluster equally central on a ring.
        let c: Vec<u8> = (0..4).map(|x| g.centrality(x)).collect();
        assert!(c.iter().all(|&v| v == c[0]));
        assert_eq!(g.neighbors(0).len(), 2);
    }

    #[test]
    fn fully_connected_is_one_hop_everywhere() {
        let g = ClusterGeometry {
            topology: Topology::FullyConnected,
            ..ClusterGeometry::default()
        };
        for a in 0..4 {
            for b in 0..4 {
                assert_eq!(g.distance(a, b), u8::from(a != b));
            }
        }
        // Every other cluster is a neighbour.
        assert_eq!(g.neighbors(0).len(), 3);
        // All clusters equally central.
        let c: Vec<u8> = (0..4).map(|x| g.centrality(x)).collect();
        assert!(c.iter().all(|&v| v == c[0]));
    }

    #[test]
    fn two_cluster_geometry() {
        let g = ClusterGeometry {
            clusters: 2,
            slots_per_cluster: 4,
            topology: Topology::Linear,
        };
        assert_eq!(g.total_slots(), 8);
        assert_eq!(g.distance(0, 1), 1);
        assert_eq!(g.neighbors(0), vec![1]);
        assert_eq!(g.middle_order(), vec![0, 1]);
    }
}
