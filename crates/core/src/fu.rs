//! Per-cluster functional unit pool.

use ctcp_isa::FuType;

/// The functional units of one cluster (Figure 3): two ALUs and one each
/// of MEM, BR, CPX, FP, FP-CPX, FP-MEM. Tracks per-unit busy time so
/// non-pipelined operations (divide, sqrt) block their unit.
#[derive(Debug, Clone)]
pub(crate) struct FuPool {
    /// busy_until[fu_type] per instance: the cycle at which the unit can
    /// accept a new operation.
    busy: [Vec<u64>; 7],
}

impl FuPool {
    /// Creates an idle pool with the paper's unit counts.
    pub(crate) fn new() -> Self {
        let count = |t: FuType| -> usize {
            match t {
                FuType::Alu => 2,
                _ => 1,
            }
        };
        let busy = FuType::ALL.map(|t| vec![0u64; count(t)]);
        FuPool { busy }
    }

    /// Tries to claim a unit of `fu` at `now` for an operation with the
    /// given issue latency (initiation interval). Returns `true` if a
    /// unit was available.
    pub(crate) fn try_claim(&mut self, fu: FuType, now: u64, issue_latency: u64) -> bool {
        let units = &mut self.busy[fu.index()];
        if let Some(u) = units.iter_mut().find(|u| **u <= now) {
            *u = now + issue_latency.max(1);
            true
        } else {
            false
        }
    }

    /// True if some unit of `fu` is free at `now` (no claim).
    #[cfg(test)]
    pub(crate) fn available(&self, fu: FuType, now: u64) -> bool {
        self.busy[fu.index()].iter().any(|&u| u <= now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_alus_one_of_everything_else() {
        let mut p = FuPool::new();
        assert!(p.try_claim(FuType::Alu, 0, 1));
        assert!(p.try_claim(FuType::Alu, 0, 1));
        assert!(!p.try_claim(FuType::Alu, 0, 1));
        assert!(p.try_claim(FuType::Cpx, 0, 1));
        assert!(!p.try_claim(FuType::Cpx, 0, 1));
    }

    #[test]
    fn pipelined_units_free_next_cycle() {
        let mut p = FuPool::new();
        assert!(p.try_claim(FuType::Mem, 0, 1));
        assert!(!p.available(FuType::Mem, 0));
        assert!(p.available(FuType::Mem, 1));
    }

    #[test]
    fn blocking_op_holds_the_unit() {
        let mut p = FuPool::new();
        assert!(p.try_claim(FuType::Cpx, 0, 19)); // integer divide
        assert!(!p.available(FuType::Cpx, 18));
        assert!(p.available(FuType::Cpx, 19));
    }
}
