//! Baseline placement: no reordering.

/// The base architecture's placement: logical instruction `l` occupies
/// physical slot `l`, so clusters fill in program order.
pub fn baseline_placement(n: usize) -> Vec<u8> {
    (0..n as u8).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity() {
        assert_eq!(baseline_placement(4), vec![0, 1, 2, 3]);
        assert_eq!(baseline_placement(0), Vec::<u8>::new());
    }
}
