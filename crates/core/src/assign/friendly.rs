//! Friendly et al.'s retire-time reordering (intra-trace dependencies
//! only).
//!
//! "For each issue slot, each instruction is checked for an intra-trace
//! input dependency for the respective cluster. Based on these data
//! dependencies, instructions are physically reordered within the trace."
//! — §2.3. The strategy walks issue slots in order; for each slot it
//! places the oldest not-yet-placed instruction that has an intra-trace
//! producer already placed on that slot's cluster, falling back to the
//! oldest unplaced instruction.

use crate::ClusterGeometry;
use ctcp_tracecache::RawTrace;

/// The order in which Friendly's algorithm walks issue slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SlotFillOrder {
    /// Slots 0..capacity in order (the published strategy: clusters fill
    /// from cluster 0 outward).
    #[default]
    Sequential,
    /// Middle clusters' slots first (the paper's §5.3 "minor adjustment"
    /// that lifts Friendly from 3.1% to 4.7%).
    MiddleFirst,
}

/// Computes Friendly's placement for `trace`.
pub fn friendly_placement(
    trace: &RawTrace,
    geom: &ClusterGeometry,
    order: SlotFillOrder,
) -> Vec<u8> {
    let capacity = geom.total_slots();
    let n = trace.len();
    debug_assert!(n <= capacity);
    let slots: Vec<u8> = match order {
        SlotFillOrder::Sequential => (0..capacity as u8).collect(),
        SlotFillOrder::MiddleFirst => {
            // Cluster-major, but walking the clusters starting from the
            // most central one and moving to adjacent clusters, so small
            // traces occupy the middle of the machine while dependent
            // instructions can still gather within one cluster before the
            // walk moves on (slot-interleaving the clusters instead would
            // ping-pong each dependency chain between two clusters).
            let mut walk: Vec<u8> = Vec::with_capacity(geom.clusters as usize);
            let mut cur = geom.middle_order()[0];
            walk.push(cur);
            while walk.len() < geom.clusters as usize {
                let next = geom
                    .neighbors(cur)
                    .into_iter()
                    .find(|c| !walk.contains(c))
                    .or_else(|| (0..geom.clusters).find(|c| !walk.contains(c)))
                    .expect("unvisited cluster exists");
                walk.push(next);
                cur = next;
            }
            walk.iter()
                .flat_map(|&c| {
                    (0..geom.slots_per_cluster).map(move |k| c * geom.slots_per_cluster + k)
                })
                .collect()
        }
    };

    let mut placement = vec![0u8; n];
    let mut cluster_of: Vec<Option<u8>> = vec![None; n];
    let mut unplaced: Vec<usize> = (0..n).collect();
    for &slot in &slots {
        if unplaced.is_empty() {
            break;
        }
        let cluster = geom.cluster_of_slot(slot);
        let pick = unplaced
            .iter()
            .position(|&i| {
                trace.intra_producers[i]
                    .iter()
                    .flatten()
                    .any(|&p| cluster_of[p as usize] == Some(cluster))
            })
            .unwrap_or(0);
        let i = unplaced.remove(pick);
        placement[i] = slot;
        cluster_of[i] = Some(cluster);
    }
    placement
}

/// Completes a partial cluster assignment: instructions with a cluster in
/// `cluster_of` receive concrete slots within that cluster (in logical
/// order); the `skipped` instructions are then placed over the remaining
/// slots by Friendly's rule. Returns the full placement and records the
/// final cluster of every instruction back into `cluster_of`.
///
/// Used as the FDRT fallback ("These instructions are later assigned to
/// the remaining slots using Friendly's method", §4.3).
pub(crate) fn friendly_placement_partial(
    trace: &RawTrace,
    geom: &ClusterGeometry,
    cluster_of: &mut [Option<u8>],
    skipped: &[usize],
) -> Vec<u8> {
    let capacity = geom.total_slots();
    let n = trace.len();
    let spc = geom.slots_per_cluster as usize;
    let mut placement = vec![0u8; n];
    let mut slot_used = vec![false; capacity];
    let mut next_in_cluster = vec![0usize; geom.clusters as usize];
    for i in 0..n {
        if let Some(c) = cluster_of[i] {
            let base = c as usize * spc;
            let k = next_in_cluster[c as usize];
            debug_assert!(k < spc, "cluster over-filled by the first pass");
            placement[i] = (base + k) as u8;
            slot_used[base + k] = true;
            next_in_cluster[c as usize] = k + 1;
        }
    }
    let mut unplaced: Vec<usize> = skipped.to_vec();
    for (slot, used) in slot_used.iter_mut().enumerate() {
        if unplaced.is_empty() {
            break;
        }
        if *used {
            continue;
        }
        let cluster = geom.cluster_of_slot(slot as u8);
        let pick = unplaced
            .iter()
            .position(|&i| {
                trace.intra_producers[i]
                    .iter()
                    .flatten()
                    .any(|&p| cluster_of[p as usize] == Some(cluster))
            })
            .unwrap_or(0);
        let i = unplaced.remove(pick);
        placement[i] = slot as u8;
        cluster_of[i] = Some(cluster);
        *used = true;
    }
    debug_assert!(unplaced.is_empty(), "more instructions than slots");
    placement
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctcp_isa::{Instruction, Opcode, Reg};
    use ctcp_tracecache::{ExecFeedback, PendingInst, ProfileFields};

    fn pi(seq: u64, inst: Instruction) -> PendingInst {
        PendingInst {
            seq,
            index: seq as u32,
            pc: 0x1000 + 4 * seq,
            inst,
            profile: ProfileFields::default(),
            tc_loc: None,
            feedback: ExecFeedback::default(),
            taken: None,
        }
    }

    fn add(d: Reg, a: Reg, b: Reg) -> Instruction {
        Instruction::new(Opcode::Add, Some(d), Some(a), Some(b), 0)
    }

    fn geom() -> ClusterGeometry {
        ClusterGeometry::default()
    }

    #[test]
    fn independent_instructions_keep_program_order() {
        let insts: Vec<_> = (0..8)
            .map(|i| pi(i, add(Reg::int(i as u8), Reg::R20, Reg::R21)))
            .collect();
        let t = RawTrace::analyze(insts);
        let p = friendly_placement(&t, &geom(), SlotFillOrder::Sequential);
        assert_eq!(p, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn dependent_chain_lands_on_producer_cluster() {
        // i0 produces r1; i1..i4 form a chain through r1->r2->r3->r4; with
        // only intra-trace deps, the whole chain should stay on cluster 0
        // until its 4 slots run out.
        let insts = vec![
            pi(0, add(Reg::R1, Reg::R20, Reg::R21)),
            pi(1, add(Reg::R2, Reg::R1, Reg::R21)),
            pi(2, add(Reg::R3, Reg::R2, Reg::R21)),
            pi(3, add(Reg::R4, Reg::R3, Reg::R21)),
            pi(4, add(Reg::R5, Reg::R4, Reg::R21)),
        ];
        let t = RawTrace::analyze(insts);
        let p = friendly_placement(&t, &geom(), SlotFillOrder::Sequential);
        // First four occupy cluster 0's slots.
        for l in 0..4 {
            assert!(p[l] < 4, "placement {p:?}");
        }
        // The fifth spills to the next cluster's slots.
        assert!(p[4] >= 4 && p[4] < 8, "placement {p:?}");
    }

    #[test]
    fn consumer_follows_producer_not_program_order() {
        // i0 -> cluster 0 slot 0; i1 independent; i2 depends on i0.
        // Slot 1 (cluster 0) should go to i2, not i1.
        let insts = vec![
            pi(0, add(Reg::R1, Reg::R20, Reg::R21)),
            pi(1, add(Reg::R9, Reg::R22, Reg::R23)),
            pi(2, add(Reg::R2, Reg::R1, Reg::R21)),
        ];
        let t = RawTrace::analyze(insts);
        let p = friendly_placement(&t, &geom(), SlotFillOrder::Sequential);
        assert_eq!(p[0], 0);
        assert_eq!(p[2], 1, "dependent instruction should take slot 1");
        assert_eq!(p[1], 2, "independent instruction fills the next slot");
    }

    #[test]
    fn placement_is_always_a_permutation() {
        let insts: Vec<_> = (0..16)
            .map(|i| {
                pi(
                    i,
                    add(
                        Reg::int((i % 8) as u8),
                        Reg::int(((i + 3) % 8) as u8),
                        Reg::int(((i + 5) % 8) as u8),
                    ),
                )
            })
            .collect();
        let t = RawTrace::analyze(insts);
        for order in [SlotFillOrder::Sequential, SlotFillOrder::MiddleFirst] {
            let p = friendly_placement(&t, &geom(), order);
            let mut seen = [false; 16];
            for &s in &p {
                assert!(!seen[s as usize], "duplicate slot in {p:?}");
                seen[s as usize] = true;
            }
        }
    }

    #[test]
    fn middle_first_biases_small_traces_to_central_clusters() {
        let insts: Vec<_> = (0..4)
            .map(|i| pi(i, add(Reg::int(i as u8), Reg::R20, Reg::R21)))
            .collect();
        let t = RawTrace::analyze(insts);
        let p = friendly_placement(&t, &geom(), SlotFillOrder::MiddleFirst);
        let g = geom();
        for &slot in &p {
            let c = g.cluster_of_slot(slot);
            assert!(c == 1 || c == 2, "expected middle cluster, got {c}");
        }
    }
}
