//! Dynamic cluster-assignment strategies (the paper's §2.3 and §4).
//!
//! Two families exist:
//!
//! * **Issue-time** steering is built into the engine
//!   ([`crate::engine::SteeringMode::IssueTime`]): instructions are sent to
//!   the cluster where one of their inputs is generated, at a configurable
//!   extra pipeline latency.
//! * **Retire-time** strategies run in the fill unit: they choose a
//!   *physical placement* of each trace's instructions into issue slots,
//!   so that slot-based steering delivers every instruction to the desired
//!   cluster with zero issue-time latency. This module implements the
//!   baseline (identity), Friendly et al.'s intra-trace reordering, and
//!   the proposed FDRT strategy.

mod baseline;
mod fdrt;
mod friendly;

pub use baseline::baseline_placement;
pub use fdrt::{ChainStore, FdrtAssigner, FdrtConfig, FdrtStats, MapChainStore};
pub(crate) use friendly::friendly_placement_partial;
pub use friendly::{friendly_placement, SlotFillOrder};

use crate::ClusterGeometry;
use ctcp_tracecache::RawTrace;

/// A retire-time placement strategy: maps each logical instruction of a
/// trace to a physical issue slot.
#[derive(Debug)]
pub enum RetireTimeStrategy {
    /// Physical order = logical order (the base architecture).
    Baseline,
    /// Friendly et al.'s intra-trace dependency reordering.
    Friendly(SlotFillOrder),
    /// The proposed feedback-directed retire-time strategy.
    Fdrt(FdrtAssigner),
}

impl RetireTimeStrategy {
    /// Computes the placement for `trace`; FDRT additionally updates chain
    /// state through `store`.
    pub fn assign(
        &mut self,
        trace: &mut RawTrace,
        geom: &ClusterGeometry,
        store: &mut dyn ChainStore,
    ) -> Vec<u8> {
        match self {
            RetireTimeStrategy::Baseline => baseline_placement(trace.len()),
            RetireTimeStrategy::Friendly(order) => friendly_placement(trace, geom, *order),
            RetireTimeStrategy::Fdrt(a) => a.assign(trace, geom, store),
        }
    }

    /// FDRT statistics, if this is the FDRT strategy.
    pub fn fdrt_stats(&self) -> Option<&FdrtStats> {
        match self {
            RetireTimeStrategy::Fdrt(a) => Some(a.stats()),
            _ => None,
        }
    }
}
