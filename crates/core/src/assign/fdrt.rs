//! FDRT: feedback-directed retire-time cluster assignment (§4 of the
//! paper).
//!
//! The strategy has two halves, both run by the fill unit as a trace is
//! constructed:
//!
//! 1. **Chain maintenance** (Table 4): instructions that forward data to
//!    inter-trace consumers become chain *leaders*, pinned to the cluster
//!    they executed on; consumers whose critical input came from a chain
//!    member in another trace become *followers*, inheriting the chain
//!    cluster. Chain state lives in the trace cache's per-instruction
//!    profile fields and is updated in place through a [`ChainStore`].
//! 2. **Slot assignment** (Table 5): instructions are walked oldest to
//!    youngest and placed near their producers — chain cluster first, then
//!    intra-trace producer's cluster, then neighbours, with producerless
//!    instructions that feed intra-trace consumers funnelled to the middle
//!    clusters. Instructions that cannot be placed are assigned afterwards
//!    by Friendly's method over the remaining slots.

use crate::assign::friendly_placement_partial;
use crate::ClusterGeometry;
use ctcp_tracecache::{ChainRole, ProfileFields, RawTrace, TcLocation};
use std::collections::HashMap;

/// Read/update access to chain profile fields stored in the trace cache.
/// Implemented for [`ctcp_tracecache::TraceCache`]; tests can use
/// [`MapChainStore`].
pub trait ChainStore {
    /// Current profile of a resident slot, if still resident and still
    /// holding the instruction at `pc` (line ids survive trace rebuilds,
    /// so slot contents are verified by PC).
    fn profile(&self, loc: TcLocation, pc: u64) -> Option<ProfileFields>;
    /// Overwrites the profile of a resident slot (no-op if evicted or if
    /// the slot no longer holds the instruction at `pc`).
    fn set_profile(&mut self, loc: TcLocation, pc: u64, profile: ProfileFields);
}

impl ChainStore for ctcp_tracecache::TraceCache {
    fn profile(&self, loc: TcLocation, pc: u64) -> Option<ProfileFields> {
        let line = self.line(loc.line_id)?;
        let slot = line.slots.get(loc.slot as usize)?.as_ref()?;
        (slot.pc == pc).then_some(slot.profile)
    }

    fn set_profile(&mut self, loc: TcLocation, pc: u64, profile: ProfileFields) {
        if self.profile(loc, pc).is_none() {
            return;
        }
        if let Some(p) = self.profile_mut(loc) {
            *p = profile;
        }
    }
}

/// A simple in-memory [`ChainStore`] for unit tests.
#[derive(Debug, Default)]
pub struct MapChainStore {
    map: HashMap<TcLocation, ProfileFields>,
}

impl MapChainStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-populates a location.
    pub fn insert(&mut self, loc: TcLocation, profile: ProfileFields) {
        self.map.insert(loc, profile);
    }

    /// Reads back a location.
    pub fn get(&self, loc: TcLocation) -> Option<ProfileFields> {
        self.map.get(&loc).copied()
    }
}

impl ChainStore for MapChainStore {
    fn profile(&self, loc: TcLocation, _pc: u64) -> Option<ProfileFields> {
        self.map.get(&loc).copied()
    }

    fn set_profile(&mut self, loc: TcLocation, _pc: u64, profile: ProfileFields) {
        self.map.insert(loc, profile);
    }
}

/// FDRT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdrtConfig {
    /// Pin chain leaders permanently to one cluster (§5.5). Disabling
    /// reproduces the paper's "No Pinning" ablation (Tables 9/10).
    pub pinning: bool,
    /// Use inter-trace cluster chaining. Disabling isolates the
    /// intra-trace heuristics (the paper's §5.3 ablation, which alone
    /// yields 5.7%).
    pub chaining: bool,
}

impl Default for FdrtConfig {
    fn default() -> Self {
        FdrtConfig {
            pinning: true,
            chaining: true,
        }
    }
}

/// Counters for Figure 7 (assignment option distribution) and Table 9
/// (cluster migration).
#[derive(Debug, Default, Clone, Copy)]
pub struct FdrtStats {
    /// Instructions assigned by each Table 5 option: A, B, C, D, E.
    pub options: [u64; 5],
    /// Instructions initially skipped by options A–D (no nearby slot).
    pub skipped: u64,
    /// Dynamic instructions whose assigned cluster differed from their
    /// previous dynamic invocation.
    pub migrations: u64,
    /// Dynamic instructions with a previous invocation to compare against.
    pub migration_samples: u64,
    /// Migrations among chain members.
    pub chain_migrations: u64,
    /// Chain-member samples.
    pub chain_samples: u64,
    /// Leaders created.
    pub leaders_created: u64,
    /// Followers created.
    pub followers_created: u64,
}

impl FdrtStats {
    /// Migration rate over all instructions (Table 9 "All Instr.").
    pub fn migration_rate(&self) -> f64 {
        if self.migration_samples == 0 {
            0.0
        } else {
            self.migrations as f64 / self.migration_samples as f64
        }
    }

    /// Migration rate among chain members (Table 9 "Chain Instr.").
    pub fn chain_migration_rate(&self) -> f64 {
        if self.chain_samples == 0 {
            0.0
        } else {
            self.chain_migrations as f64 / self.chain_samples as f64
        }
    }

    /// Fraction of instructions assigned by each option (A–E, skipped),
    /// over all instructions seen.
    pub fn option_distribution(&self) -> [f64; 6] {
        let total: u64 = self.options.iter().sum::<u64>() + self.skipped;
        if total == 0 {
            return [0.0; 6];
        }
        let mut out = [0.0; 6];
        for (i, &c) in self.options.iter().enumerate() {
            out[i] = c as f64 / total as f64;
        }
        out[5] = self.skipped as f64 / total as f64;
        out
    }
}

/// The FDRT assigner: owns the configuration, migration history, and
/// statistics; stateless with respect to chains (chain state lives in the
/// [`ChainStore`], i.e. the trace cache).
#[derive(Debug)]
pub struct FdrtAssigner {
    config: FdrtConfig,
    stats: FdrtStats,
    /// Previous assigned cluster per static PC (for migration stats).
    last_cluster: HashMap<u64, u8>,
}

impl FdrtAssigner {
    /// Creates an assigner.
    pub fn new(config: FdrtConfig) -> Self {
        FdrtAssigner {
            config,
            stats: FdrtStats::default(),
            last_cluster: HashMap::new(),
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> &FdrtStats {
        &self.stats
    }

    /// Runs chain maintenance and slot assignment for one trace,
    /// returning the physical placement (`placement[logical] = slot`).
    pub fn assign(
        &mut self,
        trace: &mut RawTrace,
        geom: &ClusterGeometry,
        store: &mut dyn ChainStore,
    ) -> Vec<u8> {
        if self.config.chaining {
            self.update_chains(trace, store);
        }
        self.place(trace, geom)
    }

    /// Chain maintenance per Table 4, against the live trace cache state.
    fn update_chains(&mut self, trace: &mut RawTrace, store: &mut dyn ChainStore) {
        for i in 0..trace.len() {
            let fb = trace.insts[i].feedback;
            let Some(p) = fb.critical_producer().copied() else {
                continue;
            };
            if p.same_trace {
                // Only inter-trace dependencies participate in chaining.
                continue;
            }

            // Leader promotion: the producer forwarded data to an
            // inter-trace consumer (this instruction). Read the producer's
            // *current* profile from the trace cache so a pinned leader is
            // never re-pinned.
            if let Some(loc) = p.tc_location {
                if let Some(current) = store.profile(loc, p.pc) {
                    let promote = if self.config.pinning {
                        current.role == ChainRole::None
                    } else {
                        // Without pinning, re-designate freely: the chain
                        // cluster chases the producer's latest execution
                        // cluster.
                        current.role != ChainRole::Follower
                            || current.chain_cluster != Some(p.cluster)
                    };
                    if promote && current.role == ChainRole::None {
                        store.set_profile(
                            loc,
                            p.pc,
                            ProfileFields {
                                role: ChainRole::Leader,
                                chain_cluster: Some(p.cluster),
                            },
                        );
                        self.stats.leaders_created += 1;
                    } else if !self.config.pinning && promote {
                        // Unpinned: update the chain cluster in place.
                        store.set_profile(
                            loc,
                            p.pc,
                            ProfileFields {
                                role: current.role,
                                chain_cluster: Some(p.cluster),
                            },
                        );
                    }
                }
            }

            // Follower assignment: the consumer's critical input came from
            // a chain member in another trace.
            if p.role.is_chain_member() && p.chain_cluster.is_some() {
                let c = &mut trace.insts[i];
                let eligible = if self.config.pinning {
                    c.profile.role == ChainRole::None
                } else {
                    true
                };
                if eligible {
                    if c.profile.role == ChainRole::None {
                        self.stats.followers_created += 1;
                    }
                    c.profile = ProfileFields {
                        role: ChainRole::Follower,
                        chain_cluster: p.chain_cluster,
                    };
                    if let Some(loc) = c.tc_loc {
                        let (pc, profile) = (c.pc, c.profile);
                        store.set_profile(loc, pc, profile);
                    }
                }
            }
        }
    }

    /// Slot assignment per Table 5.
    fn place(&mut self, trace: &RawTrace, geom: &ClusterGeometry) -> Vec<u8> {
        let n = trace.len();
        let clusters = geom.clusters as usize;
        let spc = geom.slots_per_cluster;
        let mut counts = vec![0u8; clusters];
        let mut cluster_of: Vec<Option<u8>> = vec![None; n];
        let mut skipped: Vec<usize> = Vec::new();
        let middle = geom.middle_order();

        for i in 0..n {
            let inst = &trace.insts[i];
            // Inputs to the Table 5 decision.
            let crit_intra: Option<u8> = {
                let cs = inst.feedback.critical_src;
                match cs {
                    Some(s) => trace.intra_producers[i][s as usize],
                    None => None,
                }
            };
            let chain = if self.config.chaining && inst.profile.is_chain_member() {
                inst.profile.chain_cluster
            } else {
                None
            };
            let has_consumer = trace.has_intra_consumer[i];

            let producer_cluster = crit_intra.and_then(|p| cluster_of[p as usize]);

            // Neighbour lists and the middle tier are tried least-loaded
            // first so systematic choices (e.g. producerless loads all
            // taking option D) spread over the eligible clusters instead
            // of serialising on one cluster's functional units.
            let by_load = |mut cs: Vec<u8>, counts: &[u8]| -> Vec<u8> {
                cs.sort_by_key(|&c| (counts[c as usize], geom.centrality(c), c));
                cs
            };

            // Build the priority list of candidate clusters.
            let mut prio: Vec<u8> = Vec::new();
            let option_idx: usize;
            match (producer_cluster, chain) {
                (Some(pc), None) => {
                    // Option A: intra-trace producer, then its neighbours.
                    option_idx = 0;
                    prio.push(pc);
                    prio.extend(by_load(geom.neighbors(pc), &counts));
                }
                (None, Some(cc)) => {
                    // Option B: chain cluster, then its neighbours.
                    option_idx = 1;
                    prio.push(cc);
                    prio.extend(by_load(geom.neighbors(cc), &counts));
                }
                (Some(pc), Some(cc)) => {
                    // Option C: chain first, then the producer, then the
                    // chain's neighbours.
                    option_idx = 2;
                    prio.push(cc);
                    if !prio.contains(&pc) {
                        prio.push(pc);
                    }
                    for nb in by_load(geom.neighbors(cc), &counts) {
                        if !prio.contains(&nb) {
                            prio.push(nb);
                        }
                    }
                }
                (None, None) if has_consumer => {
                    // Option D: middle cluster(s), least-loaded first.
                    option_idx = 3;
                    let central = middle.first().map(|&c| geom.centrality(c));
                    let tier: Vec<u8> = middle
                        .iter()
                        .copied()
                        .filter(|&c| Some(geom.centrality(c)) == central)
                        .collect();
                    prio.extend(by_load(tier, &counts));
                }
                (None, None) => {
                    // Option E: nothing to go on; defer to the fallback.
                    option_idx = 4;
                }
            }

            let placed = prio.iter().copied().find(|&c| counts[c as usize] < spc);
            match placed {
                Some(c) => {
                    counts[c as usize] += 1;
                    cluster_of[i] = Some(c);
                    self.stats.options[option_idx] += 1;
                }
                None => {
                    if option_idx == 4 {
                        self.stats.options[4] += 1;
                    } else {
                        self.stats.skipped += 1;
                    }
                    skipped.push(i);
                }
            }
        }

        // Fallback: Friendly's method over the remaining instructions and
        // slots.
        let placement = friendly_placement_partial(trace, geom, &mut cluster_of, &skipped);

        // Migration statistics against the final placement.
        for (i, &slot) in placement.iter().enumerate() {
            let cluster = geom.cluster_of_slot(slot);
            let pc = trace.insts[i].pc;
            let is_chain = trace.insts[i].profile.is_chain_member();
            if let Some(&prev) = self.last_cluster.get(&pc) {
                self.stats.migration_samples += 1;
                if is_chain {
                    self.stats.chain_samples += 1;
                }
                if prev != cluster {
                    self.stats.migrations += 1;
                    if is_chain {
                        self.stats.chain_migrations += 1;
                    }
                }
            }
            self.last_cluster.insert(pc, cluster);
        }
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctcp_isa::{Instruction, Opcode, Reg};
    use ctcp_tracecache::{ExecFeedback, PendingInst, ProducerInfo};

    fn pi(seq: u64, inst: Instruction) -> PendingInst {
        PendingInst {
            seq,
            index: seq as u32,
            pc: 0x1000 + 4 * seq,
            inst,
            profile: ProfileFields::default(),
            tc_loc: None,
            feedback: ExecFeedback::default(),
            taken: None,
        }
    }

    fn add(d: Reg, a: Reg, b: Reg) -> Instruction {
        Instruction::new(Opcode::Add, Some(d), Some(a), Some(b), 0)
    }

    fn geom() -> ClusterGeometry {
        ClusterGeometry::default()
    }

    fn producer(cluster: u8, same_trace: bool, loc: Option<TcLocation>) -> ProducerInfo {
        ProducerInfo {
            pc: 0x500,
            cluster,
            same_trace,
            role: ChainRole::None,
            chain_cluster: None,
            tc_location: loc,
        }
    }

    #[test]
    fn leader_promotion_on_inter_trace_forward() {
        let mut a = FdrtAssigner::new(FdrtConfig::default());
        let mut store = MapChainStore::new();
        let loc = TcLocation {
            line_id: 7,
            slot: 3,
        };
        store.insert(loc, ProfileFields::default());

        let mut insts = vec![pi(0, add(Reg::R1, Reg::R2, Reg::R3))];
        insts[0].feedback = ExecFeedback {
            executed_cluster: 0,
            src_producers: [Some(producer(2, false, Some(loc))), None],
            critical_src: Some(0),
            critical_forwarded: true,
        };
        let mut t = RawTrace::analyze(insts);
        a.assign(&mut t, &geom(), &mut store);

        let p = store.get(loc).unwrap();
        assert_eq!(p.role, ChainRole::Leader);
        assert_eq!(p.chain_cluster, Some(2));
        assert_eq!(a.stats().leaders_created, 1);
    }

    #[test]
    fn pinned_leader_is_never_repinned() {
        let mut a = FdrtAssigner::new(FdrtConfig::default());
        let mut store = MapChainStore::new();
        let loc = TcLocation {
            line_id: 7,
            slot: 3,
        };
        store.insert(
            loc,
            ProfileFields {
                role: ChainRole::Leader,
                chain_cluster: Some(1),
            },
        );

        let mut insts = vec![pi(0, add(Reg::R1, Reg::R2, Reg::R3))];
        insts[0].feedback = ExecFeedback {
            executed_cluster: 0,
            // Producer executed on cluster 3 this time.
            src_producers: [Some(producer(3, false, Some(loc))), None],
            critical_src: Some(0),
            critical_forwarded: true,
        };
        let mut t = RawTrace::analyze(insts);
        a.assign(&mut t, &geom(), &mut store);

        assert_eq!(store.get(loc).unwrap().chain_cluster, Some(1));
    }

    #[test]
    fn unpinned_leader_chases_execution_cluster() {
        let mut a = FdrtAssigner::new(FdrtConfig {
            pinning: false,
            chaining: true,
        });
        let mut store = MapChainStore::new();
        let loc = TcLocation {
            line_id: 7,
            slot: 3,
        };
        store.insert(
            loc,
            ProfileFields {
                role: ChainRole::Leader,
                chain_cluster: Some(1),
            },
        );
        let mut insts = vec![pi(0, add(Reg::R1, Reg::R2, Reg::R3))];
        insts[0].feedback = ExecFeedback {
            executed_cluster: 0,
            src_producers: [Some(producer(3, false, Some(loc))), None],
            critical_src: Some(0),
            critical_forwarded: true,
        };
        let mut t = RawTrace::analyze(insts);
        a.assign(&mut t, &geom(), &mut store);
        assert_eq!(store.get(loc).unwrap().chain_cluster, Some(3));
    }

    #[test]
    fn follower_inherits_chain_cluster_and_lands_there() {
        let mut a = FdrtAssigner::new(FdrtConfig::default());
        let mut store = MapChainStore::new();
        let mut insts = vec![pi(0, add(Reg::R1, Reg::R2, Reg::R3))];
        insts[0].feedback = ExecFeedback {
            executed_cluster: 0,
            src_producers: [
                Some(ProducerInfo {
                    pc: 0x500,
                    cluster: 3,
                    same_trace: false,
                    role: ChainRole::Leader,
                    chain_cluster: Some(3),
                    tc_location: None,
                }),
                None,
            ],
            critical_src: Some(0),
            critical_forwarded: true,
        };
        let mut t = RawTrace::analyze(insts);
        let placement = a.assign(&mut t, &geom(), &mut store);
        assert_eq!(t.insts[0].profile.role, ChainRole::Follower);
        assert_eq!(t.insts[0].profile.chain_cluster, Some(3));
        // Option B puts it on cluster 3.
        assert_eq!(geom().cluster_of_slot(placement[0]), 3);
        assert_eq!(a.stats().options[1], 1);
        assert_eq!(a.stats().followers_created, 1);
    }

    #[test]
    fn option_a_places_near_intra_producer() {
        let mut a = FdrtAssigner::new(FdrtConfig::default());
        let mut store = MapChainStore::new();
        // i0 no inputs but has consumer -> option D (middle cluster).
        // i1 critical intra producer i0 -> option A (same cluster).
        let mut insts = vec![
            pi(0, add(Reg::R1, Reg::R20, Reg::R21)),
            pi(1, add(Reg::R2, Reg::R1, Reg::R21)),
        ];
        insts[1].feedback.critical_src = Some(0);
        insts[1].feedback.critical_forwarded = true;
        let mut t = RawTrace::analyze(insts);
        let placement = a.assign(&mut t, &geom(), &mut store);
        let g = geom();
        let c0 = g.cluster_of_slot(placement[0]);
        let c1 = g.cluster_of_slot(placement[1]);
        assert!(c0 == 1 || c0 == 2, "producer should sit mid: {c0}");
        assert_eq!(c0, c1, "consumer should join its producer");
        assert_eq!(a.stats().options[3], 1); // D
        assert_eq!(a.stats().options[0], 1); // A
    }

    #[test]
    fn option_c_prefers_chain_over_producer() {
        let mut a = FdrtAssigner::new(FdrtConfig::default());
        let mut store = MapChainStore::new();
        let mut insts = vec![
            pi(0, add(Reg::R1, Reg::R20, Reg::R21)),
            pi(1, add(Reg::R2, Reg::R1, Reg::R21)),
        ];
        // i1: intra producer i0 AND an established chain on cluster 3.
        insts[1].profile = ProfileFields {
            role: ChainRole::Follower,
            chain_cluster: Some(3),
        };
        insts[1].feedback.critical_src = Some(0);
        insts[1].feedback.critical_forwarded = true;
        let mut t = RawTrace::analyze(insts);
        let placement = a.assign(&mut t, &geom(), &mut store);
        assert_eq!(geom().cluster_of_slot(placement[1]), 3);
        assert_eq!(a.stats().options[2], 1); // C
    }

    #[test]
    fn cluster_capacity_spills_to_neighbor() {
        let mut a = FdrtAssigner::new(FdrtConfig::default());
        let mut store = MapChainStore::new();
        // Five instructions all chained to cluster 0: four fit, the fifth
        // goes to the neighbour (cluster 1).
        let mut insts: Vec<_> = (0..5)
            .map(|i| {
                let mut p = pi(i, add(Reg::int(i as u8), Reg::R20, Reg::R21));
                p.profile = ProfileFields {
                    role: ChainRole::Follower,
                    chain_cluster: Some(0),
                };
                p
            })
            .collect();
        for p in insts.iter_mut() {
            p.feedback.critical_src = None;
        }
        let mut t = RawTrace::analyze(insts);
        let placement = a.assign(&mut t, &geom(), &mut store);
        let g = geom();
        let clusters: Vec<u8> = placement.iter().map(|&s| g.cluster_of_slot(s)).collect();
        assert_eq!(clusters.iter().filter(|&&c| c == 0).count(), 4);
        assert_eq!(clusters.iter().filter(|&&c| c == 1).count(), 1);
    }

    #[test]
    fn migration_stats_track_cluster_changes() {
        let mut a = FdrtAssigner::new(FdrtConfig::default());
        let mut store = MapChainStore::new();
        // Same static instruction assigned twice to the same cluster: no
        // migration.
        for _ in 0..2 {
            let mut insts = vec![pi(0, add(Reg::R1, Reg::R20, Reg::R21))];
            insts[0].profile = ProfileFields {
                role: ChainRole::Follower,
                chain_cluster: Some(2),
            };
            let mut t = RawTrace::analyze(insts);
            a.assign(&mut t, &geom(), &mut store);
        }
        assert_eq!(a.stats().migration_samples, 1);
        assert_eq!(a.stats().migrations, 0);
        // Now force it elsewhere.
        let mut insts = vec![pi(0, add(Reg::R1, Reg::R20, Reg::R21))];
        insts[0].profile = ProfileFields {
            role: ChainRole::Follower,
            chain_cluster: Some(0),
        };
        let mut t = RawTrace::analyze(insts);
        a.assign(&mut t, &geom(), &mut store);
        assert_eq!(a.stats().migrations, 1);
        assert_eq!(a.stats().chain_migrations, 1);
    }

    #[test]
    fn placement_is_always_a_permutation() {
        let mut a = FdrtAssigner::new(FdrtConfig::default());
        let mut store = MapChainStore::new();
        let insts: Vec<_> = (0..16)
            .map(|i| {
                pi(
                    i,
                    add(
                        Reg::int((i % 8) as u8),
                        Reg::int(((i + 1) % 8) as u8),
                        Reg::int(((i + 2) % 8) as u8),
                    ),
                )
            })
            .collect();
        let mut t = RawTrace::analyze(insts);
        let placement = a.assign(&mut t, &geom(), &mut store);
        let mut seen = [false; 16];
        for &s in &placement {
            assert!(!seen[s as usize]);
            seen[s as usize] = true;
        }
    }

    #[test]
    fn option_e_counts_unattached_instructions() {
        let mut a = FdrtAssigner::new(FdrtConfig::default());
        let mut store = MapChainStore::new();
        // One instruction, no producers, no consumers.
        let mut t = RawTrace::analyze(vec![pi(0, add(Reg::R1, Reg::R20, Reg::R21))]);
        a.assign(&mut t, &geom(), &mut store);
        assert_eq!(a.stats().options[4], 1);
        let dist = a.stats().option_distribution();
        assert_eq!(dist[4], 1.0);
    }
}
