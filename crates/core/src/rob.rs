//! The reorder buffer: a dense ring of in-flight instructions with O(1)
//! lookup by sequence number.
//!
//! Sequence numbers are dense and increasing, so an entry's position is
//! always `seq - head_seq`; no search is ever required. The ring is a
//! `VecDeque` pre-sized to the configured ROB capacity, so steady-state
//! push/pop never reallocates.

use crate::entry::Entry;
use std::collections::VecDeque;

pub(crate) struct Rob {
    entries: VecDeque<Entry>,
    head_seq: u64,
}

impl Rob {
    /// An empty ROB that can hold `capacity` entries without growing.
    #[cfg(test)]
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Rob::from_storage(VecDeque::with_capacity(capacity), capacity)
    }

    /// An empty ROB built from recycled ring storage (cleared here),
    /// grown if needed so `capacity` entries fit without reallocating.
    pub(crate) fn from_storage(mut entries: VecDeque<Entry>, capacity: usize) -> Self {
        entries.clear();
        entries.reserve(capacity);
        Rob {
            entries,
            head_seq: 0,
        }
    }

    /// Tears the ROB down to its raw ring storage for arena recycling.
    pub(crate) fn into_storage(self) -> VecDeque<Entry> {
        self.entries
    }

    /// Number of in-flight entries.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is in flight.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The sequence number the next pushed entry must carry.
    #[inline]
    pub(crate) fn next_seq(&self) -> u64 {
        self.head_seq + self.entries.len() as u64
    }

    /// O(1) lookup by sequence number. `None` for retired or future seqs.
    #[inline]
    pub(crate) fn get(&self, seq: u64) -> Option<&Entry> {
        let off = seq.checked_sub(self.head_seq)? as usize;
        self.entries.get(off)
    }

    /// O(1) mutable lookup by sequence number.
    #[inline]
    pub(crate) fn get_mut(&mut self, seq: u64) -> Option<&mut Entry> {
        let off = seq.checked_sub(self.head_seq)? as usize;
        self.entries.get_mut(off)
    }

    /// The oldest in-flight entry.
    #[inline]
    pub(crate) fn front(&self) -> Option<&Entry> {
        self.entries.front()
    }

    /// Removes and returns the oldest entry, advancing `head_seq`.
    pub(crate) fn pop_front(&mut self) -> Option<Entry> {
        let e = self.entries.pop_front()?;
        self.head_seq = e.seq + 1;
        Some(e)
    }

    /// Appends `e`, which must carry [`Rob::next_seq`].
    pub(crate) fn push_back(&mut self, e: Entry) {
        debug_assert_eq!(e.seq, self.next_seq(), "sequence numbers must be dense");
        self.entries.push_back(e);
    }

    /// Iterates every in-flight entry in program order (the legacy
    /// scan-scheduler oracle is the only per-cycle user).
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = &mut Entry> {
        self.entries.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::{SrcState, Stage};
    use crate::RsClass;
    use ctcp_isa::{Instruction, Opcode, Reg};

    fn entry(seq: u64) -> Entry {
        Entry {
            seq,
            pc: 0x1000 + seq * 4,
            index: seq as u32,
            inst: Instruction::new(Opcode::Add, Some(Reg::R1), Some(Reg::R2), Some(Reg::R3), 0),
            mem_addr: None,
            taken: None,
            group: 0,
            from_tc: false,
            tc_loc: None,
            profile: Default::default(),
            cluster: 0,
            rs: RsClass::Simple0,
            srcs: [SrcState::None, SrcState::None],
            stage: Stage::InRs,
            mispredicted: false,
            renamed_at: 0,
            dispatched_at: 0,
            exec_start: 0,
            feedback: Default::default(),
            cons_head: u32::MAX,
            cons_tail: u32::MAX,
        }
    }

    #[test]
    fn lookup_is_by_offset_from_head() {
        let mut rob = Rob::with_capacity(8);
        for s in 0..4 {
            rob.push_back(entry(s));
        }
        assert_eq!(rob.len(), 4);
        assert_eq!(rob.get(2).unwrap().seq, 2);
        assert!(rob.get(4).is_none());
        let popped = rob.pop_front().unwrap();
        assert_eq!(popped.seq, 0);
        // Retired seqs miss, survivors still resolve.
        assert!(rob.get(0).is_none());
        assert_eq!(rob.get(3).unwrap().seq, 3);
        assert_eq!(rob.next_seq(), 4);
    }

    #[test]
    fn head_seq_survives_wraparound_reuse() {
        let mut rob = Rob::with_capacity(4);
        for s in 0..100u64 {
            rob.push_back(entry(s));
            if rob.len() == 4 {
                rob.pop_front();
                rob.pop_front();
            }
        }
        let front = rob.front().unwrap().seq;
        assert_eq!(rob.get(front).unwrap().seq, front);
        assert_eq!(rob.next_seq(), 100);
    }
}
