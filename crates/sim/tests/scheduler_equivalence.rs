//! Differential determinism oracle: the event-driven scheduler must be
//! observably identical to the legacy scan-per-cycle scheduler it
//! replaced. For every steering strategy and benchmark, the serialized
//! `SimReport` has to match byte for byte, and a recording probe must
//! see identical metrics — proving that cached result-store entries,
//! repro experiments, and telemetry are all unaffected by the
//! scheduling rewrite.

use ctcp_sim::{Simulation, Strategy};
use ctcp_telemetry::{Probe, Recorder, RecorderConfig};
use ctcp_workload::Benchmark;
use std::rc::Rc;

const ALL_STRATEGIES: [Strategy; 7] = [
    Strategy::Baseline,
    Strategy::IssueTime { latency: 0 },
    Strategy::IssueTime { latency: 4 },
    Strategy::Friendly { middle_bias: false },
    Strategy::Fdrt { pinning: true },
    Strategy::Fdrt { pinning: false },
    Strategy::FdrtIntraOnly,
];

#[test]
fn event_scheduler_matches_legacy_scan_byte_for_byte() {
    for bench in ["gzip", "twolf"] {
        let program = Benchmark::by_name(bench).unwrap().program();
        for strategy in ALL_STRATEGIES {
            let run = |legacy: bool| {
                let recorder: Rc<Recorder> = Rc::new(Recorder::new(RecorderConfig::metrics_only()));
                let report = Simulation::builder(&program)
                    .strategy(strategy)
                    .max_insts(20_000)
                    .legacy_scheduler(legacy)
                    .probe(Rc::clone(&recorder) as Rc<dyn Probe>)
                    .build()
                    .unwrap()
                    .run();
                (report.to_json(), recorder.metrics())
            };
            let (legacy_json, legacy_metrics) = run(true);
            let (event_json, event_metrics) = run(false);
            assert_eq!(
                legacy_json,
                event_json,
                "{bench}/{}: report bytes diverged between schedulers",
                strategy.name()
            );
            assert_eq!(
                legacy_metrics,
                event_metrics,
                "{bench}/{}: probe metrics diverged between schedulers",
                strategy.name()
            );
            // Histogram-level equality, spelled out per histogram: both
            // schedulers must sample every distribution (rs_occupancy
            // included) at the same per-cycle points, not merely agree
            // on scalar counters.
            for h in ctcp_telemetry::Hist::ALL {
                assert_eq!(
                    legacy_metrics.hist(h),
                    event_metrics.hist(h),
                    "{bench}/{}: histogram {h:?} diverged between schedulers",
                    strategy.name()
                );
            }
        }
    }
}
