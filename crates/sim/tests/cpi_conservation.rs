//! CPI-stack conservation golden test: the retirement-driven cycle
//! accounting must classify *every* slot of retire bandwidth, every
//! cycle, into exactly one component — so for any strategy and any
//! benchmark the stack components sum exactly to
//! `total cycles × retire width`, with nothing dropped and nothing
//! double-counted. A second test pins the paper's headline expectation:
//! the inter-cluster-delay component shrinks under FDRT steering
//! relative to the slot-based baseline.

use ctcp_sim::{SimConfig, Simulation, Strategy};
use ctcp_telemetry::{CpiStack, Probe, Recorder, RecorderConfig, RetireSlotKind};
use ctcp_workload::Benchmark;
use std::rc::Rc;

const ALL_STRATEGIES: [Strategy; 7] = [
    Strategy::Baseline,
    Strategy::IssueTime { latency: 0 },
    Strategy::IssueTime { latency: 4 },
    Strategy::Friendly { middle_bias: false },
    Strategy::Fdrt { pinning: true },
    Strategy::Fdrt { pinning: false },
    Strategy::FdrtIntraOnly,
];

fn run_with_stack(bench: &str, strategy: Strategy, max_insts: u64) -> (u64, CpiStack) {
    let program = Benchmark::by_name(bench).unwrap().program();
    let recorder: Rc<Recorder> = Rc::new(Recorder::new(RecorderConfig::attrib()));
    let report = Simulation::builder(&program)
        .strategy(strategy)
        .max_insts(max_insts)
        .probe(Rc::clone(&recorder) as Rc<dyn Probe>)
        .build()
        .unwrap()
        .run();
    (report.cycles, recorder.cpi_stack())
}

#[test]
fn stack_components_sum_to_total_retire_bandwidth() {
    let width = SimConfig::default().engine.retire_width as u64;
    for bench in ["gzip", "twolf"] {
        for strategy in ALL_STRATEGIES {
            let (cycles, stack) = run_with_stack(bench, strategy, 20_000);
            assert_eq!(
                stack.cycles,
                cycles,
                "{bench}/{}: stack must cover every simulated cycle",
                strategy.name()
            );
            assert_eq!(
                stack.total(),
                cycles * width,
                "{bench}/{}: components must sum to cycles × retire width",
                strategy.name()
            );
        }
    }
}

#[test]
fn fdrt_shrinks_the_inter_cluster_component_somewhere() {
    // The paper's argument in one assertion: FDRT steering exists to
    // cut inter-cluster operand delay, so on at least one benchmark the
    // inter-cluster slot count must come out below the slot-based
    // baseline's.
    let mut shrank = false;
    for bench in ["gzip", "twolf"] {
        let (_, base) = run_with_stack(bench, Strategy::Baseline, 30_000);
        let (_, fdrt) = run_with_stack(bench, Strategy::Fdrt { pinning: true }, 30_000);
        let b = base.get(RetireSlotKind::InterCluster);
        let f = fdrt.get(RetireSlotKind::InterCluster);
        if f < b {
            shrank = true;
        }
    }
    assert!(
        shrank,
        "FDRT should reduce inter-cluster delay slots on at least one benchmark"
    );
}
