//! Golden "no observer effect" test: attaching a telemetry recorder
//! must not perturb the simulation. The report serialized through the
//! store codec has to be byte-identical with and without a probe — any
//! drift means a hook site leaked architectural state.

use ctcp_sim::{Simulation, Strategy};
use ctcp_telemetry::{Probe, Recorder, RecorderConfig};
use ctcp_workload::Benchmark;
use std::rc::Rc;

#[test]
fn attaching_a_recorder_does_not_change_the_report() {
    for bench in ["gzip", "vortex"] {
        let program = Benchmark::by_name(bench).unwrap().program();
        for strategy in [Strategy::Baseline, Strategy::Fdrt { pinning: true }] {
            let bare = Simulation::builder(&program)
                .strategy(strategy)
                .max_insts(30_000)
                .build()
                .unwrap()
                .run();

            let recorder: Rc<Recorder> = Rc::new(Recorder::new(RecorderConfig::default()));
            let observed = Simulation::builder(&program)
                .strategy(strategy)
                .max_insts(30_000)
                .probe(Rc::clone(&recorder) as Rc<dyn Probe>)
                .build()
                .unwrap()
                .run();

            assert_eq!(
                bare.to_json(),
                observed.to_json(),
                "{bench}/{} report changed under observation",
                strategy.name()
            );
            // The recorder really was live, not silently detached.
            assert!(
                !recorder.events().is_empty(),
                "{bench}/{}: recorder saw no events",
                strategy.name()
            );
        }
    }
}

#[test]
fn attrib_collection_does_not_change_the_report() {
    // Same golden rule for the attribution layer: collecting lifecycle
    // records and the CPI stack must be invisible to the architecture.
    for bench in ["gzip", "vortex"] {
        let program = Benchmark::by_name(bench).unwrap().program();
        for strategy in [Strategy::Baseline, Strategy::Fdrt { pinning: true }] {
            let bare = Simulation::builder(&program)
                .strategy(strategy)
                .max_insts(30_000)
                .build()
                .unwrap()
                .run();

            let recorder: Rc<Recorder> = Rc::new(Recorder::new(RecorderConfig::attrib()));
            let observed = Simulation::builder(&program)
                .strategy(strategy)
                .max_insts(30_000)
                .probe(Rc::clone(&recorder) as Rc<dyn Probe>)
                .build()
                .unwrap()
                .run();

            assert_eq!(
                bare.to_json(),
                observed.to_json(),
                "{bench}/{} report changed under attribution",
                strategy.name()
            );
            // The attribution really accumulated: every cycle's retire
            // bandwidth is classified somewhere.
            let attrib = recorder.attrib_report();
            assert_eq!(
                attrib.stack.cycles,
                observed.cycles,
                "{bench}/{}: stack covers every cycle",
                strategy.name()
            );
            assert!(
                attrib.stack.total() > 0,
                "{bench}/{}: attribution recorder saw nothing",
                strategy.name()
            );
        }
    }
}
