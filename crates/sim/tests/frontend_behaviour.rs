//! Front-end behaviour through the whole simulator: trace-cache path
//! matching, indirect-branch prediction, return-address stack, and the
//! cost of steering latency.

use ctcp_isa::{Program, ProgramBuilder, Reg};
use ctcp_sim::{SimConfig, SimReport, Simulation, Strategy};

fn run_with_strategy(p: &Program, strategy: Strategy, max_insts: u64) -> SimReport {
    Simulation::builder(p)
        .strategy(strategy)
        .max_insts(max_insts)
        .build()
        .unwrap()
        .run()
}

/// A loop whose body contains an if/else whose direction alternates
/// deterministically: the trace cache must hold both paths
/// (path associativity) and the pattern is gshare-predictable.
fn alternating_diamond() -> Program {
    let mut b = ProgramBuilder::new();
    b.movi(Reg::R1, 0);
    b.movi(Reg::R2, 1 << 30);
    let top = b.here();
    b.andi(Reg::R3, Reg::R1, 1);
    let else_l = b.label();
    let join = b.label();
    b.bne(Reg::R3, Reg::ZERO, else_l);
    b.addi(Reg::R4, Reg::R4, 1); // then
    b.addi(Reg::R4, Reg::R4, 2);
    b.jmp(join);
    b.bind(else_l);
    b.addi(Reg::R5, Reg::R5, 1); // else
    b.addi(Reg::R5, Reg::R5, 2);
    b.bind(join);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.build()
}

#[test]
fn path_associative_traces_serve_alternating_paths() {
    let p = alternating_diamond();
    let r = run_with_strategy(&p, Strategy::Baseline, 40_000);
    // Once warm, both paths should stream from the trace cache, and the
    // alternating branch is history-predictable.
    assert!(
        r.tc_inst_fraction() > 0.8,
        "tc fraction {:.2}",
        r.tc_inst_fraction()
    );
    assert!(
        r.mispredict_rate() < 0.05,
        "mispredict {:.3}",
        r.mispredict_rate()
    );
}

/// A loop alternating between two indirect targets through a jump table.
fn indirect_dispatch() -> Program {
    let mut b = ProgramBuilder::new();
    let h0 = b.label();
    let h1 = b.label();
    b.movi(Reg::R1, 0);
    b.movi(Reg::R2, 1 << 30);
    b.movi(Reg::R10, 0x4_0000);
    // table[0] = h0; table[1] = h1
    b.movi_label(Reg::R3, h0);
    b.st(Reg::R3, Reg::R10, 0);
    b.movi_label(Reg::R3, h1);
    b.st(Reg::R3, Reg::R10, 8);
    let top = b.here();
    b.andi(Reg::R4, Reg::R1, 1);
    b.slli(Reg::R4, Reg::R4, 3);
    b.add(Reg::R4, Reg::R4, Reg::R10);
    b.ld(Reg::R5, Reg::R4, 0);
    b.jr(Reg::R5);
    b.bind(h0);
    b.addi(Reg::R6, Reg::R6, 1);
    let join = b.label();
    b.jmp(join);
    b.bind(h1);
    b.addi(Reg::R7, Reg::R7, 1);
    b.bind(join);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.build()
}

#[test]
fn alternating_indirect_targets_defeat_the_btb() {
    // The BTB holds one target per PC, so a jr alternating between two
    // targets mispredicts about half the time — this is the interpreter
    // behaviour the perlbmk-class workloads rely on.
    let p = indirect_dispatch();
    let r = run_with_strategy(&p, Strategy::Baseline, 40_000);
    let jrs = r.instructions / 12; // roughly one jr per iteration
    assert!(
        r.metrics.indirect_mispredicts as f64 > 0.6 * jrs as f64,
        "indirect mispredicts {} for ~{} jr's",
        r.metrics.indirect_mispredicts,
        jrs
    );
}

/// Nested call/ret: the RAS must track the stack correctly or every
/// return mispredicts.
fn nested_calls() -> Program {
    let mut b = ProgramBuilder::new();
    let outer = b.label();
    b.movi(Reg::R1, 0);
    b.movi(Reg::R2, 1 << 30);
    let top = b.here();
    b.call(outer);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.bind(outer);
    // The outer function saves lr in r20 (single nesting level keeps the
    // generated code simple while still exercising push/pop pairs).
    b.addi(Reg::R20, Reg::LR, 0);
    b.addi(Reg::R3, Reg::R3, 1);
    b.addi(Reg::LR, Reg::R20, 0);
    b.ret();
    b.build()
}

#[test]
fn returns_predict_through_the_ras() {
    let p = nested_calls();
    let r = run_with_strategy(&p, Strategy::Baseline, 30_000);
    let calls = r.instructions / 8;
    assert!(
        (r.metrics.indirect_mispredicts as f64) < 0.05 * calls as f64,
        "{} return mispredicts for ~{} calls",
        r.metrics.indirect_mispredicts,
        calls
    );
}

#[test]
fn steer_latency_costs_performance() {
    let p = alternating_diamond();
    let fast = run_with_strategy(&p, Strategy::IssueTime { latency: 0 }, 40_000);
    let slow = run_with_strategy(&p, Strategy::IssueTime { latency: 4 }, 40_000);
    assert!(
        slow.cycles >= fast.cycles,
        "4-cycle steering {} should not beat 0-cycle {}",
        slow.cycles,
        fast.cycles
    );
}

#[test]
fn icache_only_fetch_still_completes() {
    // Disable the trace cache's usefulness by making it tiny: the
    // simulator must still run correctly on the I-cache path.
    let p = alternating_diamond();
    let mut c = SimConfig {
        strategy: Strategy::Baseline,
        max_insts: 20_000,
        ..SimConfig::default()
    };
    c.trace_cache.entries = 2;
    c.trace_cache.assoc = 2;
    let r = Simulation::builder(&p).config(c).build().unwrap().run();
    assert_eq!(r.instructions, 20_000);
    assert!(r.ipc > 0.05);
}

#[test]
fn fill_latency_changes_little_on_hot_loops() {
    // The paper's §4 claim, at whole-simulator level: a 100-cycle fill
    // latency costs at most a few percent on a hot loop.
    let p = alternating_diamond();
    let run_with_lat = |lat: u64| {
        let mut c = SimConfig {
            strategy: Strategy::Fdrt { pinning: true },
            max_insts: 40_000,
            ..SimConfig::default()
        };
        c.fill.latency = lat;
        Simulation::builder(&p)
            .config(c)
            .build()
            .unwrap()
            .run()
            .cycles as f64
    };
    let fast = run_with_lat(3);
    let slow = run_with_lat(100);
    assert!(
        slow / fast < 1.10,
        "100-cycle fill latency cost {:.1}%",
        100.0 * (slow / fast - 1.0)
    );
}
