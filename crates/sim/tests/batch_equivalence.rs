//! Batched-execution oracle: a `BatchRunner` that recycles arena
//! storage and memoizes warmup checkpoints across cells must be
//! observably identical to building and running every cell on its own.
//! For every steering strategy — with and without a warmup budget — the
//! serialized `SimReport` has to match byte for byte, so the result
//! store, repro experiments, and rendered tables cannot tell how a cell
//! was executed. The warmup split itself is also pinned down: resuming
//! from a captured checkpoint equals fast-forwarding fresh, and the
//! report covers only the timed phase.

use ctcp_isa::{Program, ProgramBuilder, Reg};
use ctcp_sim::{BatchRunner, Checkpoint, SimConfig, Simulation, Strategy, Topology};
use ctcp_workload::Benchmark;

const ALL_STRATEGIES: [Strategy; 7] = [
    Strategy::Baseline,
    Strategy::IssueTime { latency: 0 },
    Strategy::IssueTime { latency: 4 },
    Strategy::Friendly { middle_bias: false },
    Strategy::Fdrt { pinning: true },
    Strategy::Fdrt { pinning: false },
    Strategy::FdrtIntraOnly,
];

fn cell(strategy: Strategy, insts: u64, warmup: u64) -> SimConfig {
    SimConfig {
        strategy,
        max_insts: insts,
        warmup_insts: warmup,
        ..SimConfig::default()
    }
}

#[test]
fn batched_reports_match_one_at_a_time_byte_for_byte() {
    for bench in ["gzip", "twolf"] {
        let program = Benchmark::by_name(bench).unwrap().program();
        // Cold cells for every strategy, then warmed-up cells sharing
        // one (program, warmup) pair — so the runner's checkpoint is
        // captured once and reused, and both paths are compared.
        let mut cells: Vec<SimConfig> = ALL_STRATEGIES.iter().map(|&s| cell(s, 8_000, 0)).collect();
        cells.extend(ALL_STRATEGIES.iter().map(|&s| cell(s, 8_000, 2_000)));
        let mut runner = BatchRunner::new();
        for cfg in cells {
            let batched = runner
                .try_run(Simulation::builder(&program).config(cfg))
                .unwrap();
            let direct = Simulation::builder(&program)
                .config(cfg)
                .build()
                .unwrap()
                .run();
            assert_eq!(
                batched.to_json(),
                direct.to_json(),
                "{bench}/{} (warmup {}): batched report diverged",
                cfg.strategy.name(),
                cfg.warmup_insts
            );
        }
    }
}

#[test]
fn checkpoint_resume_is_deterministic_and_matches_self_forwarding() {
    let program = Benchmark::by_name("gzip").unwrap().program();
    let warmup = 3_000;
    let ck = Checkpoint::capture(&program, warmup);
    assert_eq!(ck.warmup_instructions(), warmup);
    assert_eq!(
        ck.instructions_skipped(),
        warmup,
        "gzip outlives the warmup"
    );
    let resumed = |ck: &Checkpoint| {
        Simulation::builder(&program)
            .strategy(Strategy::Fdrt { pinning: true })
            .simulation_instructions(6_000)
            .resume_from(ck)
            .build()
            .unwrap()
            .run()
            .to_json()
    };
    // One capture serves any number of timed runs, identically.
    let first = resumed(&ck);
    assert_eq!(first, resumed(&ck), "resuming twice diverged");
    // And a resume equals a simulation that fast-forwards on its own.
    let self_forwarded = Simulation::builder(&program)
        .strategy(Strategy::Fdrt { pinning: true })
        .warmup_instructions(warmup)
        .simulation_instructions(6_000)
        .build()
        .unwrap()
        .run()
        .to_json();
    assert_eq!(first, self_forwarded, "resume diverged from fresh warmup");
}

#[test]
fn explicit_zero_warmup_is_byte_identical_to_untouched() {
    // Seeded LCG so the sampled configurations are reproducible without
    // hardcoding eight literals.
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let program = Benchmark::by_name("twolf").unwrap().program();
    for _ in 0..8 {
        let mut cfg = cell(ALL_STRATEGIES[next(7) as usize], 2_000 + next(6_000), 0);
        cfg.engine.geometry.clusters = 1 + next(4) as u8;
        cfg.engine.geometry.topology =
            [Topology::Linear, Topology::Ring, Topology::FullyConnected][next(3) as usize];
        cfg.engine.hop_latency = 1 + next(3);
        let explicit = Simulation::builder(&program)
            .config(cfg)
            .warmup_instructions(0)
            .build()
            .unwrap()
            .run();
        let untouched = Simulation::builder(&program)
            .config(cfg)
            .build()
            .unwrap()
            .run();
        assert_eq!(
            explicit.to_json(),
            untouched.to_json(),
            "{}: warmup 0 is not a no-op",
            cfg.strategy.name()
        );
    }
}

/// A short counted loop with a real end — the synthetic benchmarks
/// never halt (they are always bounded by `max_insts`), so the
/// end-of-program warmup cases need a finite program.
fn counted_loop(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    b.movi(Reg::R1, 0);
    b.movi(Reg::R2, iters);
    let top = b.here();
    b.addi(Reg::R3, Reg::R1, 7);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.build()
}

#[test]
fn report_covers_only_the_timed_phase() {
    // The common case first, on a real workload: the timed budget wins.
    let gzip = Benchmark::by_name("gzip").unwrap().program();
    let warmed = Simulation::builder(&gzip)
        .strategy(Strategy::Baseline)
        .warmup_instructions(4_000)
        .simulation_instructions(2_500)
        .build()
        .unwrap()
        .run();
    assert_eq!(warmed.instructions, 2_500);

    let program = counted_loop(200);
    let run = |warmup: u64, max: u64| {
        Simulation::builder(&program)
            .warmup_instructions(warmup)
            .simulation_instructions(max)
            .build()
            .unwrap()
            .run()
    };
    // Learn the loop's total dynamic length with a functional-only pass
    // (a checkpoint that outruns the program).
    let total = Checkpoint::capture(&program, u64::MAX).instructions_skipped();
    assert!(total > 400, "200 iterations of a 3-inst body");
    // The timed phase is exactly what the warmup leaves behind.
    assert_eq!(run(total - 50, u64::MAX).instructions, 50);
    // Warmup past the end of the program leaves nothing to time.
    assert_eq!(run(total + 1, u64::MAX).instructions, 0);
}
