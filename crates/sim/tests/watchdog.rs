//! Crash-injection tests for the retire-progress watchdog.
//!
//! The `stall-retire` fail point (see `ctcp_telemetry::failpoint`)
//! swallows every retirement inside the cycle loop, wedging the
//! simulation exactly the way a steering or scheduling bug would.
//! These tests prove the watchdog converts that hang into a typed
//! [`SimError::Livelock`] carrying a useful diagnostic — instead of
//! spinning until the generic cycle cap.
//!
//! Fail-point state is process-global and `Simulation` samples it at
//! construction, so every test here — including the no-fault control —
//! serialises on one mutex to keep an armed point from leaking into a
//! neighbour's build.

use ctcp_isa::{Program, ProgramBuilder, Reg};
use ctcp_sim::{SimError, Simulation};
use ctcp_telemetry::{failpoint, Counter, Recorder, RecorderConfig};
use std::rc::Rc;
use std::sync::{Mutex, MutexGuard};

static LOCK: Mutex<()> = Mutex::new(());

/// Serialises the test and guarantees the fail point is disarmed on
/// entry and on exit (even when the test panics).
fn exclusive() -> (MutexGuard<'static, ()>, impl Drop) {
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            failpoint::set(None);
        }
    }
    let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::set(None);
    (guard, Disarm)
}

fn loop_program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    b.movi(Reg::R1, 0);
    b.movi(Reg::R2, iters);
    let top = b.here();
    b.addi(Reg::R3, Reg::R1, 5);
    b.add(Reg::R4, Reg::R3, Reg::R3);
    b.addi(Reg::R1, Reg::R1, 1);
    b.blt(Reg::R1, Reg::R2, top);
    b.halt();
    b.build()
}

#[test]
fn stalled_retire_returns_livelock_with_diagnostic() {
    let _x = exclusive();
    failpoint::set(Some("stall-retire"));
    let p = loop_program(1_000_000);
    let err = Simulation::builder(&p)
        .max_insts(10_000)
        .watchdog_stall_limit(2_000)
        .build()
        .unwrap()
        .try_run()
        .expect_err("a stalled pipeline must trip the watchdog");
    let rendered = err.to_string();
    let SimError::Livelock {
        stalled_for,
        diagnostic,
    } = err
    else {
        panic!("expected Livelock, got {err:?}");
    };
    assert!(stalled_for >= 2_000, "stalled_for={stalled_for}");
    // The diagnostic names the cycle, the head-of-ROB instruction the
    // machine is stuck behind, and per-cluster occupancy.
    assert_eq!(diagnostic.cycle, stalled_for, "no retirement ever happened");
    assert!(rendered.contains("livelock"), "{rendered}");
    assert!(
        rendered.contains(&format!("cycle {}", diagnostic.cycle)),
        "{rendered}"
    );
    assert!(rendered.contains("rob head seq"), "{rendered}");
    assert!(
        rendered.contains("occupancy (dispatch+rs) c0:"),
        "{rendered}"
    );
}

#[test]
fn watchdog_trip_bumps_the_telemetry_counter() {
    let _x = exclusive();
    failpoint::set(Some("stall-retire"));
    let p = loop_program(1_000_000);
    let rec = Rc::new(Recorder::new(RecorderConfig::metrics_only()));
    let err = Simulation::builder(&p)
        .max_insts(10_000)
        .watchdog_stall_limit(1_000)
        .probe(Rc::clone(&rec) as Rc<dyn ctcp_telemetry::Probe>)
        .build()
        .unwrap()
        .try_run();
    assert!(matches!(err, Err(SimError::Livelock { .. })), "{err:?}");
    assert_eq!(rec.metrics().get(Counter::WatchdogTrips), 1);
}

#[test]
fn run_wrapper_panics_with_the_rendered_error() {
    let _x = exclusive();
    failpoint::set(Some("stall-retire"));
    let p = loop_program(1_000_000);
    let sim = Simulation::builder(&p)
        .max_insts(10_000)
        .watchdog_stall_limit(500)
        .build()
        .unwrap();
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence expected panic
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sim.run()));
    std::panic::set_hook(hook);
    let payload = result.expect_err("run() must panic on a watchdog trip");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .expect("panic message is a String");
    assert!(msg.starts_with("simulation aborted: livelock"), "{msg}");
}

#[test]
fn healthy_run_never_trips_a_tight_watchdog() {
    let _x = exclusive();
    // A 300-cycle stall limit is far below the default yet far above
    // any legitimate retire gap in this tiny loop: a false-positive
    // watchdog would fail here.
    let p = loop_program(2_000);
    let report = Simulation::builder(&p)
        .max_insts(8_000)
        .watchdog_stall_limit(300)
        .build()
        .unwrap()
        .try_run()
        .expect("healthy run must not trip the watchdog");
    assert_eq!(report.instructions, 8_000);
}

#[test]
fn zero_stall_limit_disables_the_watchdog() {
    let _x = exclusive();
    failpoint::set(Some("stall-retire"));
    // With the watchdog off, the only guard left is the cycle budget —
    // the stalled run must end in CycleBudget, not Livelock.
    let p = loop_program(1_000_000);
    let err = Simulation::builder(&p)
        .max_insts(10_000)
        .watchdog_stall_limit(0)
        .cycle_budget(3_000)
        .build()
        .unwrap()
        .try_run()
        .expect_err("stalled run with a finite budget must abort");
    assert!(
        matches!(err, SimError::CycleBudget { budget: 3_000, .. }),
        "{err:?}"
    );
}
