//! Whole-simulator configuration.

use ctcp_core::assign::{FdrtAssigner, FdrtConfig, RetireTimeStrategy, SlotFillOrder};
use ctcp_core::{EngineConfig, SteeringMode};
use ctcp_frontend::{BtbConfig, HybridConfig, ICacheConfig};
use ctcp_tracecache::{FillUnitConfig, TraceCacheConfig};

/// The cluster-assignment strategy under evaluation (§2.3, §4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Slot-based steering of the unmodified retire order.
    Baseline,
    /// Issue-time dependency steering with `latency` extra pipeline
    /// stages (0 = the idealised variant, 4 = the realistic one; the
    /// 8-wide study uses 2).
    IssueTime {
        /// Extra steer-stage latency in cycles.
        latency: u64,
    },
    /// Friendly et al.'s retire-time reordering.
    Friendly {
        /// Bias unattached instructions toward the middle clusters (the
        /// paper's §5.3 "minor adjustment").
        middle_bias: bool,
    },
    /// The proposed feedback-directed retire-time strategy.
    Fdrt {
        /// Pin chain leaders permanently (disable for the Table 9/10
        /// ablation).
        pinning: bool,
    },
    /// FDRT with inter-trace chaining disabled: only the intra-trace
    /// heuristics of Table 5 (the paper's §5.3 ablation).
    FdrtIntraOnly,
}

impl Strategy {
    /// A short, stable name for reports.
    pub fn name(&self) -> String {
        match self {
            Strategy::Baseline => "base".into(),
            Strategy::IssueTime { latency } => format!("issue-time({latency})"),
            Strategy::Friendly { middle_bias: false } => "friendly".into(),
            Strategy::Friendly { middle_bias: true } => "friendly-mid".into(),
            Strategy::Fdrt { pinning: true } => "fdrt".into(),
            Strategy::Fdrt { pinning: false } => "fdrt-nopin".into(),
            Strategy::FdrtIntraOnly => "fdrt-intra".into(),
        }
    }

    /// How the engine steers instructions under this strategy.
    pub fn steering_mode(&self) -> SteeringMode {
        match self {
            Strategy::IssueTime { .. } => SteeringMode::IssueTime,
            _ => SteeringMode::Slot,
        }
    }

    /// The retire-time placement component of this strategy (issue-time
    /// steering keeps the identity placement in the trace cache).
    pub fn retire_time(&self) -> RetireTimeStrategy {
        match self {
            Strategy::Baseline | Strategy::IssueTime { .. } => RetireTimeStrategy::Baseline,
            Strategy::Friendly { middle_bias } => RetireTimeStrategy::Friendly(if *middle_bias {
                SlotFillOrder::MiddleFirst
            } else {
                SlotFillOrder::Sequential
            }),
            Strategy::Fdrt { pinning } => RetireTimeStrategy::Fdrt(FdrtAssigner::new(FdrtConfig {
                pinning: *pinning,
                chaining: true,
            })),
            Strategy::FdrtIntraOnly => RetireTimeStrategy::Fdrt(FdrtAssigner::new(FdrtConfig {
                pinning: true,
                chaining: false,
            })),
        }
    }
}

/// Full simulator configuration. Defaults reproduce Table 7 with the
/// baseline strategy.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Execution engine (clusters, ROB, latencies, memory system).
    pub engine: EngineConfig,
    /// Trace cache geometry (line capacity is forced to the engine's
    /// total slot count at simulation start).
    pub trace_cache: TraceCacheConfig,
    /// Instruction cache.
    pub icache: ICacheConfig,
    /// Hybrid branch predictor tables.
    pub predictor: HybridConfig,
    /// Branch target buffer.
    pub btb: BtbConfig,
    /// Return address stack depth.
    pub ras_depth: usize,
    /// Fill unit (trace construction) parameters.
    pub fill: FillUnitConfig,
    /// Cluster assignment strategy.
    pub strategy: Strategy,
    /// Decode pipeline stages between fetch and rename.
    pub decode_stages: u64,
    /// Stop after this many retired instructions.
    pub max_insts: u64,
    /// Functionally execute (no timing) this many instructions before
    /// the timed phase begins. The report covers only the timed phase;
    /// predictors and caches start cold at the warmup boundary.
    pub warmup_insts: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            engine: EngineConfig::default(),
            trace_cache: TraceCacheConfig::default(),
            icache: ICacheConfig::default(),
            predictor: HybridConfig::default(),
            btb: BtbConfig::default(),
            ras_depth: 16,
            fill: FillUnitConfig::default(),
            strategy: Strategy::Baseline,
            decode_stages: 1,
            max_insts: 100_000,
            warmup_insts: 0,
        }
    }
}

impl SimConfig {
    /// Applies the issue-time steer latency implied by the strategy to
    /// the engine configuration, and aligns trace-line capacity with the
    /// cluster geometry. Called by the simulation constructor.
    pub(crate) fn normalized(mut self) -> Self {
        if let Strategy::IssueTime { latency } = self.strategy {
            self.engine.steer_latency = latency;
        }
        let slots = self.engine.geometry.total_slots();
        self.trace_cache.line_capacity = slots;
        self.fill.max_insts = slots;
        self.fill.max_blocks = self.trace_cache.max_blocks;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(Strategy::Baseline.name(), "base");
        assert_eq!(Strategy::IssueTime { latency: 4 }.name(), "issue-time(4)");
        assert_eq!(Strategy::Friendly { middle_bias: false }.name(), "friendly");
        assert_eq!(Strategy::Fdrt { pinning: true }.name(), "fdrt");
        assert_eq!(Strategy::Fdrt { pinning: false }.name(), "fdrt-nopin");
    }

    #[test]
    fn normalization_aligns_capacity_and_latency() {
        let mut c = SimConfig {
            strategy: Strategy::IssueTime { latency: 4 },
            ..SimConfig::default()
        };
        c.engine.geometry.clusters = 2;
        c.engine.geometry.slots_per_cluster = 4;
        let n = c.normalized();
        assert_eq!(n.engine.steer_latency, 4);
        assert_eq!(n.trace_cache.line_capacity, 8);
        assert_eq!(n.fill.max_insts, 8);
    }

    #[test]
    fn steering_modes() {
        assert_eq!(
            Strategy::Baseline.steering_mode(),
            ctcp_core::SteeringMode::Slot
        );
        assert_eq!(
            Strategy::IssueTime { latency: 0 }.steering_mode(),
            ctcp_core::SteeringMode::IssueTime
        );
        assert_eq!(
            Strategy::Fdrt { pinning: true }.steering_mode(),
            ctcp_core::SteeringMode::Slot
        );
    }
}
