//! JSON serialization of [`SimReport`] for the harness result store.
//!
//! The encoding is a flat-ish object mirroring the struct: nested stats
//! become nested objects, fixed-size counter arrays become JSON arrays,
//! and the optional FDRT block is `null` for non-FDRT strategies. The
//! field set is versioned implicitly through the store's key salt, so a
//! decode error on an old line is treated as a cache miss, never a
//! panic.

use crate::json::Value;
use crate::report::{MetricsSnapshot, SimReport};
use ctcp_core::assign::FdrtStats;
use ctcp_core::{EngineStats, ForwardingStats};
use ctcp_memory::CacheStats;
use ctcp_telemetry::AttribReport;
use ctcp_tracecache::TraceCacheStats;

fn u64_arr(xs: &[u64]) -> Value {
    Value::Arr(xs.iter().map(|&x| Value::u64(x)).collect())
}

fn f64_arr(xs: &[f64]) -> Value {
    Value::Arr(xs.iter().map(|&x| Value::f64(x)).collect())
}

fn fwd_to_json(s: &ForwardingStats) -> Value {
    Value::Obj(vec![
        ("insts_with_inputs".into(), Value::u64(s.insts_with_inputs)),
        ("crit_from_rf".into(), Value::u64(s.crit_from_rf)),
        ("crit_from_rs1".into(), Value::u64(s.crit_from_rs1)),
        ("crit_from_rs2".into(), Value::u64(s.crit_from_rs2)),
        ("forwarded_inputs".into(), Value::u64(s.forwarded_inputs)),
        (
            "forwarded_critical".into(),
            Value::u64(s.forwarded_critical),
        ),
        (
            "critical_inter_trace".into(),
            Value::u64(s.critical_inter_trace),
        ),
        (
            "critical_intra_cluster".into(),
            Value::u64(s.critical_intra_cluster),
        ),
        (
            "critical_distance_sum".into(),
            Value::u64(s.critical_distance_sum),
        ),
    ])
}

fn engine_to_json(s: &EngineStats) -> Value {
    Value::Obj(vec![
        ("retired".into(), Value::u64(s.retired)),
        ("loads".into(), Value::u64(s.loads)),
        ("stores".into(), Value::u64(s.stores)),
        ("store_forwards".into(), Value::u64(s.store_forwards)),
        ("rs_full_stalls".into(), Value::u64(s.rs_full_stalls)),
        ("redirects".into(), Value::u64(s.redirects)),
        (
            "executed_per_cluster".into(),
            u64_arr(&s.executed_per_cluster),
        ),
        ("sum_rs_wait".into(), Value::u64(s.sum_rs_wait)),
        (
            "sum_complete_to_retire".into(),
            Value::u64(s.sum_complete_to_retire),
        ),
        ("sum_dispatch_wait".into(), Value::u64(s.sum_dispatch_wait)),
        ("rs_wait_by_fu".into(), u64_arr(&s.rs_wait_by_fu)),
        ("count_by_fu".into(), u64_arr(&s.count_by_fu)),
    ])
}

fn fdrt_to_json(s: &FdrtStats) -> Value {
    Value::Obj(vec![
        ("options".into(), u64_arr(&s.options)),
        ("skipped".into(), Value::u64(s.skipped)),
        ("migrations".into(), Value::u64(s.migrations)),
        ("migration_samples".into(), Value::u64(s.migration_samples)),
        ("chain_migrations".into(), Value::u64(s.chain_migrations)),
        ("chain_samples".into(), Value::u64(s.chain_samples)),
        ("leaders_created".into(), Value::u64(s.leaders_created)),
        ("followers_created".into(), Value::u64(s.followers_created)),
    ])
}

fn cache_to_json(s: &CacheStats) -> Value {
    Value::Obj(vec![
        ("hits".into(), Value::u64(s.hits)),
        ("misses".into(), Value::u64(s.misses)),
    ])
}

fn tc_to_json(s: &TraceCacheStats) -> Value {
    Value::Obj(vec![
        ("hits".into(), Value::u64(s.hits)),
        ("misses".into(), Value::u64(s.misses)),
        ("installs".into(), Value::u64(s.installs)),
        ("evictions".into(), Value::u64(s.evictions)),
    ])
}

fn req<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    req(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not a u64"))
}

fn req_f64(v: &Value, key: &str) -> Result<f64, String> {
    req(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field {key:?} is not a number"))
}

fn req_u64_arr<const N: usize>(v: &Value, key: &str) -> Result<[u64; N], String> {
    let xs = req(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} is not an array"))?;
    if xs.len() != N {
        return Err(format!("field {key:?} has {} elements, want {N}", xs.len()));
    }
    let mut out = [0u64; N];
    for (o, x) in out.iter_mut().zip(xs) {
        *o = x
            .as_u64()
            .ok_or_else(|| format!("field {key:?} has a non-u64 element"))?;
    }
    Ok(out)
}

fn req_f64_arr<const N: usize>(v: &Value, key: &str) -> Result<[f64; N], String> {
    let xs = req(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} is not an array"))?;
    if xs.len() != N {
        return Err(format!("field {key:?} has {} elements, want {N}", xs.len()));
    }
    let mut out = [0f64; N];
    for (o, x) in out.iter_mut().zip(xs) {
        *o = x
            .as_f64()
            .ok_or_else(|| format!("field {key:?} has a non-number element"))?;
    }
    Ok(out)
}

fn fwd_from_json(v: &Value) -> Result<ForwardingStats, String> {
    Ok(ForwardingStats {
        insts_with_inputs: req_u64(v, "insts_with_inputs")?,
        crit_from_rf: req_u64(v, "crit_from_rf")?,
        crit_from_rs1: req_u64(v, "crit_from_rs1")?,
        crit_from_rs2: req_u64(v, "crit_from_rs2")?,
        forwarded_inputs: req_u64(v, "forwarded_inputs")?,
        forwarded_critical: req_u64(v, "forwarded_critical")?,
        critical_inter_trace: req_u64(v, "critical_inter_trace")?,
        critical_intra_cluster: req_u64(v, "critical_intra_cluster")?,
        critical_distance_sum: req_u64(v, "critical_distance_sum")?,
    })
}

fn engine_from_json(v: &Value) -> Result<EngineStats, String> {
    Ok(EngineStats {
        retired: req_u64(v, "retired")?,
        loads: req_u64(v, "loads")?,
        stores: req_u64(v, "stores")?,
        store_forwards: req_u64(v, "store_forwards")?,
        rs_full_stalls: req_u64(v, "rs_full_stalls")?,
        redirects: req_u64(v, "redirects")?,
        executed_per_cluster: req_u64_arr(v, "executed_per_cluster")?,
        sum_rs_wait: req_u64(v, "sum_rs_wait")?,
        sum_complete_to_retire: req_u64(v, "sum_complete_to_retire")?,
        sum_dispatch_wait: req_u64(v, "sum_dispatch_wait")?,
        rs_wait_by_fu: req_u64_arr(v, "rs_wait_by_fu")?,
        count_by_fu: req_u64_arr(v, "count_by_fu")?,
    })
}

fn fdrt_from_json(v: &Value) -> Result<FdrtStats, String> {
    Ok(FdrtStats {
        options: req_u64_arr(v, "options")?,
        skipped: req_u64(v, "skipped")?,
        migrations: req_u64(v, "migrations")?,
        migration_samples: req_u64(v, "migration_samples")?,
        chain_migrations: req_u64(v, "chain_migrations")?,
        chain_samples: req_u64(v, "chain_samples")?,
        leaders_created: req_u64(v, "leaders_created")?,
        followers_created: req_u64(v, "followers_created")?,
    })
}

fn cache_from_json(v: &Value) -> Result<CacheStats, String> {
    Ok(CacheStats {
        hits: req_u64(v, "hits")?,
        misses: req_u64(v, "misses")?,
    })
}

fn tc_from_json(v: &Value) -> Result<TraceCacheStats, String> {
    Ok(TraceCacheStats {
        hits: req_u64(v, "hits")?,
        misses: req_u64(v, "misses")?,
        installs: req_u64(v, "installs")?,
        evictions: req_u64(v, "evictions")?,
    })
}

impl SimReport {
    /// Encodes the report as a single-line JSON object. The layout is
    /// kept flat (metrics fields at top level, exactly as before the
    /// [`MetricsSnapshot`] refactor) so stored lines remain readable by
    /// both old and new binaries without a format-version bump.
    pub fn to_json(&self) -> String {
        let m = &self.metrics;
        let fdrt = match &m.fdrt {
            Some(s) => fdrt_to_json(s),
            None => Value::Null,
        };
        Value::Obj(vec![
            ("strategy".into(), Value::str(&self.strategy)),
            ("cycles".into(), Value::u64(self.cycles)),
            ("instructions".into(), Value::u64(self.instructions)),
            ("insts_from_tc".into(), Value::u64(m.insts_from_tc)),
            ("insts_from_icache".into(), Value::u64(m.insts_from_icache)),
            ("traces_built".into(), Value::u64(m.traces_built)),
            ("insts_in_traces".into(), Value::u64(m.insts_in_traces)),
            ("cond_mispredicts".into(), Value::u64(m.cond_mispredicts)),
            ("cond_branches".into(), Value::u64(m.cond_branches)),
            (
                "indirect_mispredicts".into(),
                Value::u64(m.indirect_mispredicts),
            ),
            ("fwd".into(), fwd_to_json(&m.fwd)),
            ("repeat_all".into(), f64_arr(&m.repeat_all)),
            (
                "repeat_critical_inter".into(),
                f64_arr(&m.repeat_critical_inter),
            ),
            ("fdrt".into(), fdrt),
            ("engine".into(), engine_to_json(&m.engine)),
            ("trace_cache".into(), tc_to_json(&m.trace_cache)),
            ("l1d".into(), cache_to_json(&m.l1d)),
            ("icache".into(), cache_to_json(&m.icache)),
            (
                "attrib".into(),
                match &self.attrib {
                    Some(a) => a.to_value(),
                    None => Value::Null,
                },
            ),
            ("ipc".into(), Value::f64(self.ipc)),
        ])
        .render()
    }

    /// Decodes a report previously produced by [`SimReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed or missing
    /// field. Callers treating stored lines as a cache should treat any
    /// error as a miss.
    pub fn from_json(text: &str) -> Result<SimReport, String> {
        let v = Value::parse(text)?;
        Self::from_value(&v)
    }

    /// Decodes a report from an already-parsed JSON value (used by the
    /// result store, which wraps reports in an envelope object).
    pub fn from_value(v: &Value) -> Result<SimReport, String> {
        let fdrt = match req(v, "fdrt")? {
            Value::Null => None,
            other => Some(fdrt_from_json(other)?),
        };
        // Tolerate absence (not just null): lines written before the
        // attribution layer existed simply decode with no attribution.
        let attrib = match v.get("attrib") {
            None | Some(Value::Null) => None,
            Some(other) => Some(AttribReport::from_value(other)?),
        };
        Ok(SimReport {
            strategy: req(v, "strategy")?
                .as_str()
                .ok_or("field \"strategy\" is not a string")?
                .to_string(),
            cycles: req_u64(v, "cycles")?,
            instructions: req_u64(v, "instructions")?,
            ipc: req_f64(v, "ipc")?,
            metrics: MetricsSnapshot {
                insts_from_tc: req_u64(v, "insts_from_tc")?,
                insts_from_icache: req_u64(v, "insts_from_icache")?,
                traces_built: req_u64(v, "traces_built")?,
                insts_in_traces: req_u64(v, "insts_in_traces")?,
                cond_mispredicts: req_u64(v, "cond_mispredicts")?,
                cond_branches: req_u64(v, "cond_branches")?,
                indirect_mispredicts: req_u64(v, "indirect_mispredicts")?,
                fwd: fwd_from_json(req(v, "fwd")?)?,
                repeat_all: req_f64_arr(v, "repeat_all")?,
                repeat_critical_inter: req_f64_arr(v, "repeat_critical_inter")?,
                fdrt,
                engine: engine_from_json(req(v, "engine")?)?,
                trace_cache: tc_from_json(req(v, "trace_cache")?)?,
                l1d: cache_from_json(req(v, "l1d")?)?,
                icache: cache_from_json(req(v, "icache")?)?,
            },
            attrib,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(with_fdrt: bool) -> SimReport {
        let metrics = MetricsSnapshot {
            insts_from_tc: 250_000,
            insts_from_icache: 50_000,
            traces_built: 9_999,
            insts_in_traces: 240_000,
            cond_mispredicts: 1_234,
            cond_branches: 40_000,
            indirect_mispredicts: 17,
            fwd: ForwardingStats {
                insts_with_inputs: 280_000,
                crit_from_rf: 100_000,
                crit_from_rs1: 90_000,
                crit_from_rs2: 90_000,
                forwarded_inputs: 200_000,
                forwarded_critical: 150_000,
                critical_inter_trace: 60_000,
                critical_intra_cluster: 45_000,
                critical_distance_sum: 88_000,
            },
            repeat_all: [0.91, 0.87],
            repeat_critical_inter: [0.93, 0.89],
            fdrt: with_fdrt.then_some(FdrtStats {
                options: [1, 2, 3, 4, 5],
                skipped: 6,
                migrations: 7,
                migration_samples: 8,
                chain_migrations: 9,
                chain_samples: 10,
                leaders_created: 11,
                followers_created: 12,
            }),
            engine: EngineStats {
                retired: 300_000,
                loads: 70_000,
                stores: 30_000,
                store_forwards: 5_000,
                rs_full_stalls: 2_000,
                redirects: 1_300,
                executed_per_cluster: [1, 2, 3, 4, 0, 0, 0, 0],
                sum_rs_wait: 900_000,
                sum_complete_to_retire: 450_000,
                sum_dispatch_wait: 120_000,
                rs_wait_by_fu: [1, 2, 3, 4, 5, 6, 7],
                count_by_fu: [7, 6, 5, 4, 3, 2, 1],
            },
            trace_cache: TraceCacheStats {
                hits: 10,
                misses: 20,
                installs: 30,
                evictions: 40,
            },
            l1d: CacheStats {
                hits: 100,
                misses: 200,
            },
            icache: CacheStats {
                hits: 300,
                misses: 400,
            },
        };
        SimReport {
            strategy: "fdrt".into(),
            cycles: 123_456,
            instructions: 300_000,
            ipc: 2.4305,
            metrics,
            attrib: None,
        }
    }

    fn assert_reports_equal(a: &SimReport, b: &SimReport) {
        // SimReport has no PartialEq (float fields); compare the stable
        // Debug rendering, which covers every field.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn round_trip_with_fdrt() {
        let r = sample(true);
        let back = SimReport::from_json(&r.to_json()).unwrap();
        assert_reports_equal(&r, &back);
    }

    #[test]
    fn round_trip_without_fdrt() {
        let r = sample(false);
        let back = SimReport::from_json(&r.to_json()).unwrap();
        assert!(back.metrics.fdrt.is_none());
        assert_reports_equal(&r, &back);
    }

    #[test]
    fn round_trip_with_attrib() {
        use ctcp_telemetry::{CritEdge, CriticalSummary};
        let mut r = sample(false);
        let mut report = AttribReport::default();
        report
            .stack
            .charge(3, 1, ctcp_telemetry::RetireSlotKind::InterCluster);
        report
            .stack
            .charge(4, 0, ctcp_telemetry::RetireSlotKind::Base);
        report.critical = CriticalSummary {
            edges: 12,
            cross_cluster: 5,
            top: vec![CritEdge {
                from_pc: 0x40,
                to_pc: 0x80,
                hops: 2,
                count: 4,
            }],
        };
        r.attrib = Some(report);
        let back = SimReport::from_json(&r.to_json()).unwrap();
        assert_reports_equal(&r, &back);
    }

    #[test]
    fn lines_without_attrib_still_decode() {
        // Pre-attribution store lines have no "attrib" key at all.
        let mut v = Value::parse(&sample(true).to_json()).unwrap();
        if let Value::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "attrib");
        }
        let back = SimReport::from_value(&v).unwrap();
        assert!(back.attrib.is_none());
    }

    #[test]
    fn encoding_is_one_line() {
        assert!(!sample(true).to_json().contains('\n'));
    }

    #[test]
    fn missing_fields_are_reported() {
        let mut v = Value::parse(&sample(true).to_json()).unwrap();
        if let Value::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "engine");
        }
        let err = SimReport::from_value(&v).unwrap_err();
        assert!(err.contains("engine"), "{err}");
    }

    #[test]
    fn wrong_array_lengths_are_reported() {
        let text = sample(true)
            .to_json()
            .replace("\"repeat_all\":[0.91,0.87]", "\"repeat_all\":[0.91]");
        let err = SimReport::from_json(&text).unwrap_err();
        assert!(err.contains("repeat_all"), "{err}");
    }
}
