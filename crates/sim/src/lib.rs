//! # The whole-processor CTCP simulator
//!
//! Wires the front-end (branch predictor, BTB, RAS, instruction cache),
//! the trace cache and fill unit, the clustered out-of-order engine, and
//! the data memory system into a cycle-level model of the paper's
//! baseline architecture (Table 7), then exposes an experiment API used
//! by every table and figure reproduction.
//!
//! ## Example
//!
//! ```
//! use ctcp_sim::{SimConfig, Simulation, Strategy};
//! use ctcp_workload::Benchmark;
//!
//! let program = Benchmark::by_name("gzip").unwrap().program();
//! let mut config = SimConfig::default();
//! config.max_insts = 20_000;
//! config.strategy = Strategy::Fdrt { pinning: true };
//! let report = Simulation::new(&program, config).run();
//! assert!(report.ipc > 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod config;
pub mod json;
mod processor;
mod report;
mod stream;

pub use config::{SimConfig, Strategy};
pub use processor::{run_with_strategy, Simulation};
pub use report::{harmonic_mean, SimReport};
