//! # The whole-processor CTCP simulator
//!
//! Wires the front-end (branch predictor, BTB, RAS, instruction cache),
//! the trace cache and fill unit, the clustered out-of-order engine, and
//! the data memory system into a cycle-level model of the paper's
//! baseline architecture (Table 7), then exposes an experiment API used
//! by every table and figure reproduction.
//!
//! Simulations are constructed through the validating
//! [`SimBuilder`] (see [`Simulation::builder`]); attach a
//! [`ctcp_telemetry::Recorder`] via [`SimBuilder::probe`] to capture
//! pipeline events and metrics without perturbing the simulation.
//!
//! ## Example
//!
//! ```
//! use ctcp_sim::{Simulation, Strategy};
//! use ctcp_workload::Benchmark;
//!
//! let program = Benchmark::by_name("gzip").unwrap().program();
//! let report = Simulation::builder(&program)
//!     .strategy(Strategy::Fdrt { pinning: true })
//!     .max_insts(20_000)
//!     .build()
//!     .unwrap()
//!     .run();
//! assert!(report.ipc > 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod builder;
mod checkpoint;
mod codec;
mod config;
mod error;
mod processor;
mod report;
mod stream;

pub use batch::{BatchError, BatchRunner};
pub use builder::{ConfigError, SimBuilder, MAX_CLUSTERS};
pub use checkpoint::Checkpoint;
pub use config::{SimConfig, Strategy};
/// Recyclable engine storage, re-exported so resident workers (e.g. the
/// harness's shared cell scheduler) can thread one arena through
/// consecutive [`BatchRunner`]s without a `ctcp-core` dependency.
pub use ctcp_core::EngineArena;
/// Interconnect topology, re-exported so sweep descriptions (e.g. the
/// harness's `SweepSpec`) can name it without a `ctcp-core` dependency.
pub use ctcp_core::Topology;
/// Pipeline snapshot carried by watchdog errors, re-exported so callers
/// matching on [`SimError`] need not depend on `ctcp-core` directly.
pub use ctcp_core::{ClusterOccupancy, PipelineDiagnostic};
/// JSON support re-exported from the telemetry crate (it moved there so
/// exporters and the result store share one implementation).
pub use ctcp_telemetry::json;
pub use error::SimError;
pub use processor::{Simulation, DEFAULT_WATCHDOG_STALL_LIMIT};
pub use report::{harmonic_mean, MetricsSnapshot, SimReport};
