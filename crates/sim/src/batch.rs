//! Batched execution of many simulation cells on one thread.
//!
//! A sweep runs hundreds of short, independent cells. Run naively, each
//! cell pays two avoidable costs: constructing the engine's hot state
//! on a cold heap, and — when a warmup budget is set — re-executing the
//! same functional fast-forward for every strategy/geometry sharing the
//! workload. [`BatchRunner`] eliminates both. It round-trips one
//! [`EngineArena`] through consecutive cells (struct-of-arrays slabs
//! and queue storage stay allocated and cache-warm), and it memoizes
//! the most recent warmup [`Checkpoint`], reusing it whenever the next
//! cell targets the same program with the same warmup budget.
//!
//! Both optimisations are behaviourally inert: arena storage is cleared
//! (capacity kept) before each cell, and checkpoint resume is
//! bit-identical to fast-forwarding fresh. The batch-equivalence test
//! proves byte-identical reports against one-at-a-time execution across
//! every strategy.

use crate::builder::SimBuilder;
use crate::checkpoint::Checkpoint;
use crate::report::SimReport;
use crate::{ConfigError, SimError};
use ctcp_core::EngineArena;
use ctcp_isa::Program;

/// Why a batched cell failed: either its configuration never validated
/// or the simulation itself aborted.
#[derive(Debug)]
pub enum BatchError {
    /// The cell's configuration failed [`SimBuilder::build`] validation.
    Config(ConfigError),
    /// The simulation ran but aborted (watchdog or cycle budget).
    Sim(SimError),
}

impl std::fmt::Display for BatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchError::Config(e) => write!(f, "invalid configuration: {e}"),
            BatchError::Sim(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BatchError {}

/// Runs a sequence of independent simulation cells with recycled engine
/// storage and memoized warmup checkpoints. One runner belongs to one
/// worker thread; results are byte-identical to building and running
/// each cell individually.
#[derive(Default)]
pub struct BatchRunner<'p> {
    arena: Option<EngineArena>,
    checkpoint: Option<(&'p Program, Checkpoint<'p>)>,
}

impl<'p> BatchRunner<'p> {
    /// An empty runner: the first cell allocates fresh, later cells
    /// recycle.
    pub fn new() -> Self {
        BatchRunner::default()
    }

    /// A runner seeded with a previously reclaimed arena, so storage
    /// recycling survives across runner instances. A resident worker
    /// whose cells reference short-lived programs cannot keep one
    /// `BatchRunner<'p>` alive across them (the memoized checkpoint
    /// borrows the program), but it can keep the owned [`EngineArena`]
    /// and thread it through a fresh runner per cell.
    pub fn with_arena(arena: EngineArena) -> Self {
        BatchRunner {
            arena: Some(arena),
            checkpoint: None,
        }
    }

    /// Takes the recycled arena back out of the runner (if any run
    /// completed), for donation to the next runner instance.
    pub fn take_arena(&mut self) -> Option<EngineArena> {
        self.arena.take()
    }

    /// Builds and runs one cell, reusing the previous cell's arena and
    /// (when program and warmup budget match) warmup checkpoint.
    ///
    /// # Errors
    ///
    /// [`BatchError::Config`] if the builder rejects the configuration,
    /// [`BatchError::Sim`] if the run aborts. Either way the runner
    /// stays usable for the next cell.
    pub fn try_run(&mut self, mut builder: SimBuilder<'p>) -> Result<SimReport, BatchError> {
        let warmup = builder.cfg.warmup_insts;
        if warmup > 0 && builder.resume.is_none() {
            let program = builder.program;
            let cached = self
                .checkpoint
                .as_ref()
                .is_some_and(|(p, ck)| std::ptr::eq(*p, program) && ck.requested == warmup);
            if !cached {
                self.checkpoint = Some((program, Checkpoint::capture(program, warmup)));
            }
            let (_, ck) = self.checkpoint.as_ref().expect("just ensured");
            builder = builder.resume_from(ck);
        }
        if let Some(arena) = self.arena.take() {
            builder = builder.arena(arena);
        }
        let sim = builder.build().map_err(BatchError::Config)?;
        let (result, arena) = sim.try_run_reclaiming();
        self.arena = Some(arena);
        result.map_err(BatchError::Sim)
    }
}
