//! Structured simulation failures.
//!
//! A healthy simulation ends one of two ways: the instruction budget is
//! reached, or the program drains. Everything else used to be an
//! un-diagnosable hang — a steering or scheduling bug that stops
//! retirement would spin the cycle loop until the generic cycle cap
//! truncated the run into a silently-wrong report. [`SimError`] makes
//! those endings loud and typed: the retire-progress watchdog aborts a
//! wedged pipeline with [`SimError::Livelock`], and exhausting the
//! cycle budget aborts with [`SimError::CycleBudget`]; both carry a
//! [`PipelineDiagnostic`] naming the instruction the machine is stuck
//! behind. [`Simulation::try_run`](crate::Simulation::try_run) returns
//! these; the infallible [`run`](crate::Simulation::run) wrapper turns
//! them into panics for callers that treat any abort as a bug.

use ctcp_core::PipelineDiagnostic;
use std::fmt;

/// Why a simulation aborted instead of finishing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The retire-progress watchdog tripped: no instruction retired for
    /// the configured number of consecutive cycles while work was still
    /// pending — the pipeline is wedged and would never finish.
    Livelock {
        /// Cycles since the last retirement when the watchdog tripped.
        stalled_for: u64,
        /// Pipeline state at trip time.
        diagnostic: PipelineDiagnostic,
    },
    /// The run exceeded its total cycle budget with work still pending.
    /// Unlike [`SimError::Livelock`] the pipeline may be making (slow)
    /// progress; the budget bounds pathological-but-moving runs.
    CycleBudget {
        /// The exhausted cycle budget.
        budget: u64,
        /// The instruction budget the run was aiming for.
        max_insts: u64,
        /// Pipeline state when the budget ran out.
        diagnostic: PipelineDiagnostic,
    },
}

impl SimError {
    /// The pipeline snapshot taken when the run aborted.
    pub fn diagnostic(&self) -> &PipelineDiagnostic {
        match self {
            SimError::Livelock { diagnostic, .. } | SimError::CycleBudget { diagnostic, .. } => {
                diagnostic
            }
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Livelock {
                stalled_for,
                diagnostic,
            } => write!(
                f,
                "livelock: no retirement for {stalled_for} cycles ({diagnostic})"
            ),
            SimError::CycleBudget {
                budget,
                max_insts,
                diagnostic,
            } => write!(
                f,
                "cycle budget exceeded: {budget} cycles without retiring \
                 {max_insts} instructions ({diagnostic})"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ctcp_core::PipelineDiagnostic;

    fn diag() -> PipelineDiagnostic {
        PipelineDiagnostic {
            cycle: 1_000,
            retired: 3,
            in_flight: 12,
            head_seq: Some(3),
            head_stage: Some("InRs".into()),
            head_cluster: Some(0),
            clusters: vec![],
        }
    }

    #[test]
    fn livelock_names_the_stall_and_the_head() {
        let e = SimError::Livelock {
            stalled_for: 500,
            diagnostic: diag(),
        };
        let s = e.to_string();
        assert!(s.contains("no retirement for 500 cycles"), "{s}");
        assert!(s.contains("rob head seq 3"), "{s}");
        assert_eq!(e.diagnostic().cycle, 1_000);
    }

    #[test]
    fn cycle_budget_names_the_budget() {
        let e = SimError::CycleBudget {
            budget: 9_999,
            max_insts: 100,
            diagnostic: diag(),
        };
        let s = e.to_string();
        assert!(s.contains("9999 cycles"), "{s}");
        assert!(s.contains("100 instructions"), "{s}");
    }
}
