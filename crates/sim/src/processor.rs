//! The cycle loop: fetch → deliver → execute → retire → fill.

use crate::builder::SimBuilder;
use crate::report::{MetricsSnapshot, SimReport};
use crate::stream::InstStream;
use crate::{SimConfig, SimError};
use ctcp_core::assign::RetireTimeStrategy;
use ctcp_core::{Engine, EngineArena, FetchedInst, TickResult};
use ctcp_frontend::{BranchPredictor, Btb, HybridPredictor, ICache, ReturnAddressStack};
use ctcp_isa::{DynInst, Executor, Opcode, Program};
use ctcp_telemetry::{Counter, Hist, Probe, RetireSlotKind};
use ctcp_tracecache::{
    FillUnit, PendingInst, TcLocation, TraceCache, TraceHead, TraceLine, TraceSlot,
};
use std::collections::VecDeque;
use std::rc::Rc;

/// Maximum fetch groups buffered between fetch and rename.
const DELIVERY_DEPTH: usize = 8;

/// Default retire-progress watchdog threshold: a simulation that goes
/// this many consecutive cycles without retiring a single instruction
/// (while work is still pending) is declared livelocked. Even the
/// deepest legitimate stall in this model — a chain of memory misses
/// behind a mispredicted branch — resolves within a few hundred cycles,
/// so five orders of magnitude of headroom keeps false trips impossible
/// while still aborting a wedged pipeline in well under a second.
pub const DEFAULT_WATCHDOG_STALL_LIMIT: u64 = 100_000;

/// A configured simulation of one program. Create with
/// [`Simulation::builder`], run to completion with [`Simulation::run`].
pub struct Simulation<'p> {
    cfg: SimConfig,
    stream: InstStream<'p>,
    /// Instructions consumed by the warmup fast-forward. The engine
    /// requires sequence numbers dense from 0, so fetch renumbers the
    /// stream's absolute `seq` by this base for the timed phase.
    seq_base: u64,
    predictor: HybridPredictor,
    btb: Btb,
    ras: ReturnAddressStack,
    icache: ICache,
    tc: TraceCache,
    fill: FillUnit,
    engine: Engine,
    retire_strategy: RetireTimeStrategy,
    /// Reused across cycles so `Engine::tick_into` never allocates.
    tick_buf: TickResult,
    delivery: VecDeque<(u64, Vec<FetchedInst>)>,
    installs: VecDeque<(u64, TraceLine)>,
    now: u64,
    fetch_resume: u64,
    waiting_redirect: Option<u64>,
    group_ctr: u64,
    // telemetry
    probe: Rc<dyn Probe>,
    probe_on: bool,
    // robustness
    watchdog_stall: u64,
    cycle_budget: Option<u64>,
    /// Cached at construction: the `stall-retire` fail point was armed.
    stall_retire_fp: bool,
    // statistics
    insts_from_tc: u64,
    insts_from_icache: u64,
    cond_branches: u64,
    cond_mispredicts: u64,
    indirect_mispredicts: u64,
    retired: u64,
    last_group: Option<(u64, bool)>,
}

impl<'p> Simulation<'p> {
    /// Starts a validating, fluent builder over `program` — the
    /// recommended way to construct a simulation.
    pub fn builder(program: &'p Program) -> SimBuilder<'p> {
        SimBuilder::new(program)
    }

    /// Constructs the simulation from a validated builder. Only
    /// [`SimBuilder::build`] calls this.
    ///
    /// The warmup phase runs here: either by fast-forwarding the fresh
    /// stream (pure functional execution, no timing state touched) or by
    /// adopting a pre-captured [`Checkpoint`](crate::Checkpoint) clone,
    /// which is bit-identical because fast-forward is deterministic in
    /// the program and the instruction count.
    pub(crate) fn from_builder(b: SimBuilder<'p>) -> Self {
        let cfg = b.cfg.normalized();
        let mut engine = Engine::with_arena(
            cfg.engine,
            cfg.strategy.steering_mode(),
            b.arena.unwrap_or_default(),
        );
        if let Some(legacy) = b.legacy_scheduler {
            engine.set_legacy_scheduler(legacy);
        }
        let probe = b
            .probe
            .unwrap_or_else(|| Rc::new(ctcp_telemetry::NullProbe));
        engine.set_probe(Rc::clone(&probe));
        let probe_on = probe.enabled();
        let (stream, seq_base) = match b.resume {
            Some(ck) => {
                debug_assert_eq!(
                    ck.requested, cfg.warmup_insts,
                    "resume_from keeps the config and checkpoint in lockstep"
                );
                (ck.stream, ck.skipped)
            }
            None => {
                let mut stream = InstStream::new(Executor::new(b.program));
                let skipped = stream.fast_forward(cfg.warmup_insts);
                (stream, skipped)
            }
        };
        Simulation {
            stream,
            seq_base,
            predictor: HybridPredictor::new(cfg.predictor),
            btb: Btb::new(cfg.btb),
            ras: ReturnAddressStack::new(cfg.ras_depth),
            icache: ICache::new(cfg.icache),
            tc: TraceCache::new(cfg.trace_cache),
            fill: FillUnit::new(cfg.fill),
            engine,
            retire_strategy: cfg.strategy.retire_time(),
            tick_buf: TickResult::default(),
            delivery: VecDeque::new(),
            installs: VecDeque::new(),
            now: 0,
            fetch_resume: 0,
            waiting_redirect: None,
            group_ctr: 0,
            probe,
            probe_on,
            watchdog_stall: b.watchdog_stall.unwrap_or(DEFAULT_WATCHDOG_STALL_LIMIT),
            cycle_budget: b.cycle_budget,
            stall_retire_fp: ctcp_telemetry::failpoint::is_active("stall-retire"),
            insts_from_tc: 0,
            insts_from_icache: 0,
            cond_branches: 0,
            cond_mispredicts: 0,
            indirect_mispredicts: 0,
            retired: 0,
            last_group: None,
            cfg,
        }
    }

    /// Runs to completion (instruction budget reached or program drained)
    /// and reports.
    ///
    /// # Panics
    ///
    /// Panics if the run aborts — the watchdog trips or the cycle budget
    /// is exhausted. Callers that want to handle aborts as data (the
    /// sweep harness does, so one wedged cell cannot take down a batch)
    /// use [`Simulation::try_run`] instead.
    pub fn run(self) -> SimReport {
        self.try_run()
            .unwrap_or_else(|e| panic!("simulation aborted: {e}"))
    }

    /// Runs to completion and reports, or returns a typed [`SimError`]
    /// when the run cannot finish.
    ///
    /// Two guards watch the cycle loop:
    ///
    /// * a **retire-progress watchdog** — no instruction retired for
    ///   [`DEFAULT_WATCHDOG_STALL_LIMIT`] consecutive cycles (override
    ///   via [`SimBuilder::watchdog_stall_limit`]) while work is still
    ///   pending aborts with [`SimError::Livelock`];
    /// * a **total cycle budget** — by default `max_insts * 400 +
    ///   2_000_000` cycles (override via [`SimBuilder::cycle_budget`]);
    ///   exceeding it aborts with [`SimError::CycleBudget`] instead of
    ///   silently truncating the run into a misleading report.
    ///
    /// Both errors carry a [`ctcp_core::PipelineDiagnostic`] naming the
    /// instruction the machine stopped behind, and both bump the
    /// `watchdog_trips` telemetry counter when a probe is attached.
    ///
    /// # Errors
    ///
    /// [`SimError::Livelock`] or [`SimError::CycleBudget`], as above.
    pub fn try_run(mut self) -> Result<SimReport, SimError> {
        self.run_loop()?;
        Ok(self.finish())
    }

    /// Like [`try_run`](Self::try_run), but also harvests the engine's
    /// recyclable storage so a [`BatchRunner`](crate::BatchRunner) can
    /// seed the next cell with warm allocations — on the error path too.
    pub(crate) fn try_run_reclaiming(mut self) -> (Result<SimReport, SimError>, EngineArena) {
        match self.run_loop() {
            Ok(()) => {
                let (report, arena) = self.finish_reclaiming();
                (Ok(report), arena)
            }
            Err(e) => (Err(e), self.engine.into_arena()),
        }
    }

    fn run_loop(&mut self) -> Result<(), SimError> {
        // Generous safety bound: nothing sensible needs more cycles.
        let cycle_cap = self.cycle_budget.unwrap_or_else(|| {
            self.cfg
                .max_insts
                .saturating_mul(400)
                .saturating_add(2_000_000)
        });
        let stall_limit = self.watchdog_stall;
        let mut last_progress = 0u64;
        let mut last_retired = 0u64;
        while self.retired < self.cfg.max_insts && self.now < cycle_cap {
            self.step();
            if self.pipeline_empty() {
                break;
            }
            if self.retired > last_retired {
                last_retired = self.retired;
                last_progress = self.now;
            } else if stall_limit > 0 && self.now - last_progress >= stall_limit {
                if self.probe_on {
                    self.probe.counter(Counter::WatchdogTrips, 1);
                }
                return Err(SimError::Livelock {
                    stalled_for: self.now - last_progress,
                    diagnostic: self.engine.diagnostic(self.now),
                });
            }
        }
        if self.retired < self.cfg.max_insts && !self.pipeline_empty() {
            if self.probe_on {
                self.probe.counter(Counter::WatchdogTrips, 1);
            }
            return Err(SimError::CycleBudget {
                budget: cycle_cap,
                max_insts: self.cfg.max_insts,
                diagnostic: self.engine.diagnostic(self.now),
            });
        }
        Ok(())
    }

    fn pipeline_empty(&mut self) -> bool {
        self.stream.is_exhausted() && self.delivery.is_empty() && self.engine.in_flight() == 0
    }

    fn step(&mut self) {
        self.now += 1;
        let now = self.now;

        // 1. Trace installs that have cleared the fill-unit latency.
        while self.installs.front().is_some_and(|(at, _)| *at <= now) {
            let (_, line) = self.installs.pop_front().expect("checked front");
            self.tc.install(line);
        }

        // 2. Fetch one group.
        if self.waiting_redirect.is_none()
            && now >= self.fetch_resume
            && self.delivery.len() < DELIVERY_DEPTH
        {
            self.fetch(now);
        }

        // 3. Deliver the oldest group to rename if the engine has room.
        if let Some((at, group)) = self.delivery.front() {
            if *at <= now && self.engine.can_accept(group.len()) {
                let (_, group) = self.delivery.pop_front().expect("checked front");
                self.engine.accept(&group, now);
            }
        }

        // 4. Execute one cycle into the reused buffer (no per-cycle
        // allocation; taken locally to keep the borrow checker happy
        // around the fill-unit calls below).
        let awaiting_redirect = self.waiting_redirect.is_some();
        let mut result = std::mem::take(&mut self.tick_buf);
        self.engine.tick_into(now, &mut result);

        // Cycle accounting: every retire slot this cycle is either used
        // or charged to one blame bucket — the engine classifies a
        // non-empty ROB by what its head waits on; an empty ROB is the
        // front end's fault (squash refetch vs fetch starvation).
        if self.probe_on {
            let width = self.cfg.engine.retire_width as u64;
            let used = result.retired.len() as u64;
            let stalled = width.saturating_sub(used);
            let stall = if stalled == 0 {
                RetireSlotKind::Base
            } else {
                self.engine.head_blame(now).unwrap_or(if awaiting_redirect {
                    RetireSlotKind::BranchMispredict
                } else {
                    RetireSlotKind::FetchMiss
                })
            };
            self.probe.retire_slots(now, used, stalled, stall);
        }

        // 5. Resume fetch once the awaited mispredicted branch resolves.
        if let Some(seq) = self.waiting_redirect {
            if result.redirects.contains(&seq) {
                self.waiting_redirect = None;
                self.fetch_resume = now + 1;
            }
        }

        // Fault injection: the `stall-retire` fail point swallows this
        // cycle's retirements, freezing retire progress so the watchdog
        // path can be exercised end-to-end.
        if self.stall_retire_fp {
            result.retired.clear();
        }

        // 6. Retire: feed the fill unit. (The predictor is trained at
        // fetch, where the correct-path model already knows the outcome
        // and the gshare history register still matches the prediction's
        // index — equivalent to retire-time training with a checkpointed
        // history.)
        for r in result.retired.drain(..) {
            let pending = PendingInst {
                seq: r.seq,
                index: r.index,
                pc: r.pc,
                inst: r.inst,
                profile: r.profile,
                tc_loc: r.tc_loc,
                feedback: r.feedback,
                taken: r.taken,
            };
            // Trace selection: traces begin at fetch-group heads — a
            // trace-cache line being rebuilt, or a fetch address that
            // missed the trace cache — so constructed traces start at
            // PCs fetch will request again.
            let head = if self.last_group.map(|(g, _)| g) != Some(r.group) {
                if r.from_tc {
                    TraceHead::TraceCacheLine
                } else {
                    TraceHead::TraceCacheMiss
                }
            } else {
                TraceHead::None
            };
            self.last_group = Some((r.group, r.from_tc));
            for raw in self.fill.push(pending, head) {
                self.build_and_install(raw, now);
            }
            self.retired += 1;
            if self.retired >= self.cfg.max_insts {
                break;
            }
        }
        // The drain clears the buffer (even on a budget-truncated break)
        // while its capacity survives for the next cycle.
        self.tick_buf = result;
    }

    /// Runs retire-time assignment on a finalised trace and schedules its
    /// installation.
    fn build_and_install(&mut self, mut raw: ctcp_tracecache::RawTrace, now: u64) {
        let placement =
            self.retire_strategy
                .assign(&mut raw, &self.cfg.engine.geometry, &mut self.tc);
        let line = TraceLine::from_raw(&raw, &placement, self.cfg.trace_cache.line_capacity);
        if self.probe_on {
            self.probe.observe(Hist::TraceSize, raw.len() as u64);
            for d in line.reorder_distances() {
                self.probe.observe(Hist::ReorderDistance, d);
            }
        }
        self.installs.push_back((now + self.fill.latency(), line));
    }

    /// Predicts one fetched control transfer. Returns `true` when the
    /// front-end mispredicts it (direction or target).
    fn predict_cti(&mut self, d: &DynInst) -> bool {
        let Some(br) = d.branch else { return false };
        match d.op() {
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge => {
                self.cond_branches += 1;
                let p = self.predictor.predict(d.pc);
                self.predictor.update(d.pc, br.taken);
                self.predictor.update_history(br.taken);
                let mis = p != br.taken;
                if mis {
                    self.cond_mispredicts += 1;
                }
                if self.probe_on {
                    self.probe.counter(Counter::CondBranches, 1);
                    if mis {
                        self.probe.counter(Counter::CondMispredicts, 1);
                    }
                }
                mis
            }
            Opcode::Jmp => false,
            Opcode::Call => {
                self.ras.push(d.pc + 4);
                false
            }
            Opcode::Ret => {
                let predicted = self.ras.pop();
                if predicted != Some(br.target) {
                    self.indirect_mispredicts += 1;
                    true
                } else {
                    false
                }
            }
            Opcode::Jr => {
                let predicted = self.btb.lookup(d.pc);
                self.btb.update(d.pc, br.target);
                if predicted != Some(br.target) {
                    self.indirect_mispredicts += 1;
                    true
                } else {
                    false
                }
            }
            _ => false,
        }
    }

    fn fetch(&mut self, now: u64) {
        let Some(d0) = self.stream.peek(0) else {
            return;
        };
        let pc = d0.pc;

        // Trace cache lookup with multiple-branch prediction.
        let predictor = &self.predictor;
        let line_info: Option<(u64, Vec<(u8, TraceSlot)>)> = self
            .tc
            .lookup(pc, |bpc| predictor.predict(bpc))
            .map(|line| (line.id, line.logical_iter().map(|(p, s)| (p, *s)).collect()));

        let fetch_width = self.cfg.engine.geometry.total_slots();
        let group_id = self.group_ctr;
        self.group_ctr += 1;
        let mut group: Vec<FetchedInst> = Vec::new();
        let mut mispredicted_seq: Option<u64> = None;

        let (latency, from_tc) = match line_info {
            Some((line_id, slots)) => {
                for (phys, slot) in slots {
                    let matches = self.stream.peek(0).is_some_and(|d| d.pc == slot.pc);
                    if !matches {
                        break;
                    }
                    let d = self.stream.pop().expect("peeked");
                    let seq = d.seq - self.seq_base;
                    let mis = self.predict_cti(&d);
                    group.push(FetchedInst {
                        seq,
                        pc: d.pc,
                        index: d.index,
                        inst: d.inst,
                        mem_addr: d.mem_addr,
                        taken: d.branch.map(|b| b.taken),
                        slot: phys,
                        group: group_id,
                        from_tc: true,
                        tc_loc: Some(TcLocation {
                            line_id,
                            slot: phys,
                        }),
                        profile: slot.profile,
                        mispredicted: mis,
                    });
                    if mis {
                        mispredicted_seq = Some(seq);
                        break;
                    }
                }
                self.insts_from_tc += group.len() as u64;
                (self.cfg.trace_cache.access_latency, true)
            }
            None => {
                // Conventional fetch: sequential instructions up to the
                // first taken (or mispredicted) control transfer.
                let lat = self.icache.fetch(pc);
                while group.len() < fetch_width {
                    let Some(d) = self.stream.peek(0) else { break };
                    // Contiguity: a second cache line is allowed, but a
                    // taken transfer always ends the group below, so this
                    // simply consumes the fall-through path.
                    let d = *d;
                    self.stream.pop();
                    let seq = d.seq - self.seq_base;
                    let mis = self.predict_cti(&d);
                    let taken = d.taken();
                    group.push(FetchedInst {
                        seq,
                        pc: d.pc,
                        index: d.index,
                        inst: d.inst,
                        mem_addr: d.mem_addr,
                        taken: d.branch.map(|b| b.taken),
                        slot: group.len() as u8,
                        group: group_id,
                        from_tc: false,
                        tc_loc: None,
                        profile: Default::default(),
                        mispredicted: mis,
                    });
                    if mis {
                        mispredicted_seq = Some(seq);
                        break;
                    }
                    if taken || d.op() == Opcode::Halt {
                        break;
                    }
                }
                self.insts_from_icache += group.len() as u64;
                // An instruction-cache miss stalls fetch for its duration.
                if lat > self.cfg.icache.hit_latency {
                    self.fetch_resume = now + lat;
                }
                (lat, false)
            }
        };

        if group.is_empty() {
            return;
        }
        if self.probe_on {
            let src = if from_tc {
                Counter::InstsFromTc
            } else {
                Counter::InstsFromIcache
            };
            self.probe.counter(src, group.len() as u64);
            self.probe.fetch_group(now, pc, group.len() as u32, from_tc);
        }
        if let Some(seq) = mispredicted_seq {
            self.waiting_redirect = Some(seq);
        }
        let deliver_at = now + latency + self.cfg.decode_stages;
        self.delivery.push_back((deliver_at, group));
    }

    fn finish(self) -> SimReport {
        self.finish_reclaiming().0
    }

    fn finish_reclaiming(mut self) -> (SimReport, EngineArena) {
        // Flush the partial trace so trace-size statistics are complete.
        let _ = self.fill.flush();
        let em = self.engine.metrics();
        let fill_stats = self.fill.stats();
        if self.probe_on {
            // Whole-run reconciliation counters: emitted once so an
            // exported metrics dump can be cross-checked against the
            // report (`ctcp trace --check` does exactly that).
            self.probe
                .counter(Counter::TracesBuilt, fill_stats.traces_built);
            self.probe
                .counter(Counter::InstsInTraces, fill_stats.insts_buffered);
            self.probe
                .counter(Counter::PredictorLookups, self.predictor.lookups());
        }
        let fdrt = self.retire_strategy.fdrt_stats().copied();
        let cycles = self.now.max(1);
        let report = SimReport {
            strategy: self.cfg.strategy.name(),
            cycles,
            instructions: self.retired,
            ipc: self.retired as f64 / cycles as f64,
            metrics: MetricsSnapshot {
                insts_from_tc: self.insts_from_tc,
                insts_from_icache: self.insts_from_icache,
                traces_built: fill_stats.traces_built,
                insts_in_traces: fill_stats.insts_buffered,
                cond_branches: self.cond_branches,
                cond_mispredicts: self.cond_mispredicts,
                indirect_mispredicts: self.indirect_mispredicts,
                fwd: em.fwd,
                repeat_all: em.repeat_all,
                repeat_critical_inter: em.repeat_critical_inter,
                fdrt,
                engine: em.stats,
                trace_cache: self.tc.stats(),
                l1d: em.l1d,
                icache: self.icache.stats(),
            },
            attrib: None,
        };
        (report, self.engine.into_arena())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;
    use ctcp_isa::{ProgramBuilder, Reg};

    fn loop_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::R1, 0);
        b.movi(Reg::R2, iters);
        let top = b.here();
        b.addi(Reg::R3, Reg::R1, 5);
        b.add(Reg::R4, Reg::R3, Reg::R3);
        b.xor(Reg::R5, Reg::R4, Reg::R3);
        b.addi(Reg::R1, Reg::R1, 1);
        b.blt(Reg::R1, Reg::R2, top);
        b.halt();
        b.build()
    }

    fn run(p: &Program, strategy: Strategy, max_insts: u64) -> SimReport {
        Simulation::builder(p)
            .strategy(strategy)
            .max_insts(max_insts)
            .build()
            .unwrap()
            .run()
    }

    #[test]
    fn tiny_program_completes() {
        let p = loop_program(100);
        let r = run(&p, Strategy::Baseline, 10_000);
        // 2 setup + 100 * 5 + 1 halt = 503 instructions.
        assert_eq!(r.instructions, 503);
        assert!(r.cycles > 0);
        assert!(r.ipc > 0.2, "ipc={}", r.ipc);
    }

    #[test]
    fn instruction_budget_truncates() {
        let p = loop_program(1_000_000);
        let r = run(&p, Strategy::Baseline, 5_000);
        assert_eq!(r.instructions, 5_000);
    }

    #[test]
    fn cycle_budget_exhaustion_is_a_typed_error() {
        // 200 cycles is nowhere near enough to retire a million
        // instructions, so the budget guard must fire — with the budget
        // and target in the error, not a silently truncated report.
        let p = loop_program(1_000_000);
        let err = Simulation::builder(&p)
            .max_insts(1_000_000)
            .cycle_budget(200)
            .build()
            .unwrap()
            .try_run()
            .expect_err("budget must be exhausted");
        match err {
            crate::SimError::CycleBudget {
                budget,
                max_insts,
                ref diagnostic,
            } => {
                assert_eq!(budget, 200);
                assert_eq!(max_insts, 1_000_000);
                assert_eq!(diagnostic.cycle, 200);
                assert!(diagnostic.in_flight > 0);
            }
            other => panic!("expected CycleBudget, got {other:?}"),
        }
    }

    #[test]
    fn trace_cache_warms_up_on_a_loop() {
        let p = loop_program(5_000);
        let r = run(&p, Strategy::Baseline, 20_000);
        assert!(
            r.tc_inst_fraction() > 0.5,
            "tc fraction {}",
            r.tc_inst_fraction()
        );
        assert!(r.metrics.trace_cache.hits > 100);
        assert!(r.avg_trace_size() > 4.0);
    }

    #[test]
    fn predictable_loop_has_low_mispredict_rate() {
        let p = loop_program(5_000);
        let r = run(&p, Strategy::Baseline, 20_000);
        assert!(
            r.mispredict_rate() < 0.05,
            "mispredict rate {}",
            r.mispredict_rate()
        );
    }

    #[test]
    fn all_strategies_run_the_same_instructions() {
        let p = loop_program(2_000);
        let n = ctcp_isa::Executor::new(&p).count() as u64;
        for strategy in [
            Strategy::Baseline,
            Strategy::IssueTime { latency: 0 },
            Strategy::IssueTime { latency: 4 },
            Strategy::Friendly { middle_bias: false },
            Strategy::Fdrt { pinning: true },
            Strategy::Fdrt { pinning: false },
        ] {
            let r = run(&p, strategy, 1_000_000);
            assert_eq!(r.instructions, n, "{}", strategy.name());
        }
    }

    #[test]
    fn fdrt_reports_stats() {
        let p = loop_program(3_000);
        let r = run(&p, Strategy::Fdrt { pinning: true }, 15_000);
        let stats = r.metrics.fdrt.expect("fdrt stats present");
        let total: u64 = stats.options.iter().sum::<u64>() + stats.skipped;
        assert!(total > 1_000);
        let base = run(&p, Strategy::Baseline, 15_000);
        assert!(base.metrics.fdrt.is_none());
    }
}
