//! Warmup checkpoints: reusable functional fast-forward snapshots.
//!
//! Fast-forwarding a long workload to its region of interest is pure
//! functional execution — no timing state is touched — so the result
//! depends only on the program and the instruction count. A
//! [`Checkpoint`] captures that state once; every simulation resumed
//! from it (via [`SimBuilder::resume_from`](crate::SimBuilder)) starts
//! bit-identically to a simulation that fast-forwarded on its own,
//! without re-executing the warmup phase.

use crate::stream::InstStream;
use ctcp_isa::{Executor, Program};

/// The functional (architectural) state of `program` after executing
/// its first `warmup_instructions` instructions: registers, data memory
/// image, and the position in the dynamic instruction stream. Cloning
/// is cheap relative to re-execution, and resuming never mutates the
/// checkpoint, so one capture serves any number of timed runs.
#[derive(Clone)]
pub struct Checkpoint<'p> {
    pub(crate) stream: InstStream<'p>,
    pub(crate) requested: u64,
    pub(crate) skipped: u64,
}

impl<'p> Checkpoint<'p> {
    /// Functionally executes the first `warmup_insts` instructions of
    /// `program` (fewer if the program ends first) and snapshots the
    /// resulting state.
    pub fn capture(program: &'p Program, warmup_insts: u64) -> Self {
        let mut stream = InstStream::new(Executor::new(program));
        let skipped = stream.fast_forward(warmup_insts);
        Checkpoint {
            stream,
            requested: warmup_insts,
            skipped,
        }
    }

    /// The warmup budget this checkpoint was captured with.
    pub fn warmup_instructions(&self) -> u64 {
        self.requested
    }

    /// How many instructions were actually skipped — less than the
    /// budget only when the program ended inside the warmup phase.
    pub fn instructions_skipped(&self) -> u64 {
        self.skipped
    }
}
