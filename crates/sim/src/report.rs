//! Simulation results.
//!
//! A finished run produces a [`SimReport`]: the headline numbers
//! (strategy, cycles, instructions, IPC) plus one [`MetricsSnapshot`]
//! holding every counter the simulator accumulated. The snapshot is the
//! single source of truth — the engine, trace cache, fill unit, memory
//! system, and front end each contribute their own stats block, and all
//! derived figures (trace-cache fraction, trace size, mispredict rate)
//! are computed from it rather than carried as separate fields.

use ctcp_core::assign::FdrtStats;
use ctcp_core::{EngineStats, ForwardingStats};
use ctcp_memory::CacheStats;
use ctcp_telemetry::AttribReport;
use ctcp_tracecache::TraceCacheStats;

/// Every counter a finished simulation accumulated — the superset of
/// what any table or figure of the paper needs, in one place.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Instructions fetched from the trace cache.
    pub insts_from_tc: u64,
    /// Instructions fetched from the instruction cache.
    pub insts_from_icache: u64,
    /// Traces built by the fill unit.
    pub traces_built: u64,
    /// Instructions collected into traces (the fill unit idles between
    /// trace heads, so this can be less than the retired count).
    pub insts_in_traces: u64,
    /// Conditional branches fetched.
    pub cond_branches: u64,
    /// Conditional-branch mispredictions observed at fetch.
    pub cond_mispredicts: u64,
    /// Indirect-target mispredictions observed at fetch.
    pub indirect_mispredicts: u64,
    /// Forwarding statistics (Tables 2/8, Figure 4).
    pub fwd: ForwardingStats,
    /// Producer repeat rates per source, all inputs (Table 3).
    pub repeat_all: [f64; 2],
    /// Producer repeat rates per source, critical inter-trace inputs.
    pub repeat_critical_inter: [f64; 2],
    /// FDRT statistics (Figure 7, Tables 9/10), when the strategy is FDRT.
    pub fdrt: Option<FdrtStats>,
    /// Engine counters.
    pub engine: EngineStats,
    /// Trace cache statistics.
    pub trace_cache: TraceCacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Instruction cache statistics.
    pub icache: CacheStats,
}

impl MetricsSnapshot {
    /// Fraction of fetched instructions supplied by the trace cache
    /// (Table 1 "% TC Instr").
    pub fn tc_inst_fraction(&self) -> f64 {
        let total = self.insts_from_tc + self.insts_from_icache;
        if total == 0 {
            0.0
        } else {
            self.insts_from_tc as f64 / total as f64
        }
    }

    /// Average instructions per fill-unit trace (Table 1 "Trace Size").
    pub fn avg_trace_size(&self) -> f64 {
        if self.traces_built == 0 {
            0.0
        } else {
            self.insts_in_traces as f64 / self.traces_built as f64
        }
    }

    /// Conditional-branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 / self.cond_branches as f64
        }
    }
}

/// Everything a finished simulation reports: headline numbers plus the
/// full [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Strategy name.
    pub strategy: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Every accumulated counter, in one snapshot.
    pub metrics: MetricsSnapshot,
    /// Cycle attribution (CPI stack + critical-path summary), attached
    /// by attribution-enabled runs (`ctcp analyze`, `ctcp sweep
    /// --attrib`); `None` for plain runs.
    pub attrib: Option<AttribReport>,
}

impl SimReport {
    /// Fraction of fetched instructions supplied by the trace cache
    /// (Table 1 "% TC Instr").
    pub fn tc_inst_fraction(&self) -> f64 {
        self.metrics.tc_inst_fraction()
    }

    /// Average instructions per fill-unit trace (Table 1 "Trace Size").
    pub fn avg_trace_size(&self) -> f64 {
        self.metrics.avg_trace_size()
    }

    /// Conditional-branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        self.metrics.mispredict_rate()
    }

    /// Speedup of `self` relative to `base` (execution-time ratio at
    /// equal instruction counts). Returns `0.0` when either run recorded
    /// no cycles — a degenerate report should read as "no speedup
    /// information", not crash a sweep.
    pub fn speedup_over(&self, base: &SimReport) -> f64 {
        if self.cycles == 0 || base.cycles == 0 {
            return 0.0;
        }
        base.cycles as f64 / self.cycles as f64
    }
}

/// Harmonic mean of a slice of speedups (the paper's average).
///
/// Returns `0.0` for an empty slice and for any slice containing a
/// non-positive or non-finite entry: the harmonic mean is only defined
/// over positive reals, and a zero entry (the [`SimReport::speedup_over`]
/// degenerate value) would otherwise poison the sum with an infinity
/// that silently renders as `0` — better to make the sentinel explicit.
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|x| !(x.is_finite() && *x > 0.0)) {
        return 0.0;
    }
    let denom: f64 = xs.iter().map(|x| 1.0 / x).sum();
    xs.len() as f64 / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        let hm = harmonic_mean(&[1.0, 2.0]);
        assert!((hm - 4.0 / 3.0).abs() < 1e-12);
        // Harmonic mean is dominated by the slowest member.
        assert!(harmonic_mean(&[1.0, 10.0]) < 5.5);
    }

    #[test]
    fn harmonic_mean_rejects_degenerate_inputs() {
        assert_eq!(harmonic_mean(&[1.0, 0.0]), 0.0);
        assert_eq!(harmonic_mean(&[1.0, -2.0]), 0.0);
        assert_eq!(harmonic_mean(&[1.0, f64::NAN]), 0.0);
        assert_eq!(harmonic_mean(&[1.0, f64::INFINITY]), 0.0);
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;

    fn blank() -> SimReport {
        SimReport {
            strategy: "base".into(),
            cycles: 100,
            instructions: 200,
            ipc: 2.0,
            metrics: MetricsSnapshot {
                insts_from_tc: 150,
                insts_from_icache: 50,
                traces_built: 20,
                insts_in_traces: 180,
                cond_branches: 40,
                cond_mispredicts: 4,
                ..MetricsSnapshot::default()
            },
            attrib: None,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = blank();
        assert_eq!(r.tc_inst_fraction(), 0.75);
        assert_eq!(r.avg_trace_size(), 9.0);
        assert_eq!(r.mispredict_rate(), 0.1);
    }

    #[test]
    fn speedup_is_a_cycle_ratio() {
        let base = blank();
        let mut fast = blank();
        fast.cycles = 80;
        assert!((fast.speedup_over(&base) - 1.25).abs() < 1e-12);
        assert!((base.speedup_over(&fast) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn speedup_with_zero_cycles_is_zero_not_a_panic() {
        let base = blank();
        let mut broken = blank();
        broken.cycles = 0;
        assert_eq!(broken.speedup_over(&base), 0.0);
        assert_eq!(base.speedup_over(&broken), 0.0);
    }

    #[test]
    fn zero_denominators_do_not_panic() {
        let mut r = blank();
        r.metrics.insts_from_tc = 0;
        r.metrics.insts_from_icache = 0;
        r.metrics.traces_built = 0;
        r.metrics.cond_branches = 0;
        assert_eq!(r.tc_inst_fraction(), 0.0);
        assert_eq!(r.avg_trace_size(), 0.0);
        assert_eq!(r.mispredict_rate(), 0.0);
    }
}
