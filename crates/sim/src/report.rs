//! Simulation results.

use ctcp_core::assign::FdrtStats;
use ctcp_core::{EngineStats, ForwardingStats};
use ctcp_memory::CacheStats;
use ctcp_tracecache::TraceCacheStats;

/// Everything a finished simulation reports — the superset of what any
/// table or figure of the paper needs.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Strategy name.
    pub strategy: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Instructions fetched from the trace cache.
    pub insts_from_tc: u64,
    /// Instructions fetched from the instruction cache.
    pub insts_from_icache: u64,
    /// Traces built by the fill unit.
    pub traces_built: u64,
    /// Instructions collected into traces (the fill unit idles between
    /// trace heads, so this can be less than `instructions`).
    pub insts_in_traces: u64,
    /// Conditional-branch mispredictions observed at fetch.
    pub cond_mispredicts: u64,
    /// Conditional branches fetched.
    pub cond_branches: u64,
    /// Indirect-target mispredictions observed at fetch.
    pub indirect_mispredicts: u64,
    /// Forwarding statistics (Tables 2/8, Figure 4).
    pub fwd: ForwardingStats,
    /// Producer repeat rates per source, all inputs (Table 3).
    pub repeat_all: [f64; 2],
    /// Producer repeat rates per source, critical inter-trace inputs.
    pub repeat_critical_inter: [f64; 2],
    /// FDRT statistics (Figure 7, Tables 9/10), when the strategy is FDRT.
    pub fdrt: Option<FdrtStats>,
    /// Engine counters.
    pub engine: EngineStats,
    /// Trace cache statistics.
    pub trace_cache: TraceCacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Instruction cache statistics.
    pub icache: CacheStats,
    /// Instructions per cycle.
    pub ipc: f64,
}

impl SimReport {
    /// Fraction of retired instructions fetched from the trace cache
    /// (Table 1 "% TC Instr").
    pub fn tc_inst_fraction(&self) -> f64 {
        let total = self.insts_from_tc + self.insts_from_icache;
        if total == 0 {
            0.0
        } else {
            self.insts_from_tc as f64 / total as f64
        }
    }

    /// Average instructions per fill-unit trace (Table 1 "Trace Size").
    pub fn avg_trace_size(&self) -> f64 {
        if self.traces_built == 0 {
            0.0
        } else {
            self.insts_in_traces as f64 / self.traces_built as f64
        }
    }

    /// Conditional-branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// Speedup of `self` relative to `base` (execution-time ratio at
    /// equal instruction counts).
    pub fn speedup_over(&self, base: &SimReport) -> f64 {
        assert!(self.cycles > 0 && base.cycles > 0);
        base.cycles as f64 / self.cycles as f64
    }
}

/// Harmonic mean of a slice of speedups (the paper's average).
pub fn harmonic_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let denom: f64 = xs.iter().map(|x| 1.0 / x).sum();
    xs.len() as f64 / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        let hm = harmonic_mean(&[1.0, 2.0]);
        assert!((hm - 4.0 / 3.0).abs() < 1e-12);
        // Harmonic mean is dominated by the slowest member.
        assert!(harmonic_mean(&[1.0, 10.0]) < 5.5);
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;

    fn blank() -> SimReport {
        SimReport {
            strategy: "base".into(),
            cycles: 100,
            instructions: 200,
            insts_from_tc: 150,
            insts_from_icache: 50,
            traces_built: 20,
            insts_in_traces: 180,
            cond_branches: 40,
            cond_mispredicts: 4,
            indirect_mispredicts: 0,
            fwd: ForwardingStats::default(),
            repeat_all: [0.0; 2],
            repeat_critical_inter: [0.0; 2],
            fdrt: None,
            engine: EngineStats::default(),
            trace_cache: TraceCacheStats::default(),
            l1d: CacheStats::default(),
            icache: CacheStats::default(),
            ipc: 2.0,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = blank();
        assert_eq!(r.tc_inst_fraction(), 0.75);
        assert_eq!(r.avg_trace_size(), 9.0);
        assert_eq!(r.mispredict_rate(), 0.1);
    }

    #[test]
    fn speedup_is_a_cycle_ratio() {
        let base = blank();
        let mut fast = blank();
        fast.cycles = 80;
        assert!((fast.speedup_over(&base) - 1.25).abs() < 1e-12);
        assert!((base.speedup_over(&fast) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_do_not_panic() {
        let mut r = blank();
        r.insts_from_tc = 0;
        r.insts_from_icache = 0;
        r.traces_built = 0;
        r.cond_branches = 0;
        assert_eq!(r.tc_inst_fraction(), 0.0);
        assert_eq!(r.avg_trace_size(), 0.0);
        assert_eq!(r.mispredict_rate(), 0.0);
    }
}
