//! Buffered lookahead over the functional executor's dynamic stream.

use ctcp_isa::{DynInst, Executor};
use std::collections::VecDeque;

/// A lookahead window over the correct-path dynamic instruction stream.
/// The fetch stage peeks ahead to match trace-cache lines against the
/// upcoming path, then consumes what it fetched.
///
/// `Clone` snapshots the full functional state (architectural registers,
/// data memory image, lookahead buffer), which is what makes warmup
/// checkpoints cheap: cloning a fast-forwarded stream resumes from the
/// warmup boundary without re-executing it.
#[derive(Clone)]
pub(crate) struct InstStream<'p> {
    exec: Executor<'p>,
    buf: VecDeque<DynInst>,
    exhausted: bool,
}

impl<'p> InstStream<'p> {
    pub(crate) fn new(exec: Executor<'p>) -> Self {
        InstStream {
            exec,
            buf: VecDeque::new(),
            exhausted: false,
        }
    }

    /// Peeks `k` instructions ahead (0 = next).
    pub(crate) fn peek(&mut self, k: usize) -> Option<&DynInst> {
        while self.buf.len() <= k && !self.exhausted {
            match self.exec.next() {
                Some(d) => self.buf.push_back(d),
                None => self.exhausted = true,
            }
        }
        self.buf.get(k)
    }

    /// Consumes the next instruction.
    pub(crate) fn pop(&mut self) -> Option<DynInst> {
        if self.buf.is_empty() {
            self.peek(0)?;
        }
        self.buf.pop_front()
    }

    /// True once every instruction has been consumed.
    pub(crate) fn is_exhausted(&mut self) -> bool {
        self.peek(0).is_none()
    }

    /// Functionally executes (and discards) up to `n` instructions —
    /// the warmup fast-forward. Returns how many were actually skipped,
    /// which is less than `n` only if the program ends first.
    pub(crate) fn fast_forward(&mut self, n: u64) -> u64 {
        let mut skipped = 0;
        while skipped < n && self.pop().is_some() {
            skipped += 1;
        }
        skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctcp_isa::{ProgramBuilder, Reg};

    #[test]
    fn peek_then_pop_preserves_order() {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::R1, 1);
        b.movi(Reg::R2, 2);
        b.movi(Reg::R3, 3);
        b.halt();
        let p = b.build();
        let mut s = InstStream::new(Executor::new(&p));
        assert_eq!(s.peek(2).unwrap().seq, 2);
        assert_eq!(s.peek(0).unwrap().seq, 0);
        assert_eq!(s.pop().unwrap().seq, 0);
        assert_eq!(s.peek(0).unwrap().seq, 1);
        assert_eq!(s.pop().unwrap().seq, 1);
        assert_eq!(s.pop().unwrap().seq, 2);
        assert_eq!(s.pop().unwrap().seq, 3); // halt
        assert!(s.pop().is_none());
        assert!(s.is_exhausted());
    }
}
