//! Fluent, validating construction of a [`Simulation`].
//!
//! [`SimBuilder`] is the front door of the simulator API — the *only*
//! construction path: it owns a [`SimConfig`], exposes fluent setters
//! for the commonly swept knobs, and *validates* the cluster geometry
//! before any state is allocated, returning a typed [`ConfigError`]
//! instead of letting a nonsensical configuration livelock the cycle
//! loop or index out of bounds deep in the engine.

use crate::checkpoint::Checkpoint;
use crate::processor::Simulation;
use crate::{SimConfig, Strategy};
use ctcp_core::{EngineArena, Topology};
use ctcp_isa::Program;
use ctcp_telemetry::Probe;
use std::rc::Rc;

/// The number of clusters the engine's fixed-size per-cluster counter
/// arrays support (see `EngineStats::executed_per_cluster`).
pub const MAX_CLUSTERS: u8 = 8;

/// A structurally invalid [`SimConfig`], rejected by
/// [`SimBuilder::build`] before the simulation is constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The geometry has no clusters; nothing could execute.
    ZeroClusters,
    /// More clusters than the engine's per-cluster counter arrays hold.
    TooManyClusters {
        /// The configured cluster count.
        clusters: u8,
    },
    /// A cluster with zero issue slots; fetch groups would be empty.
    ZeroSlots,
    /// The rename width is narrower than one full fetch group, so a
    /// maximal trace-cache line could never be accepted and the cycle
    /// loop would livelock waiting for window space that never appears.
    WidthMismatch {
        /// Instructions renamed per cycle.
        rename_width: usize,
        /// Issue slots (= the widest possible fetch group).
        total_slots: usize,
    },
    /// The reorder buffer cannot hold even one full fetch group.
    RobTooSmall {
        /// Configured reorder-buffer entries.
        rob_entries: usize,
        /// Issue slots (= the widest possible fetch group).
        total_slots: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroClusters => write!(f, "cluster geometry has zero clusters"),
            ConfigError::TooManyClusters { clusters } => write!(
                f,
                "{clusters} clusters exceeds the engine maximum of {MAX_CLUSTERS}"
            ),
            ConfigError::ZeroSlots => write!(f, "cluster geometry has zero slots per cluster"),
            ConfigError::WidthMismatch {
                rename_width,
                total_slots,
            } => write!(
                f,
                "rename width {rename_width} is narrower than a full fetch group \
                 ({total_slots} slots); a maximal trace line could never be accepted"
            ),
            ConfigError::RobTooSmall {
                rob_entries,
                total_slots,
            } => write!(
                f,
                "reorder buffer ({rob_entries} entries) cannot hold one full \
                 fetch group ({total_slots} slots)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fluent builder for a [`Simulation`]. Obtain one from
/// [`Simulation::builder`], chain setters, then [`build`](Self::build).
///
/// ```
/// use ctcp_sim::{Simulation, Strategy};
/// use ctcp_workload::Benchmark;
///
/// let program = Benchmark::by_name("gzip").unwrap().program();
/// let report = Simulation::builder(&program)
///     .strategy(Strategy::Fdrt { pinning: true })
///     .max_insts(10_000)
///     .build()
///     .unwrap()
///     .run();
/// assert!(report.ipc > 0.1);
/// ```
pub struct SimBuilder<'p> {
    pub(crate) program: &'p Program,
    pub(crate) cfg: SimConfig,
    pub(crate) probe: Option<Rc<dyn Probe>>,
    pub(crate) legacy_scheduler: Option<bool>,
    pub(crate) watchdog_stall: Option<u64>,
    pub(crate) cycle_budget: Option<u64>,
    pub(crate) arena: Option<EngineArena>,
    pub(crate) resume: Option<Checkpoint<'p>>,
}

impl<'p> SimBuilder<'p> {
    /// A builder over `program` starting from the Table 7 defaults.
    pub fn new(program: &'p Program) -> Self {
        SimBuilder {
            program,
            cfg: SimConfig::default(),
            probe: None,
            legacy_scheduler: None,
            watchdog_stall: None,
            cycle_budget: None,
            arena: None,
            resume: None,
        }
    }

    /// Replaces the entire configuration (setters applied earlier are
    /// discarded; setters applied later refine `config`).
    pub fn config(mut self, config: SimConfig) -> Self {
        self.cfg = config;
        self
    }

    /// Sets the cluster-assignment strategy under evaluation.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.cfg.strategy = strategy;
        self
    }

    /// Stops the simulation after `max_insts` retired instructions.
    pub fn max_insts(mut self, max_insts: u64) -> Self {
        self.cfg.max_insts = max_insts;
        self
    }

    /// Functionally executes (no timing) the first `insts` instructions
    /// before the timed phase begins — the ChampSim-style warmup /
    /// simulation split. The report covers only the timed phase;
    /// predictors and caches start cold at the warmup boundary. Part of
    /// [`SimConfig`] (unlike the result-neutral knobs below) because it
    /// changes results and so must perturb result-store cache keys.
    pub fn warmup_instructions(mut self, insts: u64) -> Self {
        self.cfg.warmup_insts = insts;
        self
    }

    /// Alias for [`max_insts`](Self::max_insts) matching the
    /// [`warmup_instructions`](Self::warmup_instructions) vocabulary:
    /// how many instructions the *timed* phase retires.
    pub fn simulation_instructions(self, insts: u64) -> Self {
        self.max_insts(insts)
    }

    /// Resumes the timed phase from a previously captured warmup
    /// [`Checkpoint`] instead of fast-forwarding again. Also adopts the
    /// checkpoint's warmup budget into the configuration, so the result
    /// (and its cache key) is identical to calling
    /// [`warmup_instructions`](Self::warmup_instructions) with the same
    /// count — the checkpoint is purely an execution shortcut.
    pub fn resume_from(mut self, checkpoint: &Checkpoint<'p>) -> Self {
        self.cfg.warmup_insts = checkpoint.requested;
        self.resume = Some(checkpoint.clone());
        self
    }

    /// Seeds the engine with recycled arena storage. Construction-only
    /// plumbing for [`BatchRunner`](crate::BatchRunner), behaviourally
    /// inert: every arena piece is cleared before use.
    pub(crate) fn arena(mut self, arena: EngineArena) -> Self {
        self.arena = Some(arena);
        self
    }

    /// Sets the number of execution clusters.
    pub fn clusters(mut self, clusters: u8) -> Self {
        self.cfg.engine.geometry.clusters = clusters;
        self
    }

    /// Sets the issue slots per cluster.
    pub fn slots_per_cluster(mut self, slots: u8) -> Self {
        self.cfg.engine.geometry.slots_per_cluster = slots;
        self
    }

    /// Sets the inter-cluster interconnect topology.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.cfg.engine.geometry.topology = topology;
        self
    }

    /// Sets the inter-cluster forwarding latency per hop.
    pub fn hop_latency(mut self, cycles: u64) -> Self {
        self.cfg.engine.hop_latency = cycles;
        self
    }

    /// Attaches a telemetry probe (e.g. a
    /// [`Recorder`](ctcp_telemetry::Recorder)). Without one the
    /// simulation runs with the no-op probe and pays a single cached
    /// branch per hook site.
    pub fn probe(mut self, probe: Rc<dyn Probe>) -> Self {
        self.probe = Some(probe);
        self
    }

    /// Selects the engine's legacy scan-per-cycle scheduler instead of
    /// the event-driven one. The scan path is kept as a determinism
    /// oracle: differential tests run both schedulers and require
    /// byte-identical reports, so this knob exists for validation and
    /// debugging, not performance. Deliberately *not* part of
    /// [`SimConfig`] — it cannot change simulation results, so it must
    /// not perturb result-store cache keys (which hash the config).
    pub fn legacy_scheduler(mut self, legacy: bool) -> Self {
        self.legacy_scheduler = Some(legacy);
        self
    }

    /// Overrides the retire-progress watchdog threshold: a run that
    /// goes `cycles` consecutive cycles without retiring anything
    /// (while work is still pending) aborts with
    /// [`SimError`](crate::SimError)`::Livelock` from
    /// [`Simulation::try_run`]. `0` disables the watchdog. Defaults to
    /// [`DEFAULT_WATCHDOG_STALL_LIMIT`](crate::DEFAULT_WATCHDOG_STALL_LIMIT).
    /// Like [`legacy_scheduler`](Self::legacy_scheduler), deliberately
    /// *not* part of [`SimConfig`]: it cannot change a healthy run's
    /// results, so it must not perturb result-store cache keys.
    pub fn watchdog_stall_limit(mut self, cycles: u64) -> Self {
        self.watchdog_stall = Some(cycles);
        self
    }

    /// Overrides the total cycle budget (default `max_insts * 400 +
    /// 2_000_000`): exceeding it aborts with
    /// [`SimError`](crate::SimError)`::CycleBudget`. Also outside
    /// [`SimConfig`], for the same cache-key reason as
    /// [`watchdog_stall_limit`](Self::watchdog_stall_limit).
    pub fn cycle_budget(mut self, cycles: u64) -> Self {
        self.cycle_budget = Some(cycles);
        self
    }

    /// Validates the configuration and constructs the simulation.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] the geometry violates.
    pub fn build(self) -> Result<Simulation<'p>, ConfigError> {
        let g = &self.cfg.engine.geometry;
        if g.clusters == 0 {
            return Err(ConfigError::ZeroClusters);
        }
        if g.clusters > MAX_CLUSTERS {
            return Err(ConfigError::TooManyClusters {
                clusters: g.clusters,
            });
        }
        if g.slots_per_cluster == 0 {
            return Err(ConfigError::ZeroSlots);
        }
        let total_slots = g.total_slots();
        if self.cfg.engine.rename_width < total_slots {
            return Err(ConfigError::WidthMismatch {
                rename_width: self.cfg.engine.rename_width,
                total_slots,
            });
        }
        if self.cfg.engine.rob_entries < total_slots {
            return Err(ConfigError::RobTooSmall {
                rob_entries: self.cfg.engine.rob_entries,
                total_slots,
            });
        }
        Ok(Simulation::from_builder(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctcp_isa::{ProgramBuilder, Reg};

    fn tiny() -> Program {
        let mut b = ProgramBuilder::new();
        b.movi(Reg::R1, 3);
        b.halt();
        b.build()
    }

    #[test]
    fn default_geometry_builds() {
        let p = tiny();
        assert!(Simulation::builder(&p).build().is_ok());
    }

    #[test]
    fn zero_clusters_rejected() {
        let p = tiny();
        let err = Simulation::builder(&p).clusters(0).build().err().unwrap();
        assert_eq!(err, ConfigError::ZeroClusters);
    }

    #[test]
    fn too_many_clusters_rejected() {
        let p = tiny();
        // 9 clusters x 1 slot stays within the rename width, isolating
        // the cluster-count check.
        let err = Simulation::builder(&p)
            .clusters(9)
            .slots_per_cluster(1)
            .build()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::TooManyClusters { clusters: 9 });
    }

    #[test]
    fn zero_slots_rejected() {
        let p = tiny();
        let err = Simulation::builder(&p)
            .slots_per_cluster(0)
            .build()
            .err()
            .unwrap();
        assert_eq!(err, ConfigError::ZeroSlots);
    }

    #[test]
    fn narrow_rename_width_rejected() {
        let p = tiny();
        let mut cfg = SimConfig::default();
        cfg.engine.rename_width = 8; // geometry default is 16 slots
        let err = Simulation::builder(&p).config(cfg).build().err().unwrap();
        assert_eq!(
            err,
            ConfigError::WidthMismatch {
                rename_width: 8,
                total_slots: 16
            }
        );
    }

    #[test]
    fn tiny_rob_rejected() {
        let p = tiny();
        let mut cfg = SimConfig::default();
        cfg.engine.rob_entries = 8;
        let err = Simulation::builder(&p).config(cfg).build().err().unwrap();
        assert_eq!(
            err,
            ConfigError::RobTooSmall {
                rob_entries: 8,
                total_slots: 16
            }
        );
    }

    #[test]
    fn errors_render_usefully() {
        let msg = ConfigError::WidthMismatch {
            rename_width: 8,
            total_slots: 16,
        }
        .to_string();
        assert!(msg.contains("rename width 8"), "{msg}");
        assert!(msg.contains("16 slots"), "{msg}");
    }

    #[test]
    fn setters_refine_a_replaced_config() {
        let p = tiny();
        let sim = Simulation::builder(&p)
            .config(SimConfig::default())
            .clusters(2)
            .slots_per_cluster(4)
            .topology(Topology::FullyConnected)
            .hop_latency(3)
            .max_insts(100)
            .build()
            .unwrap();
        let r = sim.run();
        assert_eq!(r.instructions, 2);
    }
}
