//! Minimal, offline-safe HTTP/1.1 over `std::net` — just enough wire
//! protocol for the sweep service.
//!
//! The workspace builds with no registry dependencies, so this module
//! hand-rolls the small HTTP subset `ctcp serve` and `ctcp client`
//! speak to each other, mirroring the hand-rolled JSON codec in
//! `ctcp-telemetry`:
//!
//! * request parsing (request line, headers, `Content-Length` body);
//! * fixed-length responses ([`write_response`]);
//! * `Transfer-Encoding: chunked` responses ([`ChunkedWriter`]), used
//!   to stream one NDJSON progress event per chunk while a batch runs;
//! * a blocking client ([`request`]) that decodes both response kinds
//!   and surfaces each chunk to a callback as it arrives.
//!
//! Connections are one-shot: one request, one response, close. That
//! keeps the parser honest (no keep-alive bookkeeping) and matches the
//! CLI client, which opens a fresh connection per command.

use ctcp_telemetry::failpoint;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request line or header line, and the most headers
/// one request may carry — crude bounds so a garbage peer cannot make
/// the daemon buffer unbounded input.
const MAX_LINE: usize = 16 * 1024;
const MAX_HEADERS: usize = 64;
/// Largest accepted request body (sweep descriptions are tiny).
const MAX_BODY: usize = 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// The method verb, upper-cased as received (`GET`, `POST`).
    pub method: String,
    /// The request target (`/sweep`).
    pub path: String,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes (empty without one).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or `None` if it is not valid UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Reads one CRLF- (or LF-) terminated line, without its terminator.
fn read_line(r: &mut impl BufRead) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = r.take(MAX_LINE as u64 + 1).read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if n > MAX_LINE {
        return Err(bad("http line too long"));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Parses one request from `r`. Returns `Ok(None)` on a clean EOF
/// before any bytes (the peer connected and left).
///
/// # Errors
///
/// I/O errors propagate; malformed requests and requests exceeding the
/// size bounds surface as [`io::ErrorKind::InvalidData`].
pub fn read_request(r: &mut impl BufRead) -> io::Result<Option<Request>> {
    let Some(start) = read_line(r)? else {
        return Ok(None);
    };
    let mut parts = start.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let path = parts
        .next()
        .ok_or_else(|| bad("request line has no target"))?;
    let version = parts
        .next()
        .ok_or_else(|| bad("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad("unsupported http version"));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line(r)?.ok_or_else(|| bad("eof inside headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(bad("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad("malformed header"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let len: usize = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse().map_err(|_| bad("bad content-length")))
        .transpose()?
        .unwrap_or(0);
    if len > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    }))
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete fixed-length response and flushes.
///
/// # Errors
///
/// Propagates write failures (typically: the peer hung up).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write_response_with(w, status, content_type, &[], body)
}

/// [`write_response`] with extra response headers (e.g. `Retry-After`
/// on a `503` so clients know how long to back off).
///
/// # Errors
///
/// Propagates write failures (typically: the peer hung up).
pub fn write_response_with(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    )?;
    for (name, value) in extra {
        write!(w, "{name}: {value}\r\n")?;
    }
    w.write_all(b"\r\n")?;
    w.write_all(body)?;
    w.flush()
}

/// A streaming `Transfer-Encoding: chunked` response. Each
/// [`chunk`](ChunkedWriter::chunk) is framed and flushed individually,
/// so the peer sees every progress event the moment it is produced;
/// [`finish`](ChunkedWriter::finish) writes the terminating frame.
pub struct ChunkedWriter<W: Write> {
    w: W,
    /// Chunks sent so far — the reference point for the
    /// `serve-disconnect=N` fail point, which severs the stream after
    /// this writer's `N`th chunk.
    sent: u64,
}

impl<W: Write> ChunkedWriter<W> {
    /// Writes the response head and returns the chunk writer.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn start(mut w: W, status: u16, content_type: &str) -> io::Result<ChunkedWriter<W>> {
        write!(
            w,
            "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            reason(status)
        )?;
        w.flush()?;
        Ok(ChunkedWriter { w, sent: 0 })
    }

    /// Sends `bytes` as one chunk and flushes. Empty input is skipped —
    /// a zero-length chunk would terminate the stream.
    ///
    /// Three socket-level fail points are wired here for chaos tests:
    /// `serve-partial-write` (one-shot: half the frame, then an error),
    /// `serve-disconnect=N` (one-shot: error after this writer's `N`th
    /// chunk), and `serve-slow-reader=ms` (sleeps per chunk, modelling
    /// a stalled reader draining the socket slowly).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn chunk(&mut self, bytes: &[u8]) -> io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        if let Some(ms) = failpoint::arg("serve-slow-reader") {
            let ms: u64 = ms.parse().unwrap_or(100);
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        if let Some(n) = failpoint::arg("serve-disconnect") {
            let n: u64 = n.parse().unwrap_or(1);
            if self.sent >= n && failpoint::take("serve-disconnect").is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "peer disconnected (fail point)",
                ));
            }
        }
        if failpoint::take("serve-partial-write").is_some() {
            // Model a crash mid-frame: half the payload reaches the
            // wire, then the write "fails". The peer sees a torn chunk
            // it cannot complete.
            let mut frame = format!("{:x}\r\n", bytes.len()).into_bytes();
            frame.extend_from_slice(bytes);
            self.w.write_all(&frame[..frame.len() / 2])?;
            self.w.flush()?;
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "partial write (fail point)",
            ));
        }
        write!(self.w, "{:x}\r\n", bytes.len())?;
        self.w.write_all(bytes)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()?;
        self.sent += 1;
        Ok(())
    }

    /// Terminates the stream.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn finish(mut self) -> io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

/// A decoded client-side response.
#[derive(Debug)]
pub struct Response {
    /// The status code from the status line.
    pub status: u16,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The full body — for chunked responses, all chunks concatenated.
    pub body: Vec<u8>,
}

impl Response {
    /// The value of header `name` (ASCII case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one blocking request against `addr` and decodes the
/// response. For chunked responses, `on_chunk` observes each chunk as
/// it arrives (the service sends one NDJSON event per chunk), before
/// the same bytes are appended to the returned body.
///
/// # Errors
///
/// Connection failures, I/O errors, and malformed responses (as
/// [`io::ErrorKind::InvalidData`]).
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
    on_chunk: &mut dyn FnMut(&[u8]),
) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    let mut w = stream.try_clone()?;
    write!(
        w,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    w.write_all(body)?;
    w.flush()?;

    let mut r = BufReader::new(stream);
    let status_line = read_line(&mut r)?.ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut chunked = false;
    let mut content_length: Option<usize> = None;
    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut r)?.ok_or_else(|| bad("eof inside headers"))?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("malformed header"));
        };
        let (name, value) = (name.trim().to_ascii_lowercase(), value.trim());
        if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
            chunked = true;
        }
        if name == "content-length" {
            content_length = Some(value.parse().map_err(|_| bad("bad content-length"))?);
        }
        headers.push((name, value.to_string()));
    }

    let mut full = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(&mut r)?.ok_or_else(|| bad("eof inside chunks"))?;
            let size_hex = size_line.split(';').next().unwrap_or("").trim();
            let size = usize::from_str_radix(size_hex, 16).map_err(|_| bad("bad chunk size"))?;
            if size == 0 {
                // Trailer section: skip to the blank line.
                while !read_line(&mut r)?
                    .ok_or_else(|| bad("eof in trailers"))?
                    .is_empty()
                {}
                break;
            }
            let mut chunk = vec![0u8; size];
            r.read_exact(&mut chunk)?;
            let mut crlf = [0u8; 2];
            r.read_exact(&mut crlf)?;
            on_chunk(&chunk);
            full.extend_from_slice(&chunk);
        }
    } else if let Some(len) = content_length {
        full = vec![0u8; len];
        r.read_exact(&mut full)?;
    } else {
        r.read_to_end(&mut full)?;
    }
    Ok(Response {
        status,
        headers,
        body: full,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_request_with_body() {
        let raw = b"POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/sweep");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body_str(), Some("body"));
    }

    #[test]
    fn clean_eof_is_none_and_garbage_is_invalid_data() {
        assert!(read_request(&mut Cursor::new(&b""[..])).unwrap().is_none());
        let err = read_request(&mut Cursor::new(&b"not http\r\n\r\n"[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn fixed_response_round_trips_headers_and_body() {
        let mut out = Vec::new();
        write_response(&mut out, 404, "text/plain", b"nope").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Length: 4\r\n"));
        assert!(text.ends_with("\r\n\r\nnope"));
    }

    #[test]
    fn chunked_writer_frames_and_terminates() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::start(&mut out, 200, "application/x-ndjson").unwrap();
        w.chunk(b"hello\n").unwrap();
        w.chunk(b"").unwrap(); // skipped, not a terminator
        w.chunk(b"world\n").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.ends_with("6\r\nhello\n\r\n6\r\nworld\n\r\n0\r\n\r\n"));
    }

    #[test]
    fn extra_headers_ride_the_fixed_response() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            503,
            "application/json",
            &[("Retry-After", "2")],
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn partial_write_fail_point_tears_one_chunk_then_disarms() {
        let _g = crate::testutil::FAILPOINT_LOCK.lock().unwrap();
        failpoint::set(Some("serve-partial-write"));
        let mut out = Vec::new();
        let mut w = ChunkedWriter::start(&mut out, 200, "application/x-ndjson").unwrap();
        let err = w.chunk(b"hello world\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // Half the frame reached the wire; a later chunk (e.g. after a
        // client resume on a fresh writer) goes through untorn.
        w.chunk(b"again\n").unwrap();
        failpoint::set(None);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("again\n"));
        assert!(!text.contains("hello world\n"), "first chunk was torn");
    }

    #[test]
    fn disconnect_fail_point_severs_after_n_chunks() {
        let _g = crate::testutil::FAILPOINT_LOCK.lock().unwrap();
        failpoint::set(Some("serve-disconnect=2"));
        let mut out = Vec::new();
        let mut w = ChunkedWriter::start(&mut out, 200, "application/x-ndjson").unwrap();
        w.chunk(b"one\n").unwrap();
        w.chunk(b"two\n").unwrap();
        let err = w.chunk(b"three\n").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // One-shot: the next chunk on the same writer goes through.
        w.chunk(b"three\n").unwrap();
        failpoint::set(None);
    }
}
