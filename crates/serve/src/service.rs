//! The resident sweep service: accept loop, request routing, admission
//! control, crash-safe request registry, counters, and graceful drain.
//!
//! The service itself knows nothing about simulators. It owns a
//! [`Handler`] — the CLI plugs in one wrapping the shared cell
//! scheduler and warm result store from `ctcp-harness` — and routes
//! HTTP requests at it:
//!
//! | request           | behaviour                                          |
//! |-------------------|----------------------------------------------------|
//! | `POST /sweep`     | runs a sweep, streaming NDJSON progress chunks     |
//! | `POST /analyze`   | same, for an attribution analysis                  |
//! | `POST /resume`    | re-attaches to a live or finished batch by token   |
//! | `GET /status`     | in-flight work, pool utilization, latency, counters|
//! | `POST /shutdown`  | begins a graceful drain                            |
//!
//! Batches run *concurrently*: every connection gets its own thread,
//! and the handler is shared by reference (`&self`, `Send + Sync`)
//! rather than serialised behind a mutex. Interleaving is the
//! handler's business — the CLI handler feeds all requests into one
//! fair cell scheduler — while the service handles the wire side of
//! concurrency and of *crash safety*:
//!
//! * **admission**: a handler may refuse a batch before streaming
//!   anything ([`HandlerError::Saturated`] when the queue is over its
//!   bound, [`HandlerError::Unavailable`] while the result store is
//!   degraded to read-only); the service answers with a clean `503`, a
//!   typed JSON body, and a `Retry-After` header so clients can tell
//!   "try later" from a failed run.
//! * **idempotency and resume**: every batch is keyed by a *resume
//!   token* — a hash of the raw wire body ([`resume_token`]) — and its
//!   full event stream is kept in an in-memory registry. The first
//!   chunk of every stream is an `accepted` handshake carrying the
//!   token and the daemon's run id; a client that loses its connection
//!   re-attaches with `POST /resume {"token","have","run"}` and
//!   receives only the events it has not yet seen (all of them when
//!   the run id changed — i.e. the daemon restarted). An identical
//!   `POST /sweep` while the original is still running attaches to the
//!   live batch instead of running it twice.
//! * **disconnects detach, not cancel**: a broken client stream no
//!   longer abandons the batch — it keeps running headless, every
//!   finished cell memoizes, and the registry retains the stream for
//!   the client's reconnect.
//! * **replay**: after a crash, the CLI re-submits journaled
//!   unfinished requests through [`Service::replay`], which runs them
//!   headless — by the time clients reconnect, their tokens resolve.
//! * **drain**: `/shutdown` stops the accept loop, every in-flight
//!   connection thread and replay thread is joined, and then the
//!   handler is [quiesced](Handler::quiesce) so its worker pool runs
//!   every admitted cell to completion before the daemon exits.

use crate::http;
use ctcp_telemetry::json::Value;
use ctcp_telemetry::series::{bucket_lower_ms, bucket_upper_ms, latency_bucket};
use ctcp_telemetry::{
    failpoint, log, request_trace, Counter, Histogram, Metrics, ReqSpan, SeriesRing, HIST_BUCKETS,
    SERIES_SECONDS,
};
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// What kind of batch a request asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// A strategy × benchmark sweep (`POST /sweep`).
    Sweep,
    /// A per-strategy attribution analysis (`POST /analyze`).
    Analyze,
}

impl RequestKind {
    /// The wire/journal name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Sweep => "sweep",
            RequestKind::Analyze => "analyze",
        }
    }

    /// The inverse of [`as_str`](RequestKind::as_str) — used when
    /// replaying journaled requests.
    pub fn parse(s: &str) -> Option<RequestKind> {
        match s {
            "sweep" => Some(RequestKind::Sweep),
            "analyze" => Some(RequestKind::Analyze),
            _ => None,
        }
    }
}

/// The resume token of a batch: FNV-1a 64 over the request kind and
/// the *raw* wire body. Identical request bytes — from the same client
/// retrying, or a different client asking the same question — map to
/// the same token, which is what makes admission idempotent and crash
/// recovery possible: the journal records the same token the service
/// derives, so a replayed request answers the original token.
pub fn resume_token(kind: RequestKind, raw_body: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in kind.as_str().bytes().chain([b':']).chain(raw_body.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// This daemon incarnation's id, sent in the `accepted` handshake. A
/// resuming client echoes it back; a mismatch means the daemon
/// restarted in between, so the client's event count is meaningless
/// and the stream restarts from the beginning.
fn run_id() -> u64 {
    u64::from(std::process::id())
}

/// What one handled batch produced.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The rendered output, byte-identical to the one-shot CLI's.
    pub output: String,
    /// The exit code the one-shot CLI would have returned.
    pub exit_code: i32,
    /// Cells answered from the warm shared cache.
    pub cache_hits: u64,
    /// Cells actually simulated.
    pub simulated: u64,
    /// Queued cells dropped before they ran (drain).
    pub cancelled: u64,
}

/// Why a handler refused to run a batch at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerError {
    /// Admission control: the shared queue is over its configured
    /// bound. Nothing was streamed; the service answers `503` with
    /// these numbers in a typed JSON body.
    Saturated {
        /// Cells already queued when the request arrived.
        queued: usize,
        /// Cells this request wanted to add.
        wanted: usize,
        /// The configured queue bound.
        limit: usize,
    },
    /// The backend is degraded — typically the result store went
    /// read-only after a write failure — and new batches would run
    /// without memoizing. The service answers `503` with a
    /// `Retry-After` header; the store re-probes the disk on its own
    /// and admission recovers when it does.
    Unavailable {
        /// How long, in seconds, the client should wait before
        /// retrying.
        retry_after_secs: u64,
    },
}

impl HandlerError {
    /// The `Retry-After` value, in seconds, for the `503` response.
    fn retry_after_secs(self) -> u64 {
        match self {
            HandlerError::Saturated { .. } => 1,
            HandlerError::Unavailable { retry_after_secs } => retry_after_secs.max(1),
        }
    }

    /// The `error` field of the typed `503` body.
    fn name(self) -> &'static str {
        match self {
            HandlerError::Saturated { .. } => "saturated",
            HandlerError::Unavailable { .. } => "unavailable",
        }
    }
}

impl std::fmt::Display for HandlerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandlerError::Saturated {
                queued,
                wanted,
                limit,
            } => write!(
                f,
                "saturated: {queued} cells queued + {wanted} requested > limit {limit}"
            ),
            HandlerError::Unavailable { retry_after_secs } => write!(
                f,
                "unavailable: result store is read-only after a write failure; \
                 retry in {retry_after_secs}s"
            ),
        }
    }
}

/// A point-in-time snapshot of the handler's execution backend,
/// surfaced verbatim by `/status`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HandlerStats {
    /// Resident worker threads in the shared pool.
    pub workers: usize,
    /// Cells queued and not yet picked up by a worker.
    pub queued_cells: usize,
    /// Cells currently executing on a worker.
    pub running_cells: usize,
    /// Queued cells dropped before running, cumulative.
    pub cancelled_cells: u64,
    /// Worker threads respawned after a panic, cumulative.
    pub respawns: u64,
    /// Cells quarantined after repeated worker panics, cumulative.
    pub poisoned: u64,
    /// True while the result store is degraded to read-only.
    pub read_only: bool,
}

/// The execution backend behind the service — implemented by the CLI
/// around the shared cell scheduler, mocked in tests.
///
/// `run` takes `&self` and the trait requires `Send + Sync`: the
/// service calls it from many connection threads at once, so
/// implementations own their interior synchronisation (the CLI handler
/// builds a fresh per-request harness around shared `Clone` handles).
pub trait Handler: Send + Sync {
    /// Runs the batch described by `body` (a parsed JSON object),
    /// emitting progress events through `progress` as cells finish.
    /// `token` is the batch's resume token — a journaling handler
    /// records it so the request can be replayed after a crash.
    ///
    /// The callback's return value reports whether a client is still
    /// attached; the service keeps detached batches running (their
    /// events are retained for resume), so handlers should treat
    /// `false` as advisory, not as a cancellation order.
    /// A malformed body should come back as an `Ok` result with a
    /// non-zero `exit_code` and the parse error as `output`; `Err` is
    /// reserved for refusing to run at all.
    ///
    /// # Errors
    ///
    /// [`HandlerError::Saturated`] when admission control refuses the
    /// batch, [`HandlerError::Unavailable`] while the backend is
    /// degraded — both guaranteed to happen before any progress is
    /// emitted.
    fn run(
        &self,
        kind: RequestKind,
        body: &Value,
        token: &str,
        progress: &mut dyn FnMut(&Value) -> bool,
    ) -> Result<RunResult, HandlerError>;

    /// A live snapshot of the execution backend for `/status`.
    fn stats(&self) -> HandlerStats {
        HandlerStats::default()
    }

    /// Backend-specific operator gauges as a flat JSON object —
    /// numbers, or arrays of numbers for per-shard breakdowns. The CLI
    /// handler reports journal size/compactions and per-shard store
    /// entry counts here; the service folds them into `/status` and
    /// `/metrics` without knowing their names.
    fn gauges(&self) -> Value {
        Value::Obj(Vec::new())
    }

    /// Quiesces the backend at the end of a drain: stop admitting,
    /// run every already-admitted cell to completion, release workers.
    /// Called once, after all connection threads have been joined.
    fn quiesce(&self) {}
}

/// Counter totals for one service lifetime, reported when the drain
/// completes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServiceSummary {
    /// Requests accepted (all routes).
    pub requests: u64,
    /// Batch requests that overlapped another in-flight batch (the
    /// concurrency the shared scheduler interleaved).
    pub queued: u64,
    /// Sweep cells answered from the warm shared cache.
    pub cache_hits: u64,
    /// Batch requests refused by admission control (`503`).
    pub rejected: u64,
    /// Queued cells dropped before they ran.
    pub cancelled_cells: u64,
    /// Journaled requests replayed headless after a restart.
    pub journal_replayed: u64,
    /// Streams re-attached to an existing batch (`/resume`, or an
    /// idempotent duplicate `POST` joining a live run).
    pub resumed_streams: u64,
    /// Worker threads respawned after a panic.
    pub respawns: u64,
    /// Cells quarantined after repeated worker panics.
    pub poisoned: u64,
}

/// One admitted batch's replayable state: every event line it has
/// emitted (progress and the final result), and whether it finished.
/// Readers — the owning connection, `/resume` attachments, duplicate
/// `POST`s — stream the log and park on the condvar for more.
struct RequestEntry {
    state: Mutex<EntryState>,
    grew: Condvar,
    /// The request kind, for the `/status` request table.
    kind: RequestKind,
    /// Admission time, for request age reporting.
    created: Instant,
}

struct EntryState {
    /// Rendered NDJSON lines, in emission order, `\n`-terminated.
    events: Vec<String>,
    /// Set once, after the final `result` (or `error`) line.
    done: bool,
    /// Progress watermark parsed off the batch's progress events, for
    /// the `/status` request table (`0/0` until the first event).
    cells_done: u64,
    cells_total: u64,
}

impl RequestEntry {
    fn new(kind: RequestKind) -> RequestEntry {
        RequestEntry {
            state: Mutex::new(EntryState {
                events: Vec::new(),
                done: false,
                cells_done: 0,
                cells_total: 0,
            }),
            grew: Condvar::new(),
            kind,
            created: Instant::now(),
        }
    }

    fn push(&self, line: String) {
        relock(&self.state).events.push(line);
        self.grew.notify_all();
    }

    fn note_progress(&self, done: u64, total: u64) {
        let mut st = relock(&self.state);
        st.cells_done = st.cells_done.max(done);
        st.cells_total = st.cells_total.max(total);
    }

    fn finish(&self) {
        relock(&self.state).done = true;
        self.grew.notify_all();
    }

    fn is_done(&self) -> bool {
        relock(&self.state).done
    }

    /// Blocks until there are events past index `from` (or the entry
    /// is done), then returns them along with the done flag.
    fn wait_past(&self, from: usize) -> (Vec<String>, bool) {
        let mut st = relock(&self.state);
        loop {
            if st.events.len() > from || st.done {
                let at = from.min(st.events.len());
                return (st.events[at..].to_vec(), st.done);
            }
            st = self
                .grew
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Spans kept per shard; old spans are overwritten, newest win.
const SPAN_RING_CAP: usize = 2048;

/// Span-ring shards. Cell spans shard by worker lane, so concurrent
/// workers rarely contend on one mutex — the "lock-cheap per-worker
/// ring" the observability layer promises.
const SPAN_SHARDS: usize = 8;

/// The service lane request spans render on (admit / queued / run).
const LANE_SERVICE: u64 = 0;
/// The lane client stream/drain spans render on.
const LANE_STREAM: u64 = 1;
/// Worker `w`'s cell spans render on `LANE_WORKERS + w`.
const LANE_WORKERS: u64 = 2;

/// A fixed-capacity overwrite-oldest ring of `(token, span)` pairs.
struct SpanRing {
    buf: Vec<(String, ReqSpan)>,
    next: usize,
}

impl SpanRing {
    fn new() -> SpanRing {
        SpanRing {
            buf: Vec::new(),
            next: 0,
        }
    }

    fn push(&mut self, token: &str, span: ReqSpan) {
        if self.buf.len() < SPAN_RING_CAP {
            self.buf.push((token.to_string(), span));
        } else {
            self.buf[self.next] = (token.to_string(), span);
            self.next = (self.next + 1) % SPAN_RING_CAP;
        }
    }
}

struct Inner {
    handler: Box<dyn Handler>,
    metrics: Mutex<Metrics>,
    /// Completed-batch latency, bucketed as `log2(ms + 1)` so the
    /// fixed 33-bucket histogram spans sub-millisecond cache hits to
    /// multi-hour sweeps.
    latency: Mutex<Histogram>,
    /// Sum of raw batch latencies in ms — the exact `_sum` the
    /// Prometheus histogram exposition wants (the [`Histogram`]'s own
    /// `sum` accumulates bucket indices, not milliseconds).
    latency_sum_ms: AtomicU64,
    /// The last two minutes at one-second resolution, for rolling
    /// rates and windowed percentiles in `/status` and `/metrics`.
    series: Mutex<SeriesRing>,
    /// Request-scoped spans, sharded by lane; `GET /trace/<token>`
    /// filters and exports them as a Chrome trace.
    spans: Vec<Mutex<SpanRing>>,
    /// Time base for span timestamps and series slots.
    epoch: Instant,
    /// `CTCP_SLOW_CELL_MS` override for the slow-cell log threshold;
    /// `None` = rolling p99 × 3.
    slow_cell_ms: Option<u64>,
    /// Every batch this incarnation has admitted, live and finished,
    /// keyed by resume token. Finished entries are kept so a client
    /// that reconnects after its batch completed still gets the full
    /// stream; the map is bounded by requests-per-daemon-lifetime.
    registry: Mutex<HashMap<String, Arc<RequestEntry>>>,
    /// Headless replay threads started by [`Service::replay`], joined
    /// during the drain so no journaled batch is ever abandoned twice.
    replays: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Batch requests currently being handled (admitted or not-yet-
    /// admitted; excludes `/status` and `/shutdown`).
    in_flight: AtomicUsize,
    /// Set by `/shutdown`; the accept loop stops taking connections.
    draining: AtomicBool,
    addr: SocketAddr,
}

/// Mutex access that survives a poisoned lock: a panicking batch must
/// not wedge the whole daemon.
fn relock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Inner {
    /// Microseconds since daemon start — the span time base.
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Whole seconds since daemon start — the series slot clock.
    fn now_sec(&self) -> u64 {
        self.epoch.elapsed().as_secs()
    }

    /// Records one request span under its correlation token.
    fn record_span(&self, token: &str, span: ReqSpan) {
        let shard = (span.lane as usize) % self.spans.len();
        relock(&self.spans[shard]).push(token, span);
    }

    /// Every retained span of `token`, in recording order per shard.
    fn spans_for(&self, token: &str) -> Vec<ReqSpan> {
        let mut out = Vec::new();
        for shard in &self.spans {
            let ring = relock(shard);
            out.extend(
                ring.buf
                    .iter()
                    .filter(|(t, _)| t == token)
                    .map(|(_, s)| s.clone()),
            );
        }
        out
    }

    /// The slow-cell threshold in ms: the configured override, else
    /// rolling p99 × 3 once the last two minutes hold enough samples
    /// to make a percentile meaningful.
    fn slow_cell_threshold_ms(&self, now_sec: u64) -> u64 {
        if let Some(ms) = self.slow_cell_ms {
            return ms;
        }
        let w = relock(&self.series).window(now_sec, SERIES_SECONDS as u64);
        if w.cell_lat.total < 20 {
            return u64::MAX;
        }
        w.cell_percentile_ms(99.0).saturating_mul(3).max(1)
    }
}

/// A bound, not-yet-running sweep service.
pub struct Service {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Service {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// wires `handler` behind it. The listener is live — connections
    /// queue in the OS backlog — but nothing is served until
    /// [`run`](Service::run).
    ///
    /// # Errors
    ///
    /// Bind failures (address in use, permission).
    pub fn bind(addr: &str, handler: Box<dyn Handler>) -> io::Result<Service> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Service {
            listener,
            inner: Arc::new(Inner {
                handler,
                metrics: Mutex::new(Metrics::new()),
                latency: Mutex::new(Histogram::default()),
                latency_sum_ms: AtomicU64::new(0),
                series: Mutex::new(SeriesRing::new(SERIES_SECONDS)),
                spans: (0..SPAN_SHARDS)
                    .map(|_| Mutex::new(SpanRing::new()))
                    .collect(),
                epoch: Instant::now(),
                slow_cell_ms: std::env::var("CTCP_SLOW_CELL_MS")
                    .ok()
                    .and_then(|s| s.parse().ok()),
                registry: Mutex::new(HashMap::new()),
                replays: Mutex::new(Vec::new()),
                in_flight: AtomicUsize::new(0),
                draining: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address — the actual port when bound to port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Re-runs a journaled request headless — no socket, events into
    /// the registry — so a client that reconnects after a daemon crash
    /// finds its token live (or finished) instead of unknown. Called
    /// by the CLI before [`run`](Service::run) for every unfinished
    /// request the journal replays. Returns `false` (and does nothing)
    /// when the body no longer parses or the token is already
    /// registered.
    pub fn replay(&self, kind: RequestKind, raw_body: &str) -> bool {
        let Ok(body) = Value::parse(raw_body) else {
            return false;
        };
        let token = resume_token(kind, raw_body);
        let entry = Arc::new(RequestEntry::new(kind));
        {
            let mut reg = relock(&self.inner.registry);
            if reg.contains_key(&token) {
                return false;
            }
            reg.insert(token.clone(), Arc::clone(&entry));
        }
        relock(&self.inner.metrics).add(Counter::ServeJournalReplayed, 1);
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::spawn(move || {
            let _ = execute_entry(&inner, kind, &body, &token, &entry, None);
        });
        relock(&self.inner.replays).push(handle);
        true
    }

    /// Serves until a `/shutdown` request, then drains: the accept
    /// loop stops, every in-flight connection thread and replay thread
    /// is joined (their batches run to completion), the handler is
    /// quiesced, and the counter totals are returned.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop failures only; per-connection errors (a peer
    /// hanging up mid-stream) are contained in that connection's
    /// thread.
    pub fn run(self) -> io::Result<ServiceSummary> {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        // `serve-accept-storm=N` drops the first N connections on the
        // floor — the reconnect-herd chaos the client backoff absorbs.
        let mut storm_dropped: u64 = 0;
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.inner.draining.load(Ordering::Acquire) {
                break;
            }
            if let Some(n) = failpoint::arg("serve-accept-storm") {
                if storm_dropped < n.parse().unwrap_or(0) {
                    storm_dropped += 1;
                    drop(stream);
                    continue;
                }
            }
            let inner = Arc::clone(&self.inner);
            workers.push(std::thread::spawn(move || {
                let _ = handle_connection(stream, &inner);
            }));
            // Reap finished threads so a long-lived daemon does not
            // accumulate one handle per connection ever served.
            let (done, running) = workers.into_iter().partition(|w| w.is_finished());
            workers = running;
            for w in done {
                let _ = w.join();
            }
        }
        // Graceful drain: in-flight batches finish (and memoize) even
        // though no new connections are accepted — then the handler's
        // own pool is quiesced, so no admitted cell is ever lost.
        for w in workers {
            let _ = w.join();
        }
        for r in std::mem::take(&mut *relock(&self.inner.replays)) {
            let _ = r.join();
        }
        let hs = self.inner.handler.stats();
        self.inner.handler.quiesce();
        let m = relock(&self.inner.metrics);
        Ok(ServiceSummary {
            requests: m.get(Counter::ServeRequests),
            queued: m.get(Counter::ServeQueued),
            cache_hits: m.get(Counter::ServeCacheHits),
            rejected: m.get(Counter::ServeRejected),
            cancelled_cells: m.get(Counter::ServeCancelledCells),
            journal_replayed: m.get(Counter::ServeJournalReplayed),
            resumed_streams: m.get(Counter::ServeResumedStreams),
            respawns: hs.respawns,
            poisoned: hs.poisoned,
        })
    }
}

fn handle_connection(stream: TcpStream, inner: &Inner) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let req = match http::read_request(&mut reader) {
        Ok(Some(req)) => req,
        Ok(None) => return Ok(()), // connected and left
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return http::write_response(&mut out, 400, "text/plain", e.to_string().as_bytes());
        }
        Err(e) => return Err(e),
    };
    relock(&inner.metrics).add(Counter::ServeRequests, 1);
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/sweep") => run_batch(RequestKind::Sweep, &req, &mut out, inner),
        ("POST", "/analyze") => run_batch(RequestKind::Analyze, &req, &mut out, inner),
        ("POST", "/resume") => resume(&req, &mut out, inner),
        ("GET", "/status") => status(&mut out, inner),
        ("GET", "/metrics") => metrics_export(&mut out, inner),
        ("GET", path) if path.strip_prefix("/trace/").is_some_and(|t| !t.is_empty()) => {
            let token = path["/trace/".len()..].to_string();
            trace_export(&token, &mut out, inner)
        }
        ("POST", "/shutdown") => shutdown(&mut out, inner),
        _ => http::write_response(&mut out, 404, "text/plain", b"unknown route"),
    }
}

/// Decrements the in-flight gauge however the batch ends (result,
/// rejection, panic in the handler, broken pipe).
struct InFlight<'a>(&'a AtomicUsize);

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The first chunk of every batch stream: the resume handshake. Not
/// recorded in the entry log — each attachment gets its own, and
/// clients count delivered events from the line after it.
fn accepted_line(token: &str) -> String {
    let mut line = Value::Obj(vec![
        ("event".into(), Value::str("accepted")),
        ("token".into(), Value::str(token)),
        ("run".into(), Value::u64(run_id())),
    ])
    .render();
    line.push('\n');
    line
}

/// Runs the batch through the handler on the current thread, recording
/// every event line (and the final `result` line) in `entry`, and
/// mirroring each to `sink` while it keeps accepting them — `sink`
/// returning `false` detaches the stream but never stops the batch.
/// Refusals remove the entry from the registry (a later retry runs
/// fresh) and mark it done with a terminal `error` line so attached
/// streams end instead of hanging; a panicking handler yields a
/// terminal `result` line with exit code 70 and the daemon survives.
fn execute_entry(
    inner: &Inner,
    kind: RequestKind,
    body: &Value,
    token: &str,
    entry: &RequestEntry,
    mut sink: Option<&mut dyn FnMut(&str) -> bool>,
) -> Result<(), HandlerError> {
    fn emit(
        entry: &RequestEntry,
        line: String,
        sink: &mut Option<&mut dyn FnMut(&str) -> bool>,
        attached: &mut bool,
    ) {
        entry.push(line.clone());
        if *attached {
            if let Some(s) = sink.as_mut() {
                *attached = s(&line);
            }
        }
    }

    let started = Instant::now();
    let started_us = inner.now_us();
    log::info(
        "serve",
        "request admitted",
        &[
            ("token", Value::str(token)),
            ("kind", Value::str(kind.as_str())),
        ],
    );
    inner.record_span(
        token,
        ReqSpan {
            name: "admit".into(),
            lane: LANE_SERVICE,
            lane_name: "service".into(),
            ts_us: started_us,
            dur_us: 0,
            args: vec![
                ("token".into(), Value::str(token)),
                ("kind".into(), Value::str(kind.as_str())),
            ],
        },
    );
    let mut attached = true;
    let mut first_event_us: Option<u64> = None;
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        inner.handler.run(kind, body, token, &mut |event| {
            let now_us = inner.now_us();
            first_event_us.get_or_insert(now_us);
            observe_progress_event(inner, token, entry, event, now_us);
            let mut line = event.render();
            line.push('\n');
            emit(entry, line, &mut sink, &mut attached);
            true
        })
    }));
    let result = match outcome {
        Ok(Ok(result)) => result,
        Ok(Err(refusal)) => {
            relock(&inner.metrics).add(Counter::ServeRejected, 1);
            relock(&inner.registry).remove(token);
            log::warn(
                "serve",
                "request refused",
                &[
                    ("token", Value::str(token)),
                    ("error", Value::str(refusal.name())),
                    ("message", Value::str(&refusal.to_string())),
                ],
            );
            let mut line = Value::Obj(vec![
                ("event".into(), Value::str("error")),
                ("error".into(), Value::str(refusal.name())),
                ("message".into(), Value::str(&refusal.to_string())),
            ])
            .render();
            line.push('\n');
            entry.push(line);
            entry.finish();
            return Err(refusal);
        }
        Err(_) => {
            // The handler panicked mid-batch. The daemon survives; the
            // batch gets a terminal result so no stream hangs on it.
            log::error(
                "serve",
                "handler panicked mid-batch",
                &[("token", Value::str(token))],
            );
            RunResult {
                output: "internal error: batch panicked".into(),
                exit_code: 70,
                cache_hits: 0,
                simulated: 0,
                cancelled: 0,
            }
        }
    };

    {
        let mut m = relock(&inner.metrics);
        m.add(Counter::ServeCacheHits, result.cache_hits);
        m.add(Counter::ServeCancelledCells, result.cancelled);
    }
    let ms = started.elapsed().as_millis() as u64;
    relock(&inner.latency).observe(latency_bucket(ms));
    inner.latency_sum_ms.fetch_add(ms, Ordering::Relaxed);
    relock(&inner.series).record_request(inner.now_sec(), ms);
    // The wait between admission and the first progress event is the
    // best queue-time proxy the wire has: the handler emits nothing
    // until a first cell completes.
    if let Some(first) = first_event_us {
        inner.record_span(
            token,
            ReqSpan {
                name: "queued".into(),
                lane: LANE_SERVICE,
                lane_name: "service".into(),
                ts_us: started_us,
                dur_us: first.saturating_sub(started_us),
                args: vec![("token".into(), Value::str(token))],
            },
        );
    }
    inner.record_span(
        token,
        ReqSpan {
            name: format!("run {}", kind.as_str()),
            lane: LANE_SERVICE,
            lane_name: "service".into(),
            ts_us: started_us,
            dur_us: inner.now_us().saturating_sub(started_us),
            args: vec![
                ("token".into(), Value::str(token)),
                (
                    "exit_code".into(),
                    Value::u64(result.exit_code.unsigned_abs().into()),
                ),
                ("cache_hits".into(), Value::u64(result.cache_hits)),
                ("simulated".into(), Value::u64(result.simulated)),
            ],
        },
    );
    log::info(
        "serve",
        "request finished",
        &[
            ("token", Value::str(token)),
            ("kind", Value::str(kind.as_str())),
            ("took_ms", Value::u64(ms)),
            (
                "exit_code",
                Value::u64(result.exit_code.unsigned_abs().into()),
            ),
            ("cache_hits", Value::u64(result.cache_hits)),
            ("simulated", Value::u64(result.simulated)),
            ("cancelled", Value::u64(result.cancelled)),
        ],
    );

    let mut line = Value::Obj(vec![
        ("event".into(), Value::str("result")),
        (
            "exit_code".into(),
            Value::u64(result.exit_code.unsigned_abs().into()),
        ),
        ("cache_hits".into(), Value::u64(result.cache_hits)),
        ("simulated".into(), Value::u64(result.simulated)),
        ("cancelled".into(), Value::u64(result.cancelled)),
        ("output".into(), Value::str(&result.output)),
    ])
    .render();
    line.push('\n');
    emit(entry, line, &mut sink, &mut attached);
    entry.finish();
    Ok(())
}

/// Observes one handler progress event before it is streamed: updates
/// the entry's progress watermark for the `/status` request table,
/// records a per-worker cell span, feeds the series ring, and logs a
/// structured record when the cell exceeded the slow-cell threshold.
/// Non-`progress` events pass through untouched.
fn observe_progress_event(
    inner: &Inner,
    token: &str,
    entry: &RequestEntry,
    event: &Value,
    now_us: u64,
) {
    if event.get("event").and_then(Value::as_str) != Some("progress") {
        return;
    }
    let done = event.get("done").and_then(Value::as_u64).unwrap_or(0);
    let total = event.get("total").and_then(Value::as_u64).unwrap_or(0);
    entry.note_progress(done, total);
    let workload = event
        .get("workload")
        .and_then(Value::as_str)
        .unwrap_or("cell");
    let took_s = event.get("took_s").and_then(Value::as_f64).unwrap_or(0.0);
    let worker = event.get("worker").and_then(Value::as_u64).unwrap_or(0);
    let took_us = (took_s * 1e6) as u64;
    let took_ms = (took_s * 1e3) as u64;
    inner.record_span(
        token,
        ReqSpan {
            name: format!("cell {workload}"),
            lane: LANE_WORKERS + worker,
            lane_name: format!("worker {worker}"),
            ts_us: now_us.saturating_sub(took_us),
            dur_us: took_us,
            args: vec![
                ("token".into(), Value::str(token)),
                ("workload".into(), Value::str(workload)),
                ("done".into(), Value::u64(done)),
                ("total".into(), Value::u64(total)),
            ],
        },
    );
    let now_sec = inner.now_sec();
    relock(&inner.series).record_cell(now_sec, took_ms);
    let threshold = inner.slow_cell_threshold_ms(now_sec);
    if took_ms > threshold {
        // PipelineDiagnostic-style context: what ran, where, for whom,
        // and what the pool looked like while it was slow.
        let hs = inner.handler.stats();
        log::warn(
            "serve",
            "slow cell",
            &[
                ("token", Value::str(token)),
                ("workload", Value::str(workload)),
                ("took_ms", Value::u64(took_ms)),
                ("threshold_ms", Value::u64(threshold)),
                ("worker", Value::u64(worker)),
                ("cell", Value::u64(done)),
                ("of", Value::u64(total)),
                ("queued_cells", Value::u64(hs.queued_cells as u64)),
                ("running_cells", Value::u64(hs.running_cells as u64)),
            ],
        );
    } else if log::enabled(log::Level::Debug) {
        log::debug(
            "serve",
            "cell finished",
            &[
                ("token", Value::str(token)),
                ("workload", Value::str(workload)),
                ("took_ms", Value::u64(took_ms)),
                ("worker", Value::u64(worker)),
            ],
        );
    }
}

fn run_batch(
    kind: RequestKind,
    req: &http::Request,
    out: &mut TcpStream,
    inner: &Inner,
) -> io::Result<()> {
    let Some(raw) = req.body_str() else {
        return http::write_response(out, 400, "text/plain", b"body is not valid JSON");
    };
    let Ok(body) = Value::parse(raw) else {
        return http::write_response(out, 400, "text/plain", b"body is not valid JSON");
    };
    let token = resume_token(kind, raw);

    // Idempotent admission: an identical request already running (same
    // kind, same raw body, so same token) is attached to, not re-run.
    // Finished entries do not capture duplicates — re-asking a settled
    // question runs fresh (and answers warm from the store anyway).
    let entry = {
        let mut reg = relock(&inner.registry);
        match reg.get(&token) {
            Some(live) if !live.is_done() => {
                let live = Arc::clone(live);
                drop(reg);
                relock(&inner.metrics).add(Counter::ServeResumedStreams, 1);
                return stream_entry(out, &live, &token, 0, inner);
            }
            _ => {
                let entry = Arc::new(RequestEntry::new(kind));
                reg.insert(token.clone(), Arc::clone(&entry));
                entry
            }
        }
    };

    if inner.in_flight.fetch_add(1, Ordering::SeqCst) > 0 {
        // Another batch is already running: this one rides the shared
        // pool concurrently instead of waiting its turn.
        relock(&inner.metrics).add(Counter::ServeQueued, 1);
    }
    let _gauge = InFlight(&inner.in_flight);

    // The chunked stream starts lazily, on the first event: a batch
    // refused by admission control streams nothing, so it can still
    // be answered with a clean fixed-length 503. The first chunk of a
    // started stream is the `accepted` resume handshake.
    let mut writer: Option<http::ChunkedWriter<TcpStream>> = None;
    let mut stream_started_us: Option<u64> = None;
    let mut sent = 0usize;
    let refusal = {
        let mut sink = |line: &str| -> bool {
            let w = match writer.as_mut() {
                Some(w) => w,
                None => match out
                    .try_clone()
                    .and_then(|s| http::ChunkedWriter::start(s, 200, "application/x-ndjson"))
                {
                    Ok(mut w) => {
                        stream_started_us = Some(inner.now_us());
                        if w.chunk(accepted_line(&token).as_bytes()).is_err() {
                            return false;
                        }
                        writer.insert(w)
                    }
                    Err(_) => return false,
                },
            };
            // A failed write detaches this client; the batch keeps
            // running and the registry keeps its stream for a resume.
            let ok = w.chunk(line.as_bytes()).is_ok();
            sent += usize::from(ok);
            ok
        };
        execute_entry(inner, kind, &body, &token, &entry, Some(&mut sink))
    };

    if let Err(e) = refusal {
        debug_assert!(writer.is_none(), "admission precedes streaming");
        let retry_after = e.retry_after_secs().to_string();
        let mut fields = vec![
            ("error".into(), Value::str(e.name())),
            ("message".into(), Value::str(&e.to_string())),
        ];
        if let HandlerError::Saturated {
            queued,
            wanted,
            limit,
        } = e
        {
            fields.push(("queued".into(), Value::u64(queued as u64)));
            fields.push(("wanted".into(), Value::u64(wanted as u64)));
            fields.push(("limit".into(), Value::u64(limit as u64)));
        }
        let body = Value::Obj(fields).render();
        return http::write_response_with(
            out,
            503,
            "application/json",
            &[("Retry-After", &retry_after)],
            body.as_bytes(),
        );
    }
    match writer {
        Some(w) => {
            // The live client's stream gets the same span the
            // attach/resume path records, so every delivered stream —
            // original or re-attached — shows on the streams lane.
            let ts_us = stream_started_us.unwrap_or_else(|| inner.now_us());
            inner.record_span(
                &token,
                ReqSpan {
                    name: "stream".into(),
                    lane: LANE_STREAM,
                    lane_name: "streams".into(),
                    ts_us,
                    dur_us: inner.now_us().saturating_sub(ts_us),
                    args: vec![
                        ("token".into(), Value::str(&token)),
                        ("from".into(), Value::u64(0)),
                        ("events".into(), Value::u64(sent as u64)),
                    ],
                },
            );
            w.finish()
        }
        // The client detached before the stream ever started (or the
        // start itself failed); nothing left to say on this socket.
        None => Ok(()),
    }
}

/// Streams `entry` to `out` from event index `from`: the `accepted`
/// handshake, every already-recorded event past `from`, then live
/// events as the batch emits them, until the entry is done.
fn stream_entry(
    out: &mut TcpStream,
    entry: &RequestEntry,
    token: &str,
    from: usize,
    inner: &Inner,
) -> io::Result<()> {
    let stream_start_us = inner.now_us();
    let mut w = http::ChunkedWriter::start(out.try_clone()?, 200, "application/x-ndjson")?;
    w.chunk(accepted_line(token).as_bytes())?;
    let mut at = from;
    loop {
        let (events, done) = entry.wait_past(at);
        for line in &events {
            w.chunk(line.as_bytes())?;
        }
        at += events.len();
        if done {
            break;
        }
    }
    let sent = at - from;
    inner.record_span(
        token,
        ReqSpan {
            name: "stream".into(),
            lane: LANE_STREAM,
            lane_name: "streams".into(),
            ts_us: stream_start_us,
            dur_us: inner.now_us().saturating_sub(stream_start_us),
            args: vec![
                ("token".into(), Value::str(token)),
                ("from".into(), Value::u64(from as u64)),
                ("events".into(), Value::u64(sent as u64)),
            ],
        },
    );
    w.finish()
}

/// `POST /resume {"token": "...", "have": N, "run": R}` — re-attaches
/// to a batch by resume token, skipping the `N` events the client
/// already received from daemon incarnation `R` (all events are
/// re-sent when `R` is not this incarnation). Unknown tokens get a
/// typed `404` — the client falls back to re-POSTing the original
/// request.
fn resume(req: &http::Request, out: &mut TcpStream, inner: &Inner) -> io::Result<()> {
    let body = match req.body_str().map(Value::parse) {
        Some(Ok(v)) => v,
        _ => return http::write_response(out, 400, "text/plain", b"body is not valid JSON"),
    };
    let Some(token) = body.get("token").and_then(Value::as_str).map(String::from) else {
        return http::write_response(out, 400, "text/plain", b"resume body needs a token");
    };
    let have = body.get("have").and_then(Value::as_u64).unwrap_or(0) as usize;
    let run = body.get("run").and_then(Value::as_u64).unwrap_or(0);
    let entry = relock(&inner.registry).get(&token).map(Arc::clone);
    let Some(entry) = entry else {
        let body = Value::Obj(vec![
            ("error".into(), Value::str("unknown-token")),
            ("token".into(), Value::str(&token)),
        ])
        .render();
        return http::write_response(out, 404, "application/json", body.as_bytes());
    };
    let from = if run == run_id() { have } else { 0 };
    relock(&inner.metrics).add(Counter::ServeResumedStreams, 1);
    log::info(
        "serve",
        "stream resumed",
        &[
            ("token", Value::str(&token)),
            ("from", Value::u64(from as u64)),
        ],
    );
    stream_entry(out, &entry, &token, from, inner)
}

/// The explicit `[lower, upper]` bucket bounds of the latency
/// histogram as a JSON array of `{le, count}` objects (non-cumulative
/// counts, one entry per populated bucket). The unbounded last bucket
/// reports `"+Inf"` — the same upper bounds `/metrics` exposes, so the
/// percentiles in `/status` are finally interpretable.
fn latency_buckets_value(lat: &Histogram) -> Value {
    let mut buckets = Vec::new();
    for (i, &c) in lat.counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let le = bucket_upper_ms(i as u64);
        let le = if le == u64::MAX {
            Value::str("+Inf")
        } else {
            Value::u64(le)
        };
        buckets.push(Value::Obj(vec![
            ("le".into(), le),
            ("count".into(), Value::u64(c)),
        ]));
    }
    Value::Arr(buckets)
}

fn status(out: &mut TcpStream, inner: &Inner) -> io::Result<()> {
    // Nothing here waits on a batch: the gauges are atomics, the
    // handler snapshot reads its scheduler's atomics, and the
    // mutexes are only ever held for micro-ops.
    let hs = inner.handler.stats();
    let in_flight = inner.in_flight.load(Ordering::SeqCst) as u64;
    let utilization = if hs.workers == 0 {
        0.0
    } else {
        hs.running_cells as f64 / hs.workers as f64
    };
    let lat = relock(&inner.latency).clone();
    // Rolling one-minute window off the series ring: true rates, not
    // lifetime averages.
    let win = relock(&inner.series).window(inner.now_sec(), 60);
    // Live (unfinished) requests, oldest first, for `ctcp top`'s table.
    let mut requests: Vec<(u64, Value)> = relock(&inner.registry)
        .iter()
        .filter(|(_, e)| !e.is_done())
        .map(|(token, e)| {
            let st = relock(&e.state);
            let age_s = e.created.elapsed().as_secs();
            (
                age_s,
                Value::Obj(vec![
                    ("token".into(), Value::str(token)),
                    ("kind".into(), Value::str(e.kind.as_str())),
                    ("age_s".into(), Value::u64(age_s)),
                    ("cells_done".into(), Value::u64(st.cells_done)),
                    ("cells_total".into(), Value::u64(st.cells_total)),
                ]),
            )
        })
        .collect();
    requests.sort_by_key(|(age, _)| std::cmp::Reverse(*age));
    let requests: Vec<Value> = requests.into_iter().map(|(_, v)| v).take(64).collect();
    let m = relock(&inner.metrics);
    let mut counters: Vec<(String, Value)> = [
        Counter::ServeRequests,
        Counter::ServeQueued,
        Counter::ServeCacheHits,
        Counter::ServeRejected,
        Counter::ServeCancelledCells,
        Counter::ServeJournalReplayed,
        Counter::ServeResumedStreams,
    ]
    .iter()
    .map(|&c| (c.name().to_string(), Value::u64(m.get(c))))
    .collect();
    // The supervision counters live in the handler's scheduler, not in
    // the service's metrics — surfaced here under their Counter names
    // so `/status` is the one place to read robustness state.
    counters.push((
        Counter::ServeWorkerRespawns.name().to_string(),
        Value::u64(hs.respawns),
    ));
    counters.push((
        Counter::ServeCellsPoisoned.name().to_string(),
        Value::u64(hs.poisoned),
    ));
    let body = Value::Obj(vec![
        ("status".into(), Value::str("ok")),
        ("in_flight".into(), Value::u64(in_flight)),
        ("workers".into(), Value::u64(hs.workers as u64)),
        ("queued_cells".into(), Value::u64(hs.queued_cells as u64)),
        ("running_cells".into(), Value::u64(hs.running_cells as u64)),
        ("worker_utilization".into(), Value::f64(utilization)),
        ("cancelled_cells".into(), Value::u64(hs.cancelled_cells)),
        ("store_read_only".into(), Value::Bool(hs.read_only)),
        (
            "latency_ms".into(),
            Value::Obj(vec![
                ("samples".into(), Value::u64(lat.total)),
                (
                    "p50".into(),
                    Value::u64(bucket_lower_ms(lat.percentile(50.0))),
                ),
                (
                    "p95".into(),
                    Value::u64(bucket_lower_ms(lat.percentile(95.0))),
                ),
                (
                    "p99".into(),
                    Value::u64(bucket_lower_ms(lat.percentile(99.0))),
                ),
                ("buckets".into(), latency_buckets_value(&lat)),
            ]),
        ),
        (
            "rolling".into(),
            Value::Obj(vec![
                ("window_s".into(), Value::u64(win.seconds)),
                ("cells".into(), Value::u64(win.cells)),
                ("requests".into(), Value::u64(win.requests)),
                ("cells_per_sec".into(), Value::f64(win.cells_per_sec())),
                ("p95_ms".into(), Value::u64(win.req_percentile_ms(95.0))),
                ("p99_ms".into(), Value::u64(win.req_percentile_ms(99.0))),
                (
                    "cell_p95_ms".into(),
                    Value::u64(win.cell_percentile_ms(95.0)),
                ),
            ]),
        ),
        ("requests".into(), Value::Arr(requests)),
        ("gauges".into(), inner.handler.gauges()),
        ("recent_logs".into(), Value::Arr(log::recent())),
        ("counters".into(), Value::Obj(counters)),
    ])
    .render();
    drop(m);
    http::write_response(out, 200, "application/json", body.as_bytes())
}

/// `GET /trace/<token>` — one request's recorded spans as a Chrome
/// trace-event JSON document (load in `about://tracing` or Perfetto).
/// Tokens with no retained spans — unknown, or aged out of the span
/// rings — get a typed `404`.
fn trace_export(token: &str, out: &mut TcpStream, inner: &Inner) -> io::Result<()> {
    let spans = inner.spans_for(token);
    if spans.is_empty() {
        let body = Value::Obj(vec![
            ("error".into(), Value::str("unknown-token")),
            ("token".into(), Value::str(token)),
        ])
        .render();
        return http::write_response(out, 404, "application/json", body.as_bytes());
    }
    let text = request_trace(&spans);
    http::write_response(out, 200, "application/json", text.as_bytes())
}

/// Writes one Prometheus metric family: `# HELP` / `# TYPE` header
/// plus the sample lines.
fn prom_family(out: &mut String, name: &str, kind: &str, help: &str, lines: &[String]) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    for l in lines {
        out.push_str(l);
        out.push('\n');
    }
}

/// Renders a float the exposition format accepts (no exponent needed
/// at our magnitudes; integers stay integral).
fn prom_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// `GET /metrics` — the service's counters, gauges and the request
/// latency histogram in Prometheus text exposition format, every name
/// prefixed `ctcp_`. Counters come from the same [`Metrics`] snapshot
/// `/status` reads (the two scheduler-owned supervision counters are
/// patched in from the handler, as in `/status`); gauges add the
/// handler's backend numbers (journal size, per-shard store entries)
/// and the rolling one-minute series.
fn metrics_export(out: &mut TcpStream, inner: &Inner) -> io::Result<()> {
    let hs = inner.handler.stats();
    let in_flight = inner.in_flight.load(Ordering::SeqCst) as u64;
    let utilization = if hs.workers == 0 {
        0.0
    } else {
        hs.running_cells as f64 / hs.workers as f64
    };
    let lat = relock(&inner.latency).clone();
    let lat_sum_ms = inner.latency_sum_ms.load(Ordering::Relaxed);
    let win = relock(&inner.series).window(inner.now_sec(), 60);
    let snapshot = relock(&inner.metrics).clone();

    let mut text = String::new();
    for c in Counter::ALL {
        // The supervision counters are owned by the handler's
        // scheduler; the service-side slots for them are always zero.
        let v = match c {
            Counter::ServeWorkerRespawns => hs.respawns,
            Counter::ServeCellsPoisoned => hs.poisoned,
            _ => snapshot.get(c),
        };
        let name = format!("ctcp_{}_total", c.name());
        prom_family(
            &mut text,
            &name,
            "counter",
            &format!("Cumulative {} count.", c.name()),
            &[format!("{name} {v}")],
        );
    }

    let gauges: Vec<(&str, &str, f64)> = vec![
        (
            "ctcp_workers",
            "Resident pool worker threads.",
            hs.workers as f64,
        ),
        (
            "ctcp_queue_depth",
            "Cells queued, not yet running.",
            hs.queued_cells as f64,
        ),
        (
            "ctcp_running_cells",
            "Cells executing right now.",
            hs.running_cells as f64,
        ),
        (
            "ctcp_in_flight_requests",
            "Batch requests currently being handled.",
            in_flight as f64,
        ),
        (
            "ctcp_worker_utilization",
            "Running cells over pool size.",
            utilization,
        ),
        (
            "ctcp_store_read_only",
            "1 while the result store is degraded to read-only.",
            f64::from(u8::from(hs.read_only)),
        ),
        (
            "ctcp_cells_per_sec_1m",
            "Cell completions per second over the last minute.",
            win.cells_per_sec(),
        ),
        (
            "ctcp_requests_1m",
            "Requests completed in the last minute.",
            win.requests as f64,
        ),
        (
            "ctcp_request_p95_ms_1m",
            "Request latency p95 over the last minute (bucket lower bound).",
            win.req_percentile_ms(95.0) as f64,
        ),
        (
            "ctcp_cell_p95_ms_1m",
            "Cell latency p95 over the last minute (bucket lower bound).",
            win.cell_percentile_ms(95.0) as f64,
        ),
    ];
    for (name, help, v) in gauges {
        prom_family(
            &mut text,
            name,
            "gauge",
            help,
            &[format!("{name} {}", prom_num(v))],
        );
    }

    // Backend gauges the handler owns: journal size/compactions,
    // per-shard store entries. Arrays become one labelled sample per
    // element.
    if let Value::Obj(fields) = inner.handler.gauges() {
        for (key, val) in &fields {
            let name = format!("ctcp_{key}");
            match val {
                Value::Arr(items) => {
                    let lines: Vec<String> = items
                        .iter()
                        .enumerate()
                        .filter_map(|(i, v)| {
                            v.as_f64()
                                .map(|f| format!("{name}{{shard=\"{i}\"}} {}", prom_num(f)))
                        })
                        .collect();
                    prom_family(
                        &mut text,
                        &name,
                        "gauge",
                        &format!("Backend gauge {key}."),
                        &lines,
                    );
                }
                v => {
                    if let Some(f) = v.as_f64() {
                        prom_family(
                            &mut text,
                            &name,
                            "gauge",
                            &format!("Backend gauge {key}."),
                            &[format!("{name} {}", prom_num(f))],
                        );
                    }
                }
            }
        }
    }

    // The request latency histogram with explicit, cumulative bucket
    // upper bounds — `le` for log2 bucket i is `2^(i+1) - 2` ms.
    let mut lines = Vec::with_capacity(HIST_BUCKETS + 2);
    let mut cum = 0u64;
    for (i, &c) in lat.counts.iter().enumerate() {
        cum += c;
        let le = bucket_upper_ms(i as u64);
        if le == u64::MAX {
            lines.push(format!(
                "ctcp_request_latency_ms_bucket{{le=\"+Inf\"}} {cum}"
            ));
        } else {
            lines.push(format!(
                "ctcp_request_latency_ms_bucket{{le=\"{le}\"}} {cum}"
            ));
        }
    }
    lines.push(format!("ctcp_request_latency_ms_sum {lat_sum_ms}"));
    lines.push(format!("ctcp_request_latency_ms_count {}", lat.total));
    prom_family(
        &mut text,
        "ctcp_request_latency_ms",
        "histogram",
        "Completed-batch wall latency in milliseconds.",
        &lines,
    );

    http::write_response(out, 200, "text/plain; version=0.0.4", text.as_bytes())
}

fn shutdown(out: &mut TcpStream, inner: &Inner) -> io::Result<()> {
    http::write_response(out, 200, "application/json", b"{\"draining\":true}")?;
    inner.draining.store(true, Ordering::Release);
    // The accept loop is blocked in accept(); poke it awake so it can
    // observe the flag and begin the drain.
    let _ = TcpStream::connect(inner.addr);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A handler that "runs" a two-cell batch instantly, echoing the
    /// request back and reporting one cache hit per prior run of the
    /// same body — enough to exercise streaming, concurrency and
    /// drain.
    struct MockHandler {
        seen: Mutex<Vec<String>>,
        quiesced: Arc<AtomicBool>,
    }

    impl MockHandler {
        fn new() -> (MockHandler, Arc<AtomicBool>) {
            let quiesced = Arc::new(AtomicBool::new(false));
            (
                MockHandler {
                    seen: Mutex::new(Vec::new()),
                    quiesced: Arc::clone(&quiesced),
                },
                quiesced,
            )
        }
    }

    impl Handler for MockHandler {
        fn run(
            &self,
            kind: RequestKind,
            body: &Value,
            _token: &str,
            progress: &mut dyn FnMut(&Value) -> bool,
        ) -> Result<RunResult, HandlerError> {
            let rendered = body.render();
            let hits = {
                let mut seen = self.seen.lock().unwrap();
                let hits = seen.iter().filter(|b| **b == rendered).count() as u64;
                seen.push(rendered.clone());
                hits
            };
            for done in 1..=2u64 {
                progress(&Value::Obj(vec![
                    ("event".into(), Value::str("progress")),
                    ("done".into(), Value::u64(done)),
                    ("total".into(), Value::u64(2)),
                ]));
            }
            Ok(RunResult {
                output: format!("{kind:?}: {rendered}"),
                exit_code: 0,
                cache_hits: hits * 2,
                simulated: 2 - hits.min(2),
                cancelled: 0,
            })
        }

        fn stats(&self) -> HandlerStats {
            HandlerStats {
                workers: 2,
                ..HandlerStats::default()
            }
        }

        fn quiesce(&self) {
            self.quiesced.store(true, Ordering::SeqCst);
        }
    }

    fn start_service() -> (
        String,
        std::thread::JoinHandle<ServiceSummary>,
        Arc<AtomicBool>,
    ) {
        let (handler, quiesced) = MockHandler::new();
        let svc = Service::bind("127.0.0.1:0", Box::new(handler)).expect("bind ephemeral port");
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        (addr, worker, quiesced)
    }

    fn parse_events(body: &[u8]) -> Vec<Value> {
        std::str::from_utf8(body)
            .unwrap()
            .lines()
            .map(|l| Value::parse(l).expect("each line is JSON"))
            .collect()
    }

    #[test]
    fn sweep_streams_handshake_progress_then_result() {
        let (addr, worker, quiesced) = start_service();
        let mut chunks = 0usize;
        let resp = http::request(&addr, "POST", "/sweep", b"{\"grid\":1}", &mut |_| {
            chunks += 1
        })
        .unwrap();
        assert_eq!(resp.status, 200);
        assert!(chunks >= 4, "handshake + 2 progress + 1 result");
        let events = parse_events(&resp.body);
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("event").unwrap().as_str(), Some("accepted"));
        assert_eq!(
            events[0].get("token").unwrap().as_str(),
            Some(resume_token(RequestKind::Sweep, "{\"grid\":1}").as_str())
        );
        assert_eq!(events[0].get("run").unwrap().as_u64(), Some(run_id()));
        assert_eq!(events[1].get("event").unwrap().as_str(), Some("progress"));
        let result = &events[3];
        assert_eq!(result.get("event").unwrap().as_str(), Some("result"));
        assert_eq!(result.get("exit_code").unwrap().as_u64(), Some(0));
        assert_eq!(
            result.get("output").unwrap().as_str(),
            Some("Sweep: {\"grid\":1}")
        );

        // Same body again after the first finished: the batch re-runs
        // (finished entries don't capture duplicates), the handler
        // reports its cells as cache hits and the service accounts
        // them.
        let resp = http::request(&addr, "POST", "/sweep", b"{\"grid\":1}", &mut |_| {}).unwrap();
        let events = parse_events(&resp.body);
        assert_eq!(events[3].get("cache_hits").unwrap().as_u64(), Some(2));

        let resp = http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let summary = worker.join().unwrap();
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.cache_hits, 2);
        assert_eq!(summary.rejected, 0);
        assert!(quiesced.load(Ordering::SeqCst), "drain quiesces the pool");
    }

    #[test]
    fn status_reports_pool_latency_and_unknown_routes_404() {
        let (addr, worker, _q) = start_service();
        let resp = http::request(&addr, "POST", "/analyze", b"{}", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let resp = http::request(&addr, "GET", "/status", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("in_flight").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("workers").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("queued_cells").unwrap().as_u64(), Some(0));
        assert!(matches!(v.get("store_read_only"), Some(Value::Bool(false))));
        let lat = v.get("latency_ms").unwrap();
        assert_eq!(lat.get("samples").unwrap().as_u64(), Some(1));
        assert!(lat.get("p50").unwrap().as_u64().is_some());
        let counters = v.get("counters").unwrap();
        assert_eq!(
            counters.get("serve_requests").unwrap().as_u64(),
            Some(2),
            "the status request itself is counted"
        );
        assert_eq!(counters.get("serve_rejected").unwrap().as_u64(), Some(0));
        assert_eq!(
            counters.get("serve_journal_replayed").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(
            counters.get("serve_resumed_streams").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(
            counters.get("serve_worker_respawns").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(
            counters.get("serve_cells_poisoned").unwrap().as_u64(),
            Some(0)
        );
        let resp = http::request(&addr, "GET", "/nope", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 404);
        let resp = http::request(&addr, "POST", "/sweep", b"not json", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 400);
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        worker.join().unwrap();
    }

    #[test]
    fn shutdown_drains_and_stops_accepting() {
        let (addr, worker, quiesced) = start_service();
        let resp = http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let summary = worker.join().unwrap();
        assert_eq!(summary.requests, 1);
        assert!(quiesced.load(Ordering::SeqCst));
        // The listener is gone: a fresh connection is refused (or at
        // best connects to nothing and sees EOF/reset).
        assert!(http::request(&addr, "GET", "/status", b"", &mut |_| {}).is_err());
    }

    /// A handler whose `run` blocks until `n` requests are inside it
    /// simultaneously — proof the service stopped serialising batches.
    struct RendezvousHandler {
        inside: Mutex<usize>,
        all_in: Condvar,
        n: usize,
    }

    impl Handler for RendezvousHandler {
        fn run(
            &self,
            _kind: RequestKind,
            _body: &Value,
            _token: &str,
            _progress: &mut dyn FnMut(&Value) -> bool,
        ) -> Result<RunResult, HandlerError> {
            let mut inside = self.inside.lock().unwrap();
            *inside += 1;
            if *inside >= self.n {
                self.all_in.notify_all();
            }
            while *inside < self.n {
                let (guard, timeout) = self
                    .all_in
                    .wait_timeout(inside, Duration::from_secs(10))
                    .unwrap();
                inside = guard;
                assert!(
                    !timeout.timed_out(),
                    "batches serialised: peers never arrived"
                );
            }
            drop(inside);
            Ok(RunResult {
                output: "met".into(),
                exit_code: 0,
                cache_hits: 0,
                simulated: 1,
                cancelled: 0,
            })
        }
    }

    #[test]
    fn overlapping_batches_run_concurrently() {
        let svc = Service::bind(
            "127.0.0.1:0",
            Box::new(RendezvousHandler {
                inside: Mutex::new(0),
                all_in: Condvar::new(),
                n: 3,
            }),
        )
        .unwrap();
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        // Identical bodies would attach to one run now, so each client
        // asks a distinct question.
        let clients: Vec<_> = (0..3)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let body = format!("{{\"grid\":{i}}}");
                    http::request(&addr, "POST", "/sweep", body.as_bytes(), &mut |_| {}).unwrap()
                })
            })
            .collect();
        for c in clients {
            let resp = c.join().unwrap();
            assert_eq!(resp.status, 200);
            let events = parse_events(&resp.body);
            assert_eq!(
                events.last().unwrap().get("output").unwrap().as_str(),
                Some("met")
            );
        }
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        let summary = worker.join().unwrap();
        // All three batches overlapped, so at least two of them saw
        // another batch already in flight when they were admitted.
        assert!(summary.queued >= 2, "queued = {}", summary.queued);
    }

    /// A handler that always refuses: the wire side of admission.
    struct RefusingHandler(HandlerError);

    impl Handler for RefusingHandler {
        fn run(
            &self,
            _kind: RequestKind,
            _body: &Value,
            _token: &str,
            _progress: &mut dyn FnMut(&Value) -> bool,
        ) -> Result<RunResult, HandlerError> {
            Err(self.0)
        }
    }

    #[test]
    fn saturated_batches_get_a_typed_503_with_retry_after() {
        let svc = Service::bind(
            "127.0.0.1:0",
            Box::new(RefusingHandler(HandlerError::Saturated {
                queued: 7,
                wanted: 3,
                limit: 8,
            })),
        )
        .unwrap();
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        let resp = http::request(&addr, "POST", "/sweep", b"{}", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("saturated"));
        assert_eq!(v.get("queued").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("wanted").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("limit").unwrap().as_u64(), Some(8));
        // The refusal is visible both live and in the drain summary.
        let resp = http::request(&addr, "GET", "/status", b"", &mut |_| {}).unwrap();
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("serve_rejected")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        let summary = worker.join().unwrap();
        assert_eq!(summary.rejected, 1);
    }

    #[test]
    fn degraded_store_gets_a_503_with_its_retry_hint() {
        let svc = Service::bind(
            "127.0.0.1:0",
            Box::new(RefusingHandler(HandlerError::Unavailable {
                retry_after_secs: 2,
            })),
        )
        .unwrap();
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        let resp = http::request(&addr, "POST", "/sweep", b"{}", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("2"));
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("unavailable"));
        assert!(v
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("read-only"));
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        let summary = worker.join().unwrap();
        assert_eq!(summary.rejected, 1);
    }

    /// A handler that emits `total` events with a small delay — long
    /// enough for a client to vanish mid-stream and resume.
    struct TalkativeHandler {
        total: u64,
    }

    impl Handler for TalkativeHandler {
        fn run(
            &self,
            _kind: RequestKind,
            _body: &Value,
            _token: &str,
            progress: &mut dyn FnMut(&Value) -> bool,
        ) -> Result<RunResult, HandlerError> {
            for done in 1..=self.total {
                progress(&Value::Obj(vec![
                    ("event".into(), Value::str("progress")),
                    ("done".into(), Value::u64(done)),
                    ("total".into(), Value::u64(self.total)),
                ]));
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(RunResult {
                output: "complete".into(),
                exit_code: 0,
                cache_hits: 0,
                simulated: self.total,
                cancelled: 0,
            })
        }
    }

    #[test]
    fn disconnect_detaches_and_resume_replays_the_full_stream() {
        use std::io::Write;
        let svc = Service::bind("127.0.0.1:0", Box::new(TalkativeHandler { total: 10 })).unwrap();
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        {
            // Raw client: send the request, then vanish mid-stream.
            let mut s = TcpStream::connect(&addr).unwrap();
            write!(
                s,
                "POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{{}}"
            )
            .unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(15));
        } // drop = RST/FIN while the handler is still emitting

        // The batch keeps running server-side (detach, not cancel); a
        // resume with the right token replays everything — including
        // the result the disconnected client never saw. `run: 0` can
        // never match a live incarnation, so `have` is ignored.
        let token = resume_token(RequestKind::Sweep, "{}");
        let resume = format!("{{\"token\":\"{token}\",\"have\":3,\"run\":0}}");
        let resp = http::request(&addr, "POST", "/resume", resume.as_bytes(), &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let events = parse_events(&resp.body);
        assert_eq!(events[0].get("event").unwrap().as_str(), Some("accepted"));
        let result = events.last().unwrap();
        assert_eq!(result.get("event").unwrap().as_str(), Some("result"));
        assert_eq!(result.get("output").unwrap().as_str(), Some("complete"));
        assert_eq!(result.get("simulated").unwrap().as_u64(), Some(10));
        assert_eq!(
            events.len(),
            12,
            "handshake + all 10 progress + result, nothing skipped"
        );

        // A matching run id honours `have`: only the tail is re-sent.
        let resume = format!("{{\"token\":\"{token}\",\"have\":8,\"run\":{}}}", run_id());
        let resp = http::request(&addr, "POST", "/resume", resume.as_bytes(), &mut |_| {}).unwrap();
        let events = parse_events(&resp.body);
        assert_eq!(events.len(), 4, "handshake + progress 9, 10 + result");

        // Unknown tokens are a typed 404.
        let resp = http::request(
            &addr,
            "POST",
            "/resume",
            b"{\"token\":\"ffffffffffffffff\",\"have\":0,\"run\":0}",
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(resp.status, 404);
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("unknown-token"));

        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        let summary = worker.join().unwrap();
        assert_eq!(summary.resumed_streams, 2);
        assert_eq!(summary.cancelled_cells, 0, "detach is not cancellation");
    }

    #[test]
    fn identical_live_posts_attach_to_one_run() {
        let svc = Service::bind("127.0.0.1:0", Box::new(TalkativeHandler { total: 30 })).unwrap();
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        let owner = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                http::request(&addr, "POST", "/sweep", b"{\"grid\":9}", &mut |_| {}).unwrap()
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        // Same wire body while the first is still running: one batch,
        // two streams.
        let twin = http::request(&addr, "POST", "/sweep", b"{\"grid\":9}", &mut |_| {}).unwrap();
        let first = owner.join().unwrap();
        for resp in [&first, &twin] {
            let events = parse_events(&resp.body);
            let result = events.last().unwrap();
            assert_eq!(result.get("event").unwrap().as_str(), Some("result"));
            assert_eq!(result.get("simulated").unwrap().as_u64(), Some(30));
        }
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        let summary = worker.join().unwrap();
        assert_eq!(summary.resumed_streams, 1, "the twin attached");
        assert_eq!(summary.queued, 0, "only one batch actually ran");
    }

    #[test]
    fn replay_runs_headless_and_resolves_the_token() {
        let (handler, _q) = MockHandler::new();
        let svc = Service::bind("127.0.0.1:0", Box::new(handler)).unwrap();
        assert!(svc.replay(RequestKind::Sweep, "{\"grid\":7}"));
        assert!(
            !svc.replay(RequestKind::Sweep, "{\"grid\":7}"),
            "a token replays once"
        );
        assert!(!svc.replay(RequestKind::Sweep, "not json"));
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        let token = resume_token(RequestKind::Sweep, "{\"grid\":7}");
        let resume = format!("{{\"token\":\"{token}\",\"have\":0,\"run\":0}}");
        let resp = http::request(&addr, "POST", "/resume", resume.as_bytes(), &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let events = parse_events(&resp.body);
        let result = events.last().unwrap();
        assert_eq!(result.get("event").unwrap().as_str(), Some("result"));
        assert_eq!(
            result.get("output").unwrap().as_str(),
            Some("Sweep: {\"grid\":7}")
        );
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        let summary = worker.join().unwrap();
        assert_eq!(summary.journal_replayed, 1);
        assert_eq!(summary.resumed_streams, 1);
    }

    /// Minimal Prometheus text-exposition parser for the round-trip
    /// test: `name{labels} value` / `name value` samples keyed by the
    /// full series name (labels included), comments and TYPE/HELP
    /// headers collected separately.
    fn parse_prom(text: &str) -> (Vec<(String, f64)>, Vec<String>) {
        let mut samples = Vec::new();
        let mut typed = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.push(rest.to_string());
                continue;
            }
            if line.starts_with('#') || line.trim().is_empty() {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("sample has a value");
            let v: f64 = value.parse().expect("numeric sample value");
            if let Some(brace) = series.find('{') {
                assert!(series.ends_with('}'), "label set closes: {series}");
                let name = &series[..brace];
                assert!(
                    name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                    "metric name is [a-zA-Z0-9_]: {name}"
                );
            } else {
                assert!(
                    series
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '_'),
                    "metric name is [a-zA-Z0-9_]: {series}"
                );
            }
            samples.push((series.to_string(), v));
        }
        (samples, typed)
    }

    fn prom_get(samples: &[(String, f64)], name: &str) -> f64 {
        samples
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .1
    }

    #[test]
    fn metrics_exposition_parses_matches_status_and_stays_monotone() {
        let (addr, worker, _q) = start_service();
        http::request(&addr, "POST", "/sweep", b"{\"grid\":5}", &mut |_| {}).unwrap();
        let scrape = |addr: &str| {
            let resp = http::request(addr, "GET", "/metrics", b"", &mut |_| {}).unwrap();
            assert_eq!(resp.status, 200);
            assert!(resp
                .header("content-type")
                .is_some_and(|ct| ct.starts_with("text/plain")));
            String::from_utf8(resp.body).unwrap()
        };
        let first = scrape(&addr);
        let (samples, typed) = parse_prom(&first);
        // Every declared family has at least one sample, and the
        // histogram is declared as one.
        assert!(typed
            .iter()
            .any(|t| t == "ctcp_request_latency_ms histogram"));
        assert!(typed
            .iter()
            .any(|t| t == "ctcp_serve_requests_total counter"));
        assert!(typed.iter().any(|t| t == "ctcp_workers gauge"));

        // Counters agree with /status (modulo the /status request
        // itself, so compare against a snapshot taken right after).
        let resp = http::request(&addr, "GET", "/status", b"", &mut |_| {}).unwrap();
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let status_requests = v
            .get("counters")
            .unwrap()
            .get("serve_requests")
            .unwrap()
            .as_u64()
            .unwrap();
        let prom_requests = prom_get(&samples, "ctcp_serve_requests_total") as u64;
        // /metrics saw: sweep + itself. /status saw those plus itself.
        assert_eq!(prom_requests + 1, status_requests);
        assert_eq!(prom_get(&samples, "ctcp_workers"), 2.0);
        assert_eq!(prom_get(&samples, "ctcp_store_read_only"), 0.0);

        // Histogram invariants: cumulative buckets end at +Inf == _count,
        // explicit finite le bounds are strictly increasing.
        let mut les: Vec<(f64, f64)> = Vec::new();
        let mut inf = None;
        for (name, v) in &samples {
            if let Some(rest) = name.strip_prefix("ctcp_request_latency_ms_bucket{le=\"") {
                let le = rest.trim_end_matches("\"}");
                if le == "+Inf" {
                    inf = Some(*v);
                } else {
                    les.push((le.parse::<f64>().unwrap(), *v));
                }
            }
        }
        let count = prom_get(&samples, "ctcp_request_latency_ms_count");
        assert_eq!(count, 1.0, "one completed batch observed");
        assert_eq!(inf, Some(count), "+Inf bucket equals _count");
        for w in les.windows(2) {
            assert!(w[0].0 < w[1].0, "le bounds increase");
            assert!(w[0].1 <= w[1].1, "bucket counts are cumulative");
        }
        // The same explicit bounds show up in /status's latency_ms.
        let buckets = v.get("latency_ms").unwrap().get("buckets").unwrap();
        match buckets {
            Value::Arr(items) => {
                assert!(!items.is_empty(), "one observed sample => one bucket");
                for b in items {
                    assert!(b.get("le").is_some() && b.get("count").is_some());
                }
            }
            other => panic!("buckets is an array, got {other:?}"),
        }

        // A second scrape after more work: counters only go up.
        http::request(&addr, "POST", "/sweep", b"{\"grid\":6}", &mut |_| {}).unwrap();
        let (second, _) = parse_prom(&scrape(&addr));
        for (name, v) in &samples {
            if name.ends_with("_total") || name.contains("_bucket{") || name.ends_with("_count") {
                let after = prom_get(&second, name);
                assert!(after >= *v, "{name} went backwards: {v} -> {after}");
            }
        }
        assert!(
            prom_get(&second, "ctcp_serve_requests_total") > prom_requests as f64,
            "request counter advanced"
        );

        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        worker.join().unwrap();
    }

    /// Splits a Chrome trace document (a bare event array, the format
    /// `validate_chrome_trace` checks) into its complete (`X`) events
    /// and checks per-lane monotonicity: within one `tid`, spans never
    /// overlap.
    fn lanes_of(trace: &Value) -> Vec<(u64, Vec<Value>)> {
        let events = trace.as_arr().expect("trace root is an array").to_vec();
        let mut lanes: Vec<(u64, Vec<Value>)> = Vec::new();
        for ev in events {
            if ev.get("ph").and_then(Value::as_str) != Some("X") {
                continue;
            }
            let tid = ev.get("tid").unwrap().as_u64().unwrap();
            match lanes.iter_mut().find(|(t, _)| *t == tid) {
                Some((_, v)) => v.push(ev),
                None => lanes.push((tid, vec![ev])),
            }
        }
        for (tid, spans) in &lanes {
            let mut end = 0u64;
            for sp in spans {
                let ts = sp.get("ts").unwrap().as_u64().unwrap();
                let dur = sp.get("dur").unwrap().as_u64().unwrap();
                assert!(ts >= end, "lane {tid} overlaps: ts {ts} < end {end}");
                assert!(dur >= 1, "spans are visible");
                end = ts + dur;
            }
        }
        lanes
    }

    #[test]
    fn trace_export_has_one_admit_span_and_a_cell_span_per_progress() {
        let (addr, worker, _q) = start_service();
        http::request(&addr, "POST", "/sweep", b"{\"grid\":3}", &mut |_| {}).unwrap();
        let token = resume_token(RequestKind::Sweep, "{\"grid\":3}");
        let resp =
            http::request(&addr, "GET", &format!("/trace/{token}"), b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let text = std::str::from_utf8(&resp.body).unwrap();
        // The export is a loadable Chrome trace by the same validator
        // the simulator's own pipeline traces pass through.
        let summary = ctcp_telemetry::validate_chrome_trace(text).expect("valid chrome trace");
        assert!(summary.spans >= 4 && summary.lanes >= 3);
        let trace = Value::parse(text).unwrap();
        let lanes = lanes_of(&trace);
        let all: Vec<&Value> = lanes.iter().flat_map(|(_, v)| v).collect();
        let named = |n: &str| {
            all.iter()
                .filter(|e| e.get("name").and_then(Value::as_str) == Some(n))
                .count()
        };
        assert_eq!(named("admit"), 1, "exactly one admit span");
        assert_eq!(named("cell cell"), 2, "one span per progress event");
        assert_eq!(named("run sweep"), 1);
        assert_eq!(named("stream"), 1);
        // MockHandler events carry no worker id, so all cells land on
        // worker lane 0 — still a real lane distinct from service's.
        assert!(lanes.iter().any(|(tid, _)| *tid == LANE_SERVICE));
        assert!(lanes.iter().any(|(tid, _)| *tid == LANE_WORKERS));

        // Unknown tokens 404 with a typed body.
        let resp =
            http::request(&addr, "GET", "/trace/ffffffffffffffff", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 404);
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("unknown-token"));

        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        worker.join().unwrap();
    }

    #[test]
    fn trace_survives_disconnect_and_counts_both_streams() {
        use std::io::Write;
        let svc = Service::bind("127.0.0.1:0", Box::new(TalkativeHandler { total: 6 })).unwrap();
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        {
            let mut s = TcpStream::connect(&addr).unwrap();
            write!(
                s,
                "POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{{}}"
            )
            .unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(12));
        } // client vanishes mid-stream; the batch keeps running

        let token = resume_token(RequestKind::Sweep, "{}");
        let resume = format!("{{\"token\":\"{token}\",\"have\":0,\"run\":0}}");
        let resp = http::request(&addr, "POST", "/resume", resume.as_bytes(), &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);

        let resp =
            http::request(&addr, "GET", &format!("/trace/{token}"), b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let trace = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let lanes = lanes_of(&trace);
        let all: Vec<&Value> = lanes.iter().flat_map(|(_, v)| v).collect();
        let named = |n: &str| {
            all.iter()
                .filter(|e| e.get("name").and_then(Value::as_str) == Some(n))
                .count()
        };
        assert_eq!(named("admit"), 1, "disconnect does not re-admit");
        assert_eq!(named("cell cell"), 6, "every cell kept its span");
        assert_eq!(
            named("stream"),
            2,
            "both delivery attempts traced: the aborted partial and the resumed replay"
        );
        assert!(
            lanes.iter().any(|(tid, _)| *tid == LANE_STREAM),
            "stream spans live on their own lane"
        );

        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        worker.join().unwrap();
    }

    /// One cell, reported as having taken 250ms — far over the 1ms
    /// override threshold.
    struct SlowCellHandler;

    impl Handler for SlowCellHandler {
        fn run(
            &self,
            _kind: RequestKind,
            _body: &Value,
            _token: &str,
            progress: &mut dyn FnMut(&Value) -> bool,
        ) -> Result<RunResult, HandlerError> {
            progress(&Value::Obj(vec![
                ("event".into(), Value::str("progress")),
                ("done".into(), Value::u64(1)),
                ("total".into(), Value::u64(1)),
                ("workload".into(), Value::str("slowpoke-gzip")),
                ("took_s".into(), Value::f64(0.25)),
                ("worker".into(), Value::u64(1)),
            ]));
            Ok(RunResult {
                output: "done".into(),
                exit_code: 0,
                cache_hits: 0,
                simulated: 1,
                cancelled: 0,
            })
        }
    }

    #[test]
    fn slow_cells_trip_the_warn_log_under_the_threshold_override() {
        // The env override is read once, at bind; scoped tightly so
        // concurrently-binding tests are unaffected (their cells all
        // report 0ms, which no threshold flags).
        std::env::set_var("CTCP_SLOW_CELL_MS", "1");
        let svc = Service::bind("127.0.0.1:0", Box::new(SlowCellHandler)).unwrap();
        std::env::remove_var("CTCP_SLOW_CELL_MS");
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        let resp = http::request(&addr, "POST", "/sweep", b"{}", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let slow = log::recent()
            .into_iter()
            .find(|r| r.get("msg").and_then(Value::as_str) == Some("slow cell"))
            .expect("a 'slow cell' warn record");
        assert_eq!(
            slow.get("workload").and_then(Value::as_str),
            Some("slowpoke-gzip")
        );
        assert_eq!(slow.get("took_ms").and_then(Value::as_u64), Some(250));
        assert_eq!(slow.get("threshold_ms").and_then(Value::as_u64), Some(1));
        assert_eq!(slow.get("worker").and_then(Value::as_u64), Some(1));
        // The offending cell's span still landed on its worker's lane.
        let token = resume_token(RequestKind::Sweep, "{}");
        let resp =
            http::request(&addr, "GET", &format!("/trace/{token}"), b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let trace = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert!(lanes_of(&trace)
            .iter()
            .any(|(tid, spans)| *tid == LANE_WORKERS + 1 && !spans.is_empty()));
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        worker.join().unwrap();
    }

    #[test]
    fn accept_storm_fail_point_drops_then_serves() {
        let _g = crate::testutil::FAILPOINT_LOCK.lock().unwrap();
        failpoint::set(Some("serve-accept-storm=2"));
        let (addr, worker, _q) = start_service();
        // The first two connections are dropped on the floor; a
        // persistent client's later attempt lands.
        let mut failures = 0;
        let resp = loop {
            match http::request(&addr, "GET", "/status", b"", &mut |_| {}) {
                Ok(resp) => break resp,
                Err(_) => {
                    failures += 1;
                    assert!(failures <= 10, "storm never cleared");
                }
            }
        };
        assert_eq!(resp.status, 200);
        assert!(failures >= 1, "the storm dropped at least one attempt");
        failpoint::set(None);
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        worker.join().unwrap();
    }
}
