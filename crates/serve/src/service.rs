//! The resident sweep service: accept loop, request routing, admission
//! control, crash-safe request registry, counters, and graceful drain.
//!
//! The service itself knows nothing about simulators. It owns a
//! [`Handler`] — the CLI plugs in one wrapping the shared cell
//! scheduler and warm result store from `ctcp-harness` — and routes
//! HTTP requests at it:
//!
//! | request           | behaviour                                          |
//! |-------------------|----------------------------------------------------|
//! | `POST /sweep`     | runs a sweep, streaming NDJSON progress chunks     |
//! | `POST /analyze`   | same, for an attribution analysis                  |
//! | `POST /resume`    | re-attaches to a live or finished batch by token   |
//! | `GET /status`     | in-flight work, pool utilization, latency, counters|
//! | `POST /shutdown`  | begins a graceful drain                            |
//!
//! Batches run *concurrently*: every connection gets its own thread,
//! and the handler is shared by reference (`&self`, `Send + Sync`)
//! rather than serialised behind a mutex. Interleaving is the
//! handler's business — the CLI handler feeds all requests into one
//! fair cell scheduler — while the service handles the wire side of
//! concurrency and of *crash safety*:
//!
//! * **admission**: a handler may refuse a batch before streaming
//!   anything ([`HandlerError::Saturated`] when the queue is over its
//!   bound, [`HandlerError::Unavailable`] while the result store is
//!   degraded to read-only); the service answers with a clean `503`, a
//!   typed JSON body, and a `Retry-After` header so clients can tell
//!   "try later" from a failed run.
//! * **idempotency and resume**: every batch is keyed by a *resume
//!   token* — a hash of the raw wire body ([`resume_token`]) — and its
//!   full event stream is kept in an in-memory registry. The first
//!   chunk of every stream is an `accepted` handshake carrying the
//!   token and the daemon's run id; a client that loses its connection
//!   re-attaches with `POST /resume {"token","have","run"}` and
//!   receives only the events it has not yet seen (all of them when
//!   the run id changed — i.e. the daemon restarted). An identical
//!   `POST /sweep` while the original is still running attaches to the
//!   live batch instead of running it twice.
//! * **disconnects detach, not cancel**: a broken client stream no
//!   longer abandons the batch — it keeps running headless, every
//!   finished cell memoizes, and the registry retains the stream for
//!   the client's reconnect.
//! * **replay**: after a crash, the CLI re-submits journaled
//!   unfinished requests through [`Service::replay`], which runs them
//!   headless — by the time clients reconnect, their tokens resolve.
//! * **drain**: `/shutdown` stops the accept loop, every in-flight
//!   connection thread and replay thread is joined, and then the
//!   handler is [quiesced](Handler::quiesce) so its worker pool runs
//!   every admitted cell to completion before the daemon exits.

use crate::http;
use ctcp_telemetry::json::Value;
use ctcp_telemetry::{failpoint, Counter, Histogram, Metrics};
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// What kind of batch a request asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// A strategy × benchmark sweep (`POST /sweep`).
    Sweep,
    /// A per-strategy attribution analysis (`POST /analyze`).
    Analyze,
}

impl RequestKind {
    /// The wire/journal name of this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Sweep => "sweep",
            RequestKind::Analyze => "analyze",
        }
    }

    /// The inverse of [`as_str`](RequestKind::as_str) — used when
    /// replaying journaled requests.
    pub fn parse(s: &str) -> Option<RequestKind> {
        match s {
            "sweep" => Some(RequestKind::Sweep),
            "analyze" => Some(RequestKind::Analyze),
            _ => None,
        }
    }
}

/// The resume token of a batch: FNV-1a 64 over the request kind and
/// the *raw* wire body. Identical request bytes — from the same client
/// retrying, or a different client asking the same question — map to
/// the same token, which is what makes admission idempotent and crash
/// recovery possible: the journal records the same token the service
/// derives, so a replayed request answers the original token.
pub fn resume_token(kind: RequestKind, raw_body: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in kind.as_str().bytes().chain([b':']).chain(raw_body.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// This daemon incarnation's id, sent in the `accepted` handshake. A
/// resuming client echoes it back; a mismatch means the daemon
/// restarted in between, so the client's event count is meaningless
/// and the stream restarts from the beginning.
fn run_id() -> u64 {
    u64::from(std::process::id())
}

/// What one handled batch produced.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The rendered output, byte-identical to the one-shot CLI's.
    pub output: String,
    /// The exit code the one-shot CLI would have returned.
    pub exit_code: i32,
    /// Cells answered from the warm shared cache.
    pub cache_hits: u64,
    /// Cells actually simulated.
    pub simulated: u64,
    /// Queued cells dropped before they ran (drain).
    pub cancelled: u64,
}

/// Why a handler refused to run a batch at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerError {
    /// Admission control: the shared queue is over its configured
    /// bound. Nothing was streamed; the service answers `503` with
    /// these numbers in a typed JSON body.
    Saturated {
        /// Cells already queued when the request arrived.
        queued: usize,
        /// Cells this request wanted to add.
        wanted: usize,
        /// The configured queue bound.
        limit: usize,
    },
    /// The backend is degraded — typically the result store went
    /// read-only after a write failure — and new batches would run
    /// without memoizing. The service answers `503` with a
    /// `Retry-After` header; the store re-probes the disk on its own
    /// and admission recovers when it does.
    Unavailable {
        /// How long, in seconds, the client should wait before
        /// retrying.
        retry_after_secs: u64,
    },
}

impl HandlerError {
    /// The `Retry-After` value, in seconds, for the `503` response.
    fn retry_after_secs(self) -> u64 {
        match self {
            HandlerError::Saturated { .. } => 1,
            HandlerError::Unavailable { retry_after_secs } => retry_after_secs.max(1),
        }
    }

    /// The `error` field of the typed `503` body.
    fn name(self) -> &'static str {
        match self {
            HandlerError::Saturated { .. } => "saturated",
            HandlerError::Unavailable { .. } => "unavailable",
        }
    }
}

impl std::fmt::Display for HandlerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandlerError::Saturated {
                queued,
                wanted,
                limit,
            } => write!(
                f,
                "saturated: {queued} cells queued + {wanted} requested > limit {limit}"
            ),
            HandlerError::Unavailable { retry_after_secs } => write!(
                f,
                "unavailable: result store is read-only after a write failure; \
                 retry in {retry_after_secs}s"
            ),
        }
    }
}

/// A point-in-time snapshot of the handler's execution backend,
/// surfaced verbatim by `/status`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HandlerStats {
    /// Resident worker threads in the shared pool.
    pub workers: usize,
    /// Cells queued and not yet picked up by a worker.
    pub queued_cells: usize,
    /// Cells currently executing on a worker.
    pub running_cells: usize,
    /// Queued cells dropped before running, cumulative.
    pub cancelled_cells: u64,
    /// Worker threads respawned after a panic, cumulative.
    pub respawns: u64,
    /// Cells quarantined after repeated worker panics, cumulative.
    pub poisoned: u64,
    /// True while the result store is degraded to read-only.
    pub read_only: bool,
}

/// The execution backend behind the service — implemented by the CLI
/// around the shared cell scheduler, mocked in tests.
///
/// `run` takes `&self` and the trait requires `Send + Sync`: the
/// service calls it from many connection threads at once, so
/// implementations own their interior synchronisation (the CLI handler
/// builds a fresh per-request harness around shared `Clone` handles).
pub trait Handler: Send + Sync {
    /// Runs the batch described by `body` (a parsed JSON object),
    /// emitting progress events through `progress` as cells finish.
    /// `token` is the batch's resume token — a journaling handler
    /// records it so the request can be replayed after a crash.
    ///
    /// The callback's return value reports whether a client is still
    /// attached; the service keeps detached batches running (their
    /// events are retained for resume), so handlers should treat
    /// `false` as advisory, not as a cancellation order.
    /// A malformed body should come back as an `Ok` result with a
    /// non-zero `exit_code` and the parse error as `output`; `Err` is
    /// reserved for refusing to run at all.
    ///
    /// # Errors
    ///
    /// [`HandlerError::Saturated`] when admission control refuses the
    /// batch, [`HandlerError::Unavailable`] while the backend is
    /// degraded — both guaranteed to happen before any progress is
    /// emitted.
    fn run(
        &self,
        kind: RequestKind,
        body: &Value,
        token: &str,
        progress: &mut dyn FnMut(&Value) -> bool,
    ) -> Result<RunResult, HandlerError>;

    /// A live snapshot of the execution backend for `/status`.
    fn stats(&self) -> HandlerStats {
        HandlerStats::default()
    }

    /// Quiesces the backend at the end of a drain: stop admitting,
    /// run every already-admitted cell to completion, release workers.
    /// Called once, after all connection threads have been joined.
    fn quiesce(&self) {}
}

/// Counter totals for one service lifetime, reported when the drain
/// completes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServiceSummary {
    /// Requests accepted (all routes).
    pub requests: u64,
    /// Batch requests that overlapped another in-flight batch (the
    /// concurrency the shared scheduler interleaved).
    pub queued: u64,
    /// Sweep cells answered from the warm shared cache.
    pub cache_hits: u64,
    /// Batch requests refused by admission control (`503`).
    pub rejected: u64,
    /// Queued cells dropped before they ran.
    pub cancelled_cells: u64,
    /// Journaled requests replayed headless after a restart.
    pub journal_replayed: u64,
    /// Streams re-attached to an existing batch (`/resume`, or an
    /// idempotent duplicate `POST` joining a live run).
    pub resumed_streams: u64,
    /// Worker threads respawned after a panic.
    pub respawns: u64,
    /// Cells quarantined after repeated worker panics.
    pub poisoned: u64,
}

/// One admitted batch's replayable state: every event line it has
/// emitted (progress and the final result), and whether it finished.
/// Readers — the owning connection, `/resume` attachments, duplicate
/// `POST`s — stream the log and park on the condvar for more.
struct RequestEntry {
    state: Mutex<EntryState>,
    grew: Condvar,
}

struct EntryState {
    /// Rendered NDJSON lines, in emission order, `\n`-terminated.
    events: Vec<String>,
    /// Set once, after the final `result` (or `error`) line.
    done: bool,
}

impl RequestEntry {
    fn new() -> RequestEntry {
        RequestEntry {
            state: Mutex::new(EntryState {
                events: Vec::new(),
                done: false,
            }),
            grew: Condvar::new(),
        }
    }

    fn push(&self, line: String) {
        relock(&self.state).events.push(line);
        self.grew.notify_all();
    }

    fn finish(&self) {
        relock(&self.state).done = true;
        self.grew.notify_all();
    }

    fn is_done(&self) -> bool {
        relock(&self.state).done
    }

    /// Blocks until there are events past index `from` (or the entry
    /// is done), then returns them along with the done flag.
    fn wait_past(&self, from: usize) -> (Vec<String>, bool) {
        let mut st = relock(&self.state);
        loop {
            if st.events.len() > from || st.done {
                let at = from.min(st.events.len());
                return (st.events[at..].to_vec(), st.done);
            }
            st = self
                .grew
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

struct Inner {
    handler: Box<dyn Handler>,
    metrics: Mutex<Metrics>,
    /// Completed-batch latency, bucketed as `log2(ms + 1)` so the
    /// fixed 33-bucket histogram spans sub-millisecond cache hits to
    /// multi-hour sweeps.
    latency: Mutex<Histogram>,
    /// Every batch this incarnation has admitted, live and finished,
    /// keyed by resume token. Finished entries are kept so a client
    /// that reconnects after its batch completed still gets the full
    /// stream; the map is bounded by requests-per-daemon-lifetime.
    registry: Mutex<HashMap<String, Arc<RequestEntry>>>,
    /// Headless replay threads started by [`Service::replay`], joined
    /// during the drain so no journaled batch is ever abandoned twice.
    replays: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Batch requests currently being handled (admitted or not-yet-
    /// admitted; excludes `/status` and `/shutdown`).
    in_flight: AtomicUsize,
    /// Set by `/shutdown`; the accept loop stops taking connections.
    draining: AtomicBool,
    addr: SocketAddr,
}

/// Mutex access that survives a poisoned lock: a panicking batch must
/// not wedge the whole daemon.
fn relock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A bound, not-yet-running sweep service.
pub struct Service {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Service {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// wires `handler` behind it. The listener is live — connections
    /// queue in the OS backlog — but nothing is served until
    /// [`run`](Service::run).
    ///
    /// # Errors
    ///
    /// Bind failures (address in use, permission).
    pub fn bind(addr: &str, handler: Box<dyn Handler>) -> io::Result<Service> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Service {
            listener,
            inner: Arc::new(Inner {
                handler,
                metrics: Mutex::new(Metrics::new()),
                latency: Mutex::new(Histogram::default()),
                registry: Mutex::new(HashMap::new()),
                replays: Mutex::new(Vec::new()),
                in_flight: AtomicUsize::new(0),
                draining: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address — the actual port when bound to port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Re-runs a journaled request headless — no socket, events into
    /// the registry — so a client that reconnects after a daemon crash
    /// finds its token live (or finished) instead of unknown. Called
    /// by the CLI before [`run`](Service::run) for every unfinished
    /// request the journal replays. Returns `false` (and does nothing)
    /// when the body no longer parses or the token is already
    /// registered.
    pub fn replay(&self, kind: RequestKind, raw_body: &str) -> bool {
        let Ok(body) = Value::parse(raw_body) else {
            return false;
        };
        let token = resume_token(kind, raw_body);
        let entry = Arc::new(RequestEntry::new());
        {
            let mut reg = relock(&self.inner.registry);
            if reg.contains_key(&token) {
                return false;
            }
            reg.insert(token.clone(), Arc::clone(&entry));
        }
        relock(&self.inner.metrics).add(Counter::ServeJournalReplayed, 1);
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::spawn(move || {
            let _ = execute_entry(&inner, kind, &body, &token, &entry, None);
        });
        relock(&self.inner.replays).push(handle);
        true
    }

    /// Serves until a `/shutdown` request, then drains: the accept
    /// loop stops, every in-flight connection thread and replay thread
    /// is joined (their batches run to completion), the handler is
    /// quiesced, and the counter totals are returned.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop failures only; per-connection errors (a peer
    /// hanging up mid-stream) are contained in that connection's
    /// thread.
    pub fn run(self) -> io::Result<ServiceSummary> {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        // `serve-accept-storm=N` drops the first N connections on the
        // floor — the reconnect-herd chaos the client backoff absorbs.
        let mut storm_dropped: u64 = 0;
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.inner.draining.load(Ordering::Acquire) {
                break;
            }
            if let Some(n) = failpoint::arg("serve-accept-storm") {
                if storm_dropped < n.parse().unwrap_or(0) {
                    storm_dropped += 1;
                    drop(stream);
                    continue;
                }
            }
            let inner = Arc::clone(&self.inner);
            workers.push(std::thread::spawn(move || {
                let _ = handle_connection(stream, &inner);
            }));
            // Reap finished threads so a long-lived daemon does not
            // accumulate one handle per connection ever served.
            let (done, running) = workers.into_iter().partition(|w| w.is_finished());
            workers = running;
            for w in done {
                let _ = w.join();
            }
        }
        // Graceful drain: in-flight batches finish (and memoize) even
        // though no new connections are accepted — then the handler's
        // own pool is quiesced, so no admitted cell is ever lost.
        for w in workers {
            let _ = w.join();
        }
        for r in std::mem::take(&mut *relock(&self.inner.replays)) {
            let _ = r.join();
        }
        let hs = self.inner.handler.stats();
        self.inner.handler.quiesce();
        let m = relock(&self.inner.metrics);
        Ok(ServiceSummary {
            requests: m.get(Counter::ServeRequests),
            queued: m.get(Counter::ServeQueued),
            cache_hits: m.get(Counter::ServeCacheHits),
            rejected: m.get(Counter::ServeRejected),
            cancelled_cells: m.get(Counter::ServeCancelledCells),
            journal_replayed: m.get(Counter::ServeJournalReplayed),
            resumed_streams: m.get(Counter::ServeResumedStreams),
            respawns: hs.respawns,
            poisoned: hs.poisoned,
        })
    }
}

fn handle_connection(stream: TcpStream, inner: &Inner) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let req = match http::read_request(&mut reader) {
        Ok(Some(req)) => req,
        Ok(None) => return Ok(()), // connected and left
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return http::write_response(&mut out, 400, "text/plain", e.to_string().as_bytes());
        }
        Err(e) => return Err(e),
    };
    relock(&inner.metrics).add(Counter::ServeRequests, 1);
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/sweep") => run_batch(RequestKind::Sweep, &req, &mut out, inner),
        ("POST", "/analyze") => run_batch(RequestKind::Analyze, &req, &mut out, inner),
        ("POST", "/resume") => resume(&req, &mut out, inner),
        ("GET", "/status") => status(&mut out, inner),
        ("POST", "/shutdown") => shutdown(&mut out, inner),
        _ => http::write_response(&mut out, 404, "text/plain", b"unknown route"),
    }
}

/// Decrements the in-flight gauge however the batch ends (result,
/// rejection, panic in the handler, broken pipe).
struct InFlight<'a>(&'a AtomicUsize);

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The first chunk of every batch stream: the resume handshake. Not
/// recorded in the entry log — each attachment gets its own, and
/// clients count delivered events from the line after it.
fn accepted_line(token: &str) -> String {
    let mut line = Value::Obj(vec![
        ("event".into(), Value::str("accepted")),
        ("token".into(), Value::str(token)),
        ("run".into(), Value::u64(run_id())),
    ])
    .render();
    line.push('\n');
    line
}

/// Runs the batch through the handler on the current thread, recording
/// every event line (and the final `result` line) in `entry`, and
/// mirroring each to `sink` while it keeps accepting them — `sink`
/// returning `false` detaches the stream but never stops the batch.
/// Refusals remove the entry from the registry (a later retry runs
/// fresh) and mark it done with a terminal `error` line so attached
/// streams end instead of hanging; a panicking handler yields a
/// terminal `result` line with exit code 70 and the daemon survives.
fn execute_entry(
    inner: &Inner,
    kind: RequestKind,
    body: &Value,
    token: &str,
    entry: &RequestEntry,
    mut sink: Option<&mut dyn FnMut(&str) -> bool>,
) -> Result<(), HandlerError> {
    fn emit(
        entry: &RequestEntry,
        line: String,
        sink: &mut Option<&mut dyn FnMut(&str) -> bool>,
        attached: &mut bool,
    ) {
        entry.push(line.clone());
        if *attached {
            if let Some(s) = sink.as_mut() {
                *attached = s(&line);
            }
        }
    }

    let started = Instant::now();
    let mut attached = true;
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        inner.handler.run(kind, body, token, &mut |event| {
            let mut line = event.render();
            line.push('\n');
            emit(entry, line, &mut sink, &mut attached);
            true
        })
    }));
    let result = match outcome {
        Ok(Ok(result)) => result,
        Ok(Err(refusal)) => {
            relock(&inner.metrics).add(Counter::ServeRejected, 1);
            relock(&inner.registry).remove(token);
            let mut line = Value::Obj(vec![
                ("event".into(), Value::str("error")),
                ("error".into(), Value::str(refusal.name())),
                ("message".into(), Value::str(&refusal.to_string())),
            ])
            .render();
            line.push('\n');
            entry.push(line);
            entry.finish();
            return Err(refusal);
        }
        Err(_) => {
            // The handler panicked mid-batch. The daemon survives; the
            // batch gets a terminal result so no stream hangs on it.
            RunResult {
                output: "internal error: batch panicked".into(),
                exit_code: 70,
                cache_hits: 0,
                simulated: 0,
                cancelled: 0,
            }
        }
    };

    {
        let mut m = relock(&inner.metrics);
        m.add(Counter::ServeCacheHits, result.cache_hits);
        m.add(Counter::ServeCancelledCells, result.cancelled);
    }
    let ms = started.elapsed().as_millis() as u64;
    relock(&inner.latency).observe((ms + 1).ilog2() as u64);

    let mut line = Value::Obj(vec![
        ("event".into(), Value::str("result")),
        (
            "exit_code".into(),
            Value::u64(result.exit_code.unsigned_abs().into()),
        ),
        ("cache_hits".into(), Value::u64(result.cache_hits)),
        ("simulated".into(), Value::u64(result.simulated)),
        ("cancelled".into(), Value::u64(result.cancelled)),
        ("output".into(), Value::str(&result.output)),
    ])
    .render();
    line.push('\n');
    emit(entry, line, &mut sink, &mut attached);
    entry.finish();
    Ok(())
}

fn run_batch(
    kind: RequestKind,
    req: &http::Request,
    out: &mut TcpStream,
    inner: &Inner,
) -> io::Result<()> {
    let Some(raw) = req.body_str() else {
        return http::write_response(out, 400, "text/plain", b"body is not valid JSON");
    };
    let Ok(body) = Value::parse(raw) else {
        return http::write_response(out, 400, "text/plain", b"body is not valid JSON");
    };
    let token = resume_token(kind, raw);

    // Idempotent admission: an identical request already running (same
    // kind, same raw body, so same token) is attached to, not re-run.
    // Finished entries do not capture duplicates — re-asking a settled
    // question runs fresh (and answers warm from the store anyway).
    let entry = {
        let mut reg = relock(&inner.registry);
        match reg.get(&token) {
            Some(live) if !live.is_done() => {
                let live = Arc::clone(live);
                drop(reg);
                relock(&inner.metrics).add(Counter::ServeResumedStreams, 1);
                return stream_entry(out, &live, &token, 0);
            }
            _ => {
                let entry = Arc::new(RequestEntry::new());
                reg.insert(token.clone(), Arc::clone(&entry));
                entry
            }
        }
    };

    if inner.in_flight.fetch_add(1, Ordering::SeqCst) > 0 {
        // Another batch is already running: this one rides the shared
        // pool concurrently instead of waiting its turn.
        relock(&inner.metrics).add(Counter::ServeQueued, 1);
    }
    let _gauge = InFlight(&inner.in_flight);

    // The chunked stream starts lazily, on the first event: a batch
    // refused by admission control streams nothing, so it can still
    // be answered with a clean fixed-length 503. The first chunk of a
    // started stream is the `accepted` resume handshake.
    let mut writer: Option<http::ChunkedWriter<TcpStream>> = None;
    let refusal = {
        let mut sink = |line: &str| -> bool {
            let w = match writer.as_mut() {
                Some(w) => w,
                None => match out
                    .try_clone()
                    .and_then(|s| http::ChunkedWriter::start(s, 200, "application/x-ndjson"))
                {
                    Ok(mut w) => {
                        if w.chunk(accepted_line(&token).as_bytes()).is_err() {
                            return false;
                        }
                        writer.insert(w)
                    }
                    Err(_) => return false,
                },
            };
            // A failed write detaches this client; the batch keeps
            // running and the registry keeps its stream for a resume.
            w.chunk(line.as_bytes()).is_ok()
        };
        execute_entry(inner, kind, &body, &token, &entry, Some(&mut sink))
    };

    if let Err(e) = refusal {
        debug_assert!(writer.is_none(), "admission precedes streaming");
        let retry_after = e.retry_after_secs().to_string();
        let mut fields = vec![
            ("error".into(), Value::str(e.name())),
            ("message".into(), Value::str(&e.to_string())),
        ];
        if let HandlerError::Saturated {
            queued,
            wanted,
            limit,
        } = e
        {
            fields.push(("queued".into(), Value::u64(queued as u64)));
            fields.push(("wanted".into(), Value::u64(wanted as u64)));
            fields.push(("limit".into(), Value::u64(limit as u64)));
        }
        let body = Value::Obj(fields).render();
        return http::write_response_with(
            out,
            503,
            "application/json",
            &[("Retry-After", &retry_after)],
            body.as_bytes(),
        );
    }
    match writer {
        Some(w) => w.finish(),
        // The client detached before the stream ever started (or the
        // start itself failed); nothing left to say on this socket.
        None => Ok(()),
    }
}

/// Streams `entry` to `out` from event index `from`: the `accepted`
/// handshake, every already-recorded event past `from`, then live
/// events as the batch emits them, until the entry is done.
fn stream_entry(
    out: &mut TcpStream,
    entry: &RequestEntry,
    token: &str,
    from: usize,
) -> io::Result<()> {
    let mut w = http::ChunkedWriter::start(out.try_clone()?, 200, "application/x-ndjson")?;
    w.chunk(accepted_line(token).as_bytes())?;
    let mut at = from;
    loop {
        let (events, done) = entry.wait_past(at);
        for line in &events {
            w.chunk(line.as_bytes())?;
        }
        at += events.len();
        if done {
            break;
        }
    }
    w.finish()
}

/// `POST /resume {"token": "...", "have": N, "run": R}` — re-attaches
/// to a batch by resume token, skipping the `N` events the client
/// already received from daemon incarnation `R` (all events are
/// re-sent when `R` is not this incarnation). Unknown tokens get a
/// typed `404` — the client falls back to re-POSTing the original
/// request.
fn resume(req: &http::Request, out: &mut TcpStream, inner: &Inner) -> io::Result<()> {
    let body = match req.body_str().map(Value::parse) {
        Some(Ok(v)) => v,
        _ => return http::write_response(out, 400, "text/plain", b"body is not valid JSON"),
    };
    let Some(token) = body.get("token").and_then(Value::as_str).map(String::from) else {
        return http::write_response(out, 400, "text/plain", b"resume body needs a token");
    };
    let have = body.get("have").and_then(Value::as_u64).unwrap_or(0) as usize;
    let run = body.get("run").and_then(Value::as_u64).unwrap_or(0);
    let entry = relock(&inner.registry).get(&token).map(Arc::clone);
    let Some(entry) = entry else {
        let body = Value::Obj(vec![
            ("error".into(), Value::str("unknown-token")),
            ("token".into(), Value::str(&token)),
        ])
        .render();
        return http::write_response(out, 404, "application/json", body.as_bytes());
    };
    let from = if run == run_id() { have } else { 0 };
    relock(&inner.metrics).add(Counter::ServeResumedStreams, 1);
    stream_entry(out, &entry, &token, from)
}

/// The lower bound, in milliseconds, of latency bucket `i` (the
/// inverse of the `log2(ms + 1)` bucketing in [`run_batch`]).
fn bucket_ms(i: u64) -> u64 {
    (1u64 << i.min(62)) - 1
}

fn status(out: &mut TcpStream, inner: &Inner) -> io::Result<()> {
    // Nothing here waits on a batch: the gauges are atomics, the
    // handler snapshot reads its scheduler's atomics, and the two
    // mutexes are only ever held for micro-ops.
    let hs = inner.handler.stats();
    let in_flight = inner.in_flight.load(Ordering::SeqCst) as u64;
    let utilization = if hs.workers == 0 {
        0.0
    } else {
        hs.running_cells as f64 / hs.workers as f64
    };
    let lat = relock(&inner.latency).clone();
    let m = relock(&inner.metrics);
    let mut counters: Vec<(String, Value)> = [
        Counter::ServeRequests,
        Counter::ServeQueued,
        Counter::ServeCacheHits,
        Counter::ServeRejected,
        Counter::ServeCancelledCells,
        Counter::ServeJournalReplayed,
        Counter::ServeResumedStreams,
    ]
    .iter()
    .map(|&c| (c.name().to_string(), Value::u64(m.get(c))))
    .collect();
    // The supervision counters live in the handler's scheduler, not in
    // the service's metrics — surfaced here under their Counter names
    // so `/status` is the one place to read robustness state.
    counters.push((
        Counter::ServeWorkerRespawns.name().to_string(),
        Value::u64(hs.respawns),
    ));
    counters.push((
        Counter::ServeCellsPoisoned.name().to_string(),
        Value::u64(hs.poisoned),
    ));
    let body = Value::Obj(vec![
        ("status".into(), Value::str("ok")),
        ("in_flight".into(), Value::u64(in_flight)),
        ("workers".into(), Value::u64(hs.workers as u64)),
        ("queued_cells".into(), Value::u64(hs.queued_cells as u64)),
        ("running_cells".into(), Value::u64(hs.running_cells as u64)),
        ("worker_utilization".into(), Value::f64(utilization)),
        ("cancelled_cells".into(), Value::u64(hs.cancelled_cells)),
        ("store_read_only".into(), Value::Bool(hs.read_only)),
        (
            "latency_ms".into(),
            Value::Obj(vec![
                ("samples".into(), Value::u64(lat.total)),
                ("p50".into(), Value::u64(bucket_ms(lat.percentile(50.0)))),
                ("p95".into(), Value::u64(bucket_ms(lat.percentile(95.0)))),
                ("p99".into(), Value::u64(bucket_ms(lat.percentile(99.0)))),
            ]),
        ),
        ("counters".into(), Value::Obj(counters)),
    ])
    .render();
    drop(m);
    http::write_response(out, 200, "application/json", body.as_bytes())
}

fn shutdown(out: &mut TcpStream, inner: &Inner) -> io::Result<()> {
    http::write_response(out, 200, "application/json", b"{\"draining\":true}")?;
    inner.draining.store(true, Ordering::Release);
    // The accept loop is blocked in accept(); poke it awake so it can
    // observe the flag and begin the drain.
    let _ = TcpStream::connect(inner.addr);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A handler that "runs" a two-cell batch instantly, echoing the
    /// request back and reporting one cache hit per prior run of the
    /// same body — enough to exercise streaming, concurrency and
    /// drain.
    struct MockHandler {
        seen: Mutex<Vec<String>>,
        quiesced: Arc<AtomicBool>,
    }

    impl MockHandler {
        fn new() -> (MockHandler, Arc<AtomicBool>) {
            let quiesced = Arc::new(AtomicBool::new(false));
            (
                MockHandler {
                    seen: Mutex::new(Vec::new()),
                    quiesced: Arc::clone(&quiesced),
                },
                quiesced,
            )
        }
    }

    impl Handler for MockHandler {
        fn run(
            &self,
            kind: RequestKind,
            body: &Value,
            _token: &str,
            progress: &mut dyn FnMut(&Value) -> bool,
        ) -> Result<RunResult, HandlerError> {
            let rendered = body.render();
            let hits = {
                let mut seen = self.seen.lock().unwrap();
                let hits = seen.iter().filter(|b| **b == rendered).count() as u64;
                seen.push(rendered.clone());
                hits
            };
            for done in 1..=2u64 {
                progress(&Value::Obj(vec![
                    ("event".into(), Value::str("progress")),
                    ("done".into(), Value::u64(done)),
                    ("total".into(), Value::u64(2)),
                ]));
            }
            Ok(RunResult {
                output: format!("{kind:?}: {rendered}"),
                exit_code: 0,
                cache_hits: hits * 2,
                simulated: 2 - hits.min(2),
                cancelled: 0,
            })
        }

        fn stats(&self) -> HandlerStats {
            HandlerStats {
                workers: 2,
                ..HandlerStats::default()
            }
        }

        fn quiesce(&self) {
            self.quiesced.store(true, Ordering::SeqCst);
        }
    }

    fn start_service() -> (
        String,
        std::thread::JoinHandle<ServiceSummary>,
        Arc<AtomicBool>,
    ) {
        let (handler, quiesced) = MockHandler::new();
        let svc = Service::bind("127.0.0.1:0", Box::new(handler)).expect("bind ephemeral port");
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        (addr, worker, quiesced)
    }

    fn parse_events(body: &[u8]) -> Vec<Value> {
        std::str::from_utf8(body)
            .unwrap()
            .lines()
            .map(|l| Value::parse(l).expect("each line is JSON"))
            .collect()
    }

    #[test]
    fn sweep_streams_handshake_progress_then_result() {
        let (addr, worker, quiesced) = start_service();
        let mut chunks = 0usize;
        let resp = http::request(&addr, "POST", "/sweep", b"{\"grid\":1}", &mut |_| {
            chunks += 1
        })
        .unwrap();
        assert_eq!(resp.status, 200);
        assert!(chunks >= 4, "handshake + 2 progress + 1 result");
        let events = parse_events(&resp.body);
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].get("event").unwrap().as_str(), Some("accepted"));
        assert_eq!(
            events[0].get("token").unwrap().as_str(),
            Some(resume_token(RequestKind::Sweep, "{\"grid\":1}").as_str())
        );
        assert_eq!(events[0].get("run").unwrap().as_u64(), Some(run_id()));
        assert_eq!(events[1].get("event").unwrap().as_str(), Some("progress"));
        let result = &events[3];
        assert_eq!(result.get("event").unwrap().as_str(), Some("result"));
        assert_eq!(result.get("exit_code").unwrap().as_u64(), Some(0));
        assert_eq!(
            result.get("output").unwrap().as_str(),
            Some("Sweep: {\"grid\":1}")
        );

        // Same body again after the first finished: the batch re-runs
        // (finished entries don't capture duplicates), the handler
        // reports its cells as cache hits and the service accounts
        // them.
        let resp = http::request(&addr, "POST", "/sweep", b"{\"grid\":1}", &mut |_| {}).unwrap();
        let events = parse_events(&resp.body);
        assert_eq!(events[3].get("cache_hits").unwrap().as_u64(), Some(2));

        let resp = http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let summary = worker.join().unwrap();
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.cache_hits, 2);
        assert_eq!(summary.rejected, 0);
        assert!(quiesced.load(Ordering::SeqCst), "drain quiesces the pool");
    }

    #[test]
    fn status_reports_pool_latency_and_unknown_routes_404() {
        let (addr, worker, _q) = start_service();
        let resp = http::request(&addr, "POST", "/analyze", b"{}", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let resp = http::request(&addr, "GET", "/status", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("in_flight").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("workers").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("queued_cells").unwrap().as_u64(), Some(0));
        assert!(matches!(v.get("store_read_only"), Some(Value::Bool(false))));
        let lat = v.get("latency_ms").unwrap();
        assert_eq!(lat.get("samples").unwrap().as_u64(), Some(1));
        assert!(lat.get("p50").unwrap().as_u64().is_some());
        let counters = v.get("counters").unwrap();
        assert_eq!(
            counters.get("serve_requests").unwrap().as_u64(),
            Some(2),
            "the status request itself is counted"
        );
        assert_eq!(counters.get("serve_rejected").unwrap().as_u64(), Some(0));
        assert_eq!(
            counters.get("serve_journal_replayed").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(
            counters.get("serve_resumed_streams").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(
            counters.get("serve_worker_respawns").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(
            counters.get("serve_cells_poisoned").unwrap().as_u64(),
            Some(0)
        );
        let resp = http::request(&addr, "GET", "/nope", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 404);
        let resp = http::request(&addr, "POST", "/sweep", b"not json", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 400);
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        worker.join().unwrap();
    }

    #[test]
    fn shutdown_drains_and_stops_accepting() {
        let (addr, worker, quiesced) = start_service();
        let resp = http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let summary = worker.join().unwrap();
        assert_eq!(summary.requests, 1);
        assert!(quiesced.load(Ordering::SeqCst));
        // The listener is gone: a fresh connection is refused (or at
        // best connects to nothing and sees EOF/reset).
        assert!(http::request(&addr, "GET", "/status", b"", &mut |_| {}).is_err());
    }

    /// A handler whose `run` blocks until `n` requests are inside it
    /// simultaneously — proof the service stopped serialising batches.
    struct RendezvousHandler {
        inside: Mutex<usize>,
        all_in: Condvar,
        n: usize,
    }

    impl Handler for RendezvousHandler {
        fn run(
            &self,
            _kind: RequestKind,
            _body: &Value,
            _token: &str,
            _progress: &mut dyn FnMut(&Value) -> bool,
        ) -> Result<RunResult, HandlerError> {
            let mut inside = self.inside.lock().unwrap();
            *inside += 1;
            if *inside >= self.n {
                self.all_in.notify_all();
            }
            while *inside < self.n {
                let (guard, timeout) = self
                    .all_in
                    .wait_timeout(inside, Duration::from_secs(10))
                    .unwrap();
                inside = guard;
                assert!(
                    !timeout.timed_out(),
                    "batches serialised: peers never arrived"
                );
            }
            drop(inside);
            Ok(RunResult {
                output: "met".into(),
                exit_code: 0,
                cache_hits: 0,
                simulated: 1,
                cancelled: 0,
            })
        }
    }

    #[test]
    fn overlapping_batches_run_concurrently() {
        let svc = Service::bind(
            "127.0.0.1:0",
            Box::new(RendezvousHandler {
                inside: Mutex::new(0),
                all_in: Condvar::new(),
                n: 3,
            }),
        )
        .unwrap();
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        // Identical bodies would attach to one run now, so each client
        // asks a distinct question.
        let clients: Vec<_> = (0..3)
            .map(|i| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let body = format!("{{\"grid\":{i}}}");
                    http::request(&addr, "POST", "/sweep", body.as_bytes(), &mut |_| {}).unwrap()
                })
            })
            .collect();
        for c in clients {
            let resp = c.join().unwrap();
            assert_eq!(resp.status, 200);
            let events = parse_events(&resp.body);
            assert_eq!(
                events.last().unwrap().get("output").unwrap().as_str(),
                Some("met")
            );
        }
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        let summary = worker.join().unwrap();
        // All three batches overlapped, so at least two of them saw
        // another batch already in flight when they were admitted.
        assert!(summary.queued >= 2, "queued = {}", summary.queued);
    }

    /// A handler that always refuses: the wire side of admission.
    struct RefusingHandler(HandlerError);

    impl Handler for RefusingHandler {
        fn run(
            &self,
            _kind: RequestKind,
            _body: &Value,
            _token: &str,
            _progress: &mut dyn FnMut(&Value) -> bool,
        ) -> Result<RunResult, HandlerError> {
            Err(self.0)
        }
    }

    #[test]
    fn saturated_batches_get_a_typed_503_with_retry_after() {
        let svc = Service::bind(
            "127.0.0.1:0",
            Box::new(RefusingHandler(HandlerError::Saturated {
                queued: 7,
                wanted: 3,
                limit: 8,
            })),
        )
        .unwrap();
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        let resp = http::request(&addr, "POST", "/sweep", b"{}", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("saturated"));
        assert_eq!(v.get("queued").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("wanted").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("limit").unwrap().as_u64(), Some(8));
        // The refusal is visible both live and in the drain summary.
        let resp = http::request(&addr, "GET", "/status", b"", &mut |_| {}).unwrap();
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("serve_rejected")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        let summary = worker.join().unwrap();
        assert_eq!(summary.rejected, 1);
    }

    #[test]
    fn degraded_store_gets_a_503_with_its_retry_hint() {
        let svc = Service::bind(
            "127.0.0.1:0",
            Box::new(RefusingHandler(HandlerError::Unavailable {
                retry_after_secs: 2,
            })),
        )
        .unwrap();
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        let resp = http::request(&addr, "POST", "/sweep", b"{}", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("2"));
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("unavailable"));
        assert!(v
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("read-only"));
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        let summary = worker.join().unwrap();
        assert_eq!(summary.rejected, 1);
    }

    /// A handler that emits `total` events with a small delay — long
    /// enough for a client to vanish mid-stream and resume.
    struct TalkativeHandler {
        total: u64,
    }

    impl Handler for TalkativeHandler {
        fn run(
            &self,
            _kind: RequestKind,
            _body: &Value,
            _token: &str,
            progress: &mut dyn FnMut(&Value) -> bool,
        ) -> Result<RunResult, HandlerError> {
            for done in 1..=self.total {
                progress(&Value::Obj(vec![
                    ("event".into(), Value::str("progress")),
                    ("done".into(), Value::u64(done)),
                    ("total".into(), Value::u64(self.total)),
                ]));
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(RunResult {
                output: "complete".into(),
                exit_code: 0,
                cache_hits: 0,
                simulated: self.total,
                cancelled: 0,
            })
        }
    }

    #[test]
    fn disconnect_detaches_and_resume_replays_the_full_stream() {
        use std::io::Write;
        let svc = Service::bind("127.0.0.1:0", Box::new(TalkativeHandler { total: 10 })).unwrap();
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        {
            // Raw client: send the request, then vanish mid-stream.
            let mut s = TcpStream::connect(&addr).unwrap();
            write!(
                s,
                "POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{{}}"
            )
            .unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(15));
        } // drop = RST/FIN while the handler is still emitting

        // The batch keeps running server-side (detach, not cancel); a
        // resume with the right token replays everything — including
        // the result the disconnected client never saw. `run: 0` can
        // never match a live incarnation, so `have` is ignored.
        let token = resume_token(RequestKind::Sweep, "{}");
        let resume = format!("{{\"token\":\"{token}\",\"have\":3,\"run\":0}}");
        let resp = http::request(&addr, "POST", "/resume", resume.as_bytes(), &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let events = parse_events(&resp.body);
        assert_eq!(events[0].get("event").unwrap().as_str(), Some("accepted"));
        let result = events.last().unwrap();
        assert_eq!(result.get("event").unwrap().as_str(), Some("result"));
        assert_eq!(result.get("output").unwrap().as_str(), Some("complete"));
        assert_eq!(result.get("simulated").unwrap().as_u64(), Some(10));
        assert_eq!(
            events.len(),
            12,
            "handshake + all 10 progress + result, nothing skipped"
        );

        // A matching run id honours `have`: only the tail is re-sent.
        let resume = format!("{{\"token\":\"{token}\",\"have\":8,\"run\":{}}}", run_id());
        let resp = http::request(&addr, "POST", "/resume", resume.as_bytes(), &mut |_| {}).unwrap();
        let events = parse_events(&resp.body);
        assert_eq!(events.len(), 4, "handshake + progress 9, 10 + result");

        // Unknown tokens are a typed 404.
        let resp = http::request(
            &addr,
            "POST",
            "/resume",
            b"{\"token\":\"ffffffffffffffff\",\"have\":0,\"run\":0}",
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(resp.status, 404);
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("unknown-token"));

        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        let summary = worker.join().unwrap();
        assert_eq!(summary.resumed_streams, 2);
        assert_eq!(summary.cancelled_cells, 0, "detach is not cancellation");
    }

    #[test]
    fn identical_live_posts_attach_to_one_run() {
        let svc = Service::bind("127.0.0.1:0", Box::new(TalkativeHandler { total: 30 })).unwrap();
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        let owner = {
            let addr = addr.clone();
            std::thread::spawn(move || {
                http::request(&addr, "POST", "/sweep", b"{\"grid\":9}", &mut |_| {}).unwrap()
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        // Same wire body while the first is still running: one batch,
        // two streams.
        let twin = http::request(&addr, "POST", "/sweep", b"{\"grid\":9}", &mut |_| {}).unwrap();
        let first = owner.join().unwrap();
        for resp in [&first, &twin] {
            let events = parse_events(&resp.body);
            let result = events.last().unwrap();
            assert_eq!(result.get("event").unwrap().as_str(), Some("result"));
            assert_eq!(result.get("simulated").unwrap().as_u64(), Some(30));
        }
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        let summary = worker.join().unwrap();
        assert_eq!(summary.resumed_streams, 1, "the twin attached");
        assert_eq!(summary.queued, 0, "only one batch actually ran");
    }

    #[test]
    fn replay_runs_headless_and_resolves_the_token() {
        let (handler, _q) = MockHandler::new();
        let svc = Service::bind("127.0.0.1:0", Box::new(handler)).unwrap();
        assert!(svc.replay(RequestKind::Sweep, "{\"grid\":7}"));
        assert!(
            !svc.replay(RequestKind::Sweep, "{\"grid\":7}"),
            "a token replays once"
        );
        assert!(!svc.replay(RequestKind::Sweep, "not json"));
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        let token = resume_token(RequestKind::Sweep, "{\"grid\":7}");
        let resume = format!("{{\"token\":\"{token}\",\"have\":0,\"run\":0}}");
        let resp = http::request(&addr, "POST", "/resume", resume.as_bytes(), &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let events = parse_events(&resp.body);
        let result = events.last().unwrap();
        assert_eq!(result.get("event").unwrap().as_str(), Some("result"));
        assert_eq!(
            result.get("output").unwrap().as_str(),
            Some("Sweep: {\"grid\":7}")
        );
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        let summary = worker.join().unwrap();
        assert_eq!(summary.journal_replayed, 1);
        assert_eq!(summary.resumed_streams, 1);
    }

    #[test]
    fn accept_storm_fail_point_drops_then_serves() {
        let _g = crate::testutil::FAILPOINT_LOCK.lock().unwrap();
        failpoint::set(Some("serve-accept-storm=2"));
        let (addr, worker, _q) = start_service();
        // The first two connections are dropped on the floor; a
        // persistent client's later attempt lands.
        let mut failures = 0;
        let resp = loop {
            match http::request(&addr, "GET", "/status", b"", &mut |_| {}) {
                Ok(resp) => break resp,
                Err(_) => {
                    failures += 1;
                    assert!(failures <= 10, "storm never cleared");
                }
            }
        };
        assert_eq!(resp.status, 200);
        assert!(failures >= 1, "the storm dropped at least one attempt");
        failpoint::set(None);
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        worker.join().unwrap();
    }
}
