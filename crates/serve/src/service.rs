//! The resident sweep service: accept loop, request routing, queueing,
//! counters, and graceful drain.
//!
//! The service itself knows nothing about simulators. It owns a
//! [`Handler`] — the CLI plugs in one wrapping a persistent
//! `ctcp-harness` `Harness` with its warm result store — and routes
//! HTTP requests at it:
//!
//! | request           | behaviour                                          |
//! |-------------------|----------------------------------------------------|
//! | `POST /sweep`     | runs a sweep, streaming NDJSON progress chunks     |
//! | `POST /analyze`   | same, for an attribution analysis                  |
//! | `GET /status`     | queue depth, busy flag, service counters           |
//! | `POST /shutdown`  | begins a graceful drain                            |
//!
//! Batches serialise on the handler: one runs at a time, later
//! requests queue on the handler mutex (counted in `serve_queued`,
//! visible live as `queue_depth`). `/status` never queues — it probes
//! the mutex and reports `busy` instead of waiting. Shutdown is a
//! *drain*: the accept loop stops taking work, every in-flight
//! connection thread is joined, and because the handler memoizes each
//! cell as it finishes, nothing already computed is lost even if a
//! client vanished mid-batch.

use crate::http;
use ctcp_telemetry::json::Value;
use ctcp_telemetry::{Counter, Metrics};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};

/// What kind of batch a request asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// A strategy × benchmark sweep (`POST /sweep`).
    Sweep,
    /// A per-strategy attribution analysis (`POST /analyze`).
    Analyze,
}

/// What one handled batch produced.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The rendered output, byte-identical to the one-shot CLI's.
    pub output: String,
    /// The exit code the one-shot CLI would have returned.
    pub exit_code: i32,
    /// Cells answered from the warm shared cache.
    pub cache_hits: u64,
    /// Cells actually simulated.
    pub simulated: u64,
}

/// The execution backend behind the service — implemented by the CLI
/// around a persistent harness, mocked in tests.
pub trait Handler: Send {
    /// Runs the batch described by `body` (a parsed JSON object),
    /// emitting progress events through `progress` as cells finish.
    /// A malformed body should come back as a `RunResult` with a
    /// non-zero `exit_code` and the parse error as `output`.
    fn run(
        &mut self,
        kind: RequestKind,
        body: &Value,
        progress: &mut dyn FnMut(&Value),
    ) -> RunResult;
}

/// Counter totals for one service lifetime, reported when the drain
/// completes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServiceSummary {
    /// Requests accepted (all routes).
    pub requests: u64,
    /// Batch requests that had to queue behind a running batch.
    pub queued: u64,
    /// Sweep cells answered from the warm shared cache.
    pub cache_hits: u64,
}

struct Inner {
    handler: Mutex<Box<dyn Handler>>,
    metrics: Mutex<Metrics>,
    /// Batch requests currently waiting on the handler mutex.
    queue_depth: AtomicUsize,
    /// Set by `/shutdown`; the accept loop stops taking connections.
    draining: AtomicBool,
    addr: SocketAddr,
}

/// Mutex access that survives a poisoned lock: a panicking batch must
/// not wedge the whole daemon.
fn relock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A bound, not-yet-running sweep service.
pub struct Service {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Service {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// wires `handler` behind it. The listener is live — connections
    /// queue in the OS backlog — but nothing is served until
    /// [`run`](Service::run).
    ///
    /// # Errors
    ///
    /// Bind failures (address in use, permission).
    pub fn bind(addr: &str, handler: Box<dyn Handler>) -> io::Result<Service> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Service {
            listener,
            inner: Arc::new(Inner {
                handler: Mutex::new(handler),
                metrics: Mutex::new(Metrics::new()),
                queue_depth: AtomicUsize::new(0),
                draining: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address — the actual port when bound to port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Serves until a `/shutdown` request, then drains: the accept
    /// loop stops, every in-flight connection thread is joined (their
    /// batches run to completion), and the counter totals are
    /// returned.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop failures only; per-connection errors (a peer
    /// hanging up mid-stream) are contained in that connection's
    /// thread.
    pub fn run(self) -> io::Result<ServiceSummary> {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.inner.draining.load(Ordering::Acquire) {
                break;
            }
            let inner = Arc::clone(&self.inner);
            workers.push(std::thread::spawn(move || {
                let _ = handle_connection(stream, &inner);
            }));
            // Reap finished threads so a long-lived daemon does not
            // accumulate one handle per connection ever served.
            let (done, running) = workers.into_iter().partition(|w| w.is_finished());
            workers = running;
            for w in done {
                let _ = w.join();
            }
        }
        // Graceful drain: in-flight batches finish (and memoize) even
        // though no new connections are accepted.
        for w in workers {
            let _ = w.join();
        }
        let m = relock(&self.inner.metrics);
        Ok(ServiceSummary {
            requests: m.get(Counter::ServeRequests),
            queued: m.get(Counter::ServeQueued),
            cache_hits: m.get(Counter::ServeCacheHits),
        })
    }
}

fn handle_connection(stream: TcpStream, inner: &Inner) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let req = match http::read_request(&mut reader) {
        Ok(Some(req)) => req,
        Ok(None) => return Ok(()), // connected and left
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return http::write_response(&mut out, 400, "text/plain", e.to_string().as_bytes());
        }
        Err(e) => return Err(e),
    };
    relock(&inner.metrics).add(Counter::ServeRequests, 1);
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/sweep") => run_batch(RequestKind::Sweep, &req, &mut out, inner),
        ("POST", "/analyze") => run_batch(RequestKind::Analyze, &req, &mut out, inner),
        ("GET", "/status") => status(&mut out, inner),
        ("POST", "/shutdown") => shutdown(&mut out, inner),
        _ => http::write_response(&mut out, 404, "text/plain", b"unknown route"),
    }
}

fn run_batch(
    kind: RequestKind,
    req: &http::Request,
    out: &mut TcpStream,
    inner: &Inner,
) -> io::Result<()> {
    let body = match req.body_str().map(Value::parse) {
        Some(Ok(v)) => v,
        _ => return http::write_response(out, 400, "text/plain", b"body is not valid JSON"),
    };
    // Batches serialise on the handler; a contended acquire is a queued
    // request, visible live in /status while it waits.
    let mut handler = match inner.handler.try_lock() {
        Ok(guard) => guard,
        Err(TryLockError::Poisoned(e)) => e.into_inner(),
        Err(TryLockError::WouldBlock) => {
            relock(&inner.metrics).add(Counter::ServeQueued, 1);
            inner.queue_depth.fetch_add(1, Ordering::SeqCst);
            let guard = relock(&inner.handler);
            inner.queue_depth.fetch_sub(1, Ordering::SeqCst);
            guard
        }
    };
    let mut w = http::ChunkedWriter::start(&mut *out, 200, "application/x-ndjson")?;
    // Progress write failures are deliberately swallowed: a client
    // hanging up must not abort the batch — every finished cell is
    // already memoized in the shared store, which is the drain
    // guarantee `/shutdown` relies on.
    let result = handler.run(kind, &body, &mut |event| {
        let mut line = event.render();
        line.push('\n');
        let _ = w.chunk(line.as_bytes());
    });
    drop(handler);
    relock(&inner.metrics).add(Counter::ServeCacheHits, result.cache_hits);
    let mut line = Value::Obj(vec![
        ("event".into(), Value::str("result")),
        (
            "exit_code".into(),
            Value::u64(result.exit_code.unsigned_abs().into()),
        ),
        ("cache_hits".into(), Value::u64(result.cache_hits)),
        ("simulated".into(), Value::u64(result.simulated)),
        ("output".into(), Value::str(&result.output)),
    ])
    .render();
    line.push('\n');
    w.chunk(line.as_bytes())?;
    w.finish()
}

fn status(out: &mut TcpStream, inner: &Inner) -> io::Result<()> {
    // Probe, never wait: status must answer instantly even while a
    // long batch holds the handler.
    let busy = match inner.handler.try_lock() {
        Ok(_) | Err(TryLockError::Poisoned(_)) => false,
        Err(TryLockError::WouldBlock) => true,
    };
    let m = relock(&inner.metrics);
    let body = Value::Obj(vec![
        ("status".into(), Value::str("ok")),
        ("busy".into(), Value::Bool(busy)),
        (
            "queue_depth".into(),
            Value::u64(inner.queue_depth.load(Ordering::SeqCst) as u64),
        ),
        (
            "counters".into(),
            Value::Obj(
                [
                    Counter::ServeRequests,
                    Counter::ServeQueued,
                    Counter::ServeCacheHits,
                ]
                .iter()
                .map(|&c| (c.name().to_string(), Value::u64(m.get(c))))
                .collect(),
            ),
        ),
    ])
    .render();
    drop(m);
    http::write_response(out, 200, "application/json", body.as_bytes())
}

fn shutdown(out: &mut TcpStream, inner: &Inner) -> io::Result<()> {
    http::write_response(out, 200, "application/json", b"{\"draining\":true}")?;
    inner.draining.store(true, Ordering::Release);
    // The accept loop is blocked in accept(); poke it awake so it can
    // observe the flag and begin the drain.
    let _ = TcpStream::connect(inner.addr);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A handler that "runs" a two-cell batch instantly, echoing the
    /// request back and reporting one cache hit per prior run of the
    /// same body — enough to exercise streaming, queueing and drain.
    struct MockHandler {
        seen: Vec<String>,
    }

    impl Handler for MockHandler {
        fn run(
            &mut self,
            kind: RequestKind,
            body: &Value,
            progress: &mut dyn FnMut(&Value),
        ) -> RunResult {
            let rendered = body.render();
            let hits = self.seen.iter().filter(|b| **b == rendered).count() as u64;
            self.seen.push(rendered.clone());
            for done in 1..=2u64 {
                progress(&Value::Obj(vec![
                    ("event".into(), Value::str("progress")),
                    ("done".into(), Value::u64(done)),
                    ("total".into(), Value::u64(2)),
                ]));
            }
            RunResult {
                output: format!("{kind:?}: {rendered}"),
                exit_code: 0,
                cache_hits: hits * 2,
                simulated: 2 - hits.min(2),
            }
        }
    }

    fn start_service() -> (String, std::thread::JoinHandle<ServiceSummary>) {
        let svc = Service::bind("127.0.0.1:0", Box::new(MockHandler { seen: Vec::new() }))
            .expect("bind ephemeral port");
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        (addr, worker)
    }

    fn parse_events(body: &[u8]) -> Vec<Value> {
        std::str::from_utf8(body)
            .unwrap()
            .lines()
            .map(|l| Value::parse(l).expect("each line is JSON"))
            .collect()
    }

    #[test]
    fn sweep_streams_progress_then_result() {
        let (addr, worker) = start_service();
        let mut chunks = 0usize;
        let resp = http::request(&addr, "POST", "/sweep", b"{\"grid\":1}", &mut |_| {
            chunks += 1
        })
        .unwrap();
        assert_eq!(resp.status, 200);
        assert!(chunks >= 3, "2 progress + 1 result, each its own chunk");
        let events = parse_events(&resp.body);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("event").unwrap().as_str(), Some("progress"));
        let result = &events[2];
        assert_eq!(result.get("event").unwrap().as_str(), Some("result"));
        assert_eq!(result.get("exit_code").unwrap().as_u64(), Some(0));
        assert_eq!(
            result.get("output").unwrap().as_str(),
            Some("Sweep: {\"grid\":1}")
        );

        // Same body again: the handler reports its cells as cache hits
        // and the service accounts them.
        let resp = http::request(&addr, "POST", "/sweep", b"{\"grid\":1}", &mut |_| {}).unwrap();
        let events = parse_events(&resp.body);
        assert_eq!(events[2].get("cache_hits").unwrap().as_u64(), Some(2));

        let resp = http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let summary = worker.join().unwrap();
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.cache_hits, 2);
    }

    #[test]
    fn status_reports_counters_and_unknown_routes_404() {
        let (addr, worker) = start_service();
        let resp = http::request(&addr, "POST", "/analyze", b"{}", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let resp = http::request(&addr, "GET", "/status", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("busy"), Some(&Value::Bool(false)));
        assert_eq!(v.get("queue_depth").unwrap().as_u64(), Some(0));
        let counters = v.get("counters").unwrap();
        assert_eq!(
            counters.get("serve_requests").unwrap().as_u64(),
            Some(2),
            "the status request itself is counted"
        );
        let resp = http::request(&addr, "GET", "/nope", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 404);
        let resp = http::request(&addr, "POST", "/sweep", b"not json", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 400);
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        worker.join().unwrap();
    }

    #[test]
    fn shutdown_drains_and_stops_accepting() {
        let (addr, worker) = start_service();
        let resp = http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let summary = worker.join().unwrap();
        assert_eq!(summary.requests, 1);
        // The listener is gone: a fresh connection is refused (or at
        // best connects to nothing and sees EOF/reset).
        assert!(http::request(&addr, "GET", "/status", b"", &mut |_| {}).is_err());
    }
}
