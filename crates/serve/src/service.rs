//! The resident sweep service: accept loop, request routing, admission
//! control, counters, and graceful drain.
//!
//! The service itself knows nothing about simulators. It owns a
//! [`Handler`] — the CLI plugs in one wrapping the shared cell
//! scheduler and warm result store from `ctcp-harness` — and routes
//! HTTP requests at it:
//!
//! | request           | behaviour                                          |
//! |-------------------|----------------------------------------------------|
//! | `POST /sweep`     | runs a sweep, streaming NDJSON progress chunks     |
//! | `POST /analyze`   | same, for an attribution analysis                  |
//! | `GET /status`     | in-flight work, pool utilization, latency, counters|
//! | `POST /shutdown`  | begins a graceful drain                            |
//!
//! Batches run *concurrently*: every connection gets its own thread,
//! and the handler is shared by reference (`&self`, `Send + Sync`)
//! rather than serialised behind a mutex. Interleaving is the
//! handler's business — the CLI handler feeds all requests into one
//! fair cell scheduler — while the service handles the wire side of
//! concurrency:
//!
//! * **admission**: a handler may refuse a batch
//!   ([`HandlerError::Saturated`]) before streaming anything; the
//!   service answers with a clean `503` and a typed JSON body, so
//!   clients can tell "try later" from a failed run.
//! * **disconnects**: progress callbacks return `false` once the
//!   client's stream breaks, letting the handler cancel that request's
//!   queued cells. Cells already running finish (and memoize) — the
//!   drain guarantee `/shutdown` relies on.
//! * **drain**: `/shutdown` stops the accept loop, every in-flight
//!   connection thread is joined, and then the handler is
//!   [quiesced](Handler::quiesce) so its worker pool runs every
//!   admitted cell to completion before the daemon exits.

use crate::http;
use ctcp_telemetry::json::Value;
use ctcp_telemetry::{Counter, Histogram, Metrics};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// What kind of batch a request asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// A strategy × benchmark sweep (`POST /sweep`).
    Sweep,
    /// A per-strategy attribution analysis (`POST /analyze`).
    Analyze,
}

/// What one handled batch produced.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The rendered output, byte-identical to the one-shot CLI's.
    pub output: String,
    /// The exit code the one-shot CLI would have returned.
    pub exit_code: i32,
    /// Cells answered from the warm shared cache.
    pub cache_hits: u64,
    /// Cells actually simulated.
    pub simulated: u64,
    /// Queued cells dropped because this client disconnected before
    /// they ran.
    pub cancelled: u64,
}

/// Why a handler refused to run a batch at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerError {
    /// Admission control: the shared queue is over its configured
    /// bound. Nothing was streamed; the service answers `503` with
    /// these numbers in a typed JSON body.
    Saturated {
        /// Cells already queued when the request arrived.
        queued: usize,
        /// Cells this request wanted to add.
        wanted: usize,
        /// The configured queue bound.
        limit: usize,
    },
}

impl std::fmt::Display for HandlerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HandlerError::Saturated {
                queued,
                wanted,
                limit,
            } => write!(
                f,
                "saturated: {queued} cells queued + {wanted} requested > limit {limit}"
            ),
        }
    }
}

/// A point-in-time snapshot of the handler's execution backend,
/// surfaced verbatim by `/status`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HandlerStats {
    /// Resident worker threads in the shared pool.
    pub workers: usize,
    /// Cells queued and not yet picked up by a worker.
    pub queued_cells: usize,
    /// Cells currently executing on a worker.
    pub running_cells: usize,
    /// Queued cells dropped by client disconnects, cumulative.
    pub cancelled_cells: u64,
}

/// The execution backend behind the service — implemented by the CLI
/// around the shared cell scheduler, mocked in tests.
///
/// `run` takes `&self` and the trait requires `Send + Sync`: the
/// service calls it from many connection threads at once, so
/// implementations own their interior synchronisation (the CLI handler
/// builds a fresh per-request harness around shared `Clone` handles).
pub trait Handler: Send + Sync {
    /// Runs the batch described by `body` (a parsed JSON object),
    /// emitting progress events through `progress` as cells finish.
    /// The callback returns `false` once the client's stream is broken
    /// — the handler should then cancel the request's queued cells
    /// (running cells finish and memoize) but still return the result.
    /// A malformed body should come back as an `Ok` result with a
    /// non-zero `exit_code` and the parse error as `output`; `Err` is
    /// reserved for refusing to run at all.
    ///
    /// # Errors
    ///
    /// [`HandlerError::Saturated`] when admission control refuses the
    /// batch — guaranteed to happen before any progress is emitted.
    fn run(
        &self,
        kind: RequestKind,
        body: &Value,
        progress: &mut dyn FnMut(&Value) -> bool,
    ) -> Result<RunResult, HandlerError>;

    /// A live snapshot of the execution backend for `/status`.
    fn stats(&self) -> HandlerStats {
        HandlerStats::default()
    }

    /// Quiesces the backend at the end of a drain: stop admitting,
    /// run every already-admitted cell to completion, release workers.
    /// Called once, after all connection threads have been joined.
    fn quiesce(&self) {}
}

/// Counter totals for one service lifetime, reported when the drain
/// completes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServiceSummary {
    /// Requests accepted (all routes).
    pub requests: u64,
    /// Batch requests that overlapped another in-flight batch (the
    /// concurrency the shared scheduler interleaved).
    pub queued: u64,
    /// Sweep cells answered from the warm shared cache.
    pub cache_hits: u64,
    /// Batch requests refused by admission control (`503`).
    pub rejected: u64,
    /// Queued cells dropped because their client disconnected.
    pub cancelled_cells: u64,
}

struct Inner {
    handler: Box<dyn Handler>,
    metrics: Mutex<Metrics>,
    /// Completed-batch latency, bucketed as `log2(ms + 1)` so the
    /// fixed 33-bucket histogram spans sub-millisecond cache hits to
    /// multi-hour sweeps.
    latency: Mutex<Histogram>,
    /// Batch requests currently being handled (admitted or not-yet-
    /// admitted; excludes `/status` and `/shutdown`).
    in_flight: AtomicUsize,
    /// Set by `/shutdown`; the accept loop stops taking connections.
    draining: AtomicBool,
    addr: SocketAddr,
}

/// Mutex access that survives a poisoned lock: a panicking batch must
/// not wedge the whole daemon.
fn relock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A bound, not-yet-running sweep service.
pub struct Service {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Service {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// wires `handler` behind it. The listener is live — connections
    /// queue in the OS backlog — but nothing is served until
    /// [`run`](Service::run).
    ///
    /// # Errors
    ///
    /// Bind failures (address in use, permission).
    pub fn bind(addr: &str, handler: Box<dyn Handler>) -> io::Result<Service> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Service {
            listener,
            inner: Arc::new(Inner {
                handler,
                metrics: Mutex::new(Metrics::new()),
                latency: Mutex::new(Histogram::default()),
                in_flight: AtomicUsize::new(0),
                draining: AtomicBool::new(false),
                addr,
            }),
        })
    }

    /// The bound address — the actual port when bound to port 0.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Serves until a `/shutdown` request, then drains: the accept
    /// loop stops, every in-flight connection thread is joined (their
    /// batches run to completion), the handler is quiesced, and the
    /// counter totals are returned.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop failures only; per-connection errors (a peer
    /// hanging up mid-stream) are contained in that connection's
    /// thread.
    pub fn run(self) -> io::Result<ServiceSummary> {
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if self.inner.draining.load(Ordering::Acquire) {
                break;
            }
            let inner = Arc::clone(&self.inner);
            workers.push(std::thread::spawn(move || {
                let _ = handle_connection(stream, &inner);
            }));
            // Reap finished threads so a long-lived daemon does not
            // accumulate one handle per connection ever served.
            let (done, running) = workers.into_iter().partition(|w| w.is_finished());
            workers = running;
            for w in done {
                let _ = w.join();
            }
        }
        // Graceful drain: in-flight batches finish (and memoize) even
        // though no new connections are accepted — then the handler's
        // own pool is quiesced, so no admitted cell is ever lost.
        for w in workers {
            let _ = w.join();
        }
        self.inner.handler.quiesce();
        let m = relock(&self.inner.metrics);
        Ok(ServiceSummary {
            requests: m.get(Counter::ServeRequests),
            queued: m.get(Counter::ServeQueued),
            cache_hits: m.get(Counter::ServeCacheHits),
            rejected: m.get(Counter::ServeRejected),
            cancelled_cells: m.get(Counter::ServeCancelledCells),
        })
    }
}

fn handle_connection(stream: TcpStream, inner: &Inner) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    let req = match http::read_request(&mut reader) {
        Ok(Some(req)) => req,
        Ok(None) => return Ok(()), // connected and left
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return http::write_response(&mut out, 400, "text/plain", e.to_string().as_bytes());
        }
        Err(e) => return Err(e),
    };
    relock(&inner.metrics).add(Counter::ServeRequests, 1);
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/sweep") => run_batch(RequestKind::Sweep, &req, &mut out, inner),
        ("POST", "/analyze") => run_batch(RequestKind::Analyze, &req, &mut out, inner),
        ("GET", "/status") => status(&mut out, inner),
        ("POST", "/shutdown") => shutdown(&mut out, inner),
        _ => http::write_response(&mut out, 404, "text/plain", b"unknown route"),
    }
}

/// Decrements the in-flight gauge however the batch ends (result,
/// rejection, panic in the handler, broken pipe).
struct InFlight<'a>(&'a AtomicUsize);

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn run_batch(
    kind: RequestKind,
    req: &http::Request,
    out: &mut TcpStream,
    inner: &Inner,
) -> io::Result<()> {
    let body = match req.body_str().map(Value::parse) {
        Some(Ok(v)) => v,
        _ => return http::write_response(out, 400, "text/plain", b"body is not valid JSON"),
    };
    let started = Instant::now();
    if inner.in_flight.fetch_add(1, Ordering::SeqCst) > 0 {
        // Another batch is already running: this one rides the shared
        // pool concurrently instead of waiting its turn.
        relock(&inner.metrics).add(Counter::ServeQueued, 1);
    }
    let _gauge = InFlight(&inner.in_flight);

    // The chunked stream starts lazily, on the first progress event:
    // a batch refused by admission control streams nothing, so it can
    // still be answered with a clean fixed-length 503.
    let mut writer: Option<http::ChunkedWriter<TcpStream>> = None;
    let mut peer_gone = false;
    let outcome = inner.handler.run(kind, &body, &mut |event| {
        if peer_gone {
            return false;
        }
        let w = match writer.as_mut() {
            Some(w) => w,
            None => match out
                .try_clone()
                .and_then(|s| http::ChunkedWriter::start(s, 200, "application/x-ndjson"))
            {
                Ok(w) => writer.insert(w),
                Err(_) => {
                    peer_gone = true;
                    return false;
                }
            },
        };
        let mut line = event.render();
        line.push('\n');
        match w.chunk(line.as_bytes()) {
            Ok(()) => true,
            Err(_) => {
                // The client hung up. The batch keeps running — every
                // finished cell is already memoized in the shared
                // store — but the handler is told so it can drop this
                // request's still-queued cells.
                peer_gone = true;
                false
            }
        }
    });

    let result = match outcome {
        Ok(result) => result,
        Err(
            e @ HandlerError::Saturated {
                queued,
                wanted,
                limit,
            },
        ) => {
            relock(&inner.metrics).add(Counter::ServeRejected, 1);
            debug_assert!(writer.is_none(), "admission precedes streaming");
            let body = Value::Obj(vec![
                ("error".into(), Value::str("saturated")),
                ("message".into(), Value::str(&e.to_string())),
                ("queued".into(), Value::u64(queued as u64)),
                ("wanted".into(), Value::u64(wanted as u64)),
                ("limit".into(), Value::u64(limit as u64)),
            ])
            .render();
            return http::write_response(out, 503, "application/json", body.as_bytes());
        }
    };

    {
        let mut m = relock(&inner.metrics);
        m.add(Counter::ServeCacheHits, result.cache_hits);
        m.add(Counter::ServeCancelledCells, result.cancelled);
    }
    let ms = started.elapsed().as_millis() as u64;
    relock(&inner.latency).observe((ms + 1).ilog2() as u64);

    let mut line = Value::Obj(vec![
        ("event".into(), Value::str("result")),
        (
            "exit_code".into(),
            Value::u64(result.exit_code.unsigned_abs().into()),
        ),
        ("cache_hits".into(), Value::u64(result.cache_hits)),
        ("simulated".into(), Value::u64(result.simulated)),
        ("cancelled".into(), Value::u64(result.cancelled)),
        ("output".into(), Value::str(&result.output)),
    ])
    .render();
    line.push('\n');
    let mut w = match writer {
        Some(w) => w,
        // No progress was streamed (e.g. a parse error): the result
        // line is the whole stream.
        None => http::ChunkedWriter::start(out.try_clone()?, 200, "application/x-ndjson")?,
    };
    w.chunk(line.as_bytes())?;
    w.finish()
}

/// The lower bound, in milliseconds, of latency bucket `i` (the
/// inverse of the `log2(ms + 1)` bucketing in [`run_batch`]).
fn bucket_ms(i: u64) -> u64 {
    (1u64 << i.min(62)) - 1
}

fn status(out: &mut TcpStream, inner: &Inner) -> io::Result<()> {
    // Nothing here waits on a batch: the gauges are atomics, the
    // handler snapshot reads its scheduler's atomics, and the two
    // mutexes are only ever held for micro-ops.
    let hs = inner.handler.stats();
    let in_flight = inner.in_flight.load(Ordering::SeqCst) as u64;
    let utilization = if hs.workers == 0 {
        0.0
    } else {
        hs.running_cells as f64 / hs.workers as f64
    };
    let lat = relock(&inner.latency).clone();
    let m = relock(&inner.metrics);
    let body = Value::Obj(vec![
        ("status".into(), Value::str("ok")),
        ("in_flight".into(), Value::u64(in_flight)),
        ("workers".into(), Value::u64(hs.workers as u64)),
        ("queued_cells".into(), Value::u64(hs.queued_cells as u64)),
        ("running_cells".into(), Value::u64(hs.running_cells as u64)),
        ("worker_utilization".into(), Value::f64(utilization)),
        ("cancelled_cells".into(), Value::u64(hs.cancelled_cells)),
        (
            "latency_ms".into(),
            Value::Obj(vec![
                ("samples".into(), Value::u64(lat.total)),
                ("p50".into(), Value::u64(bucket_ms(lat.percentile(50.0)))),
                ("p95".into(), Value::u64(bucket_ms(lat.percentile(95.0)))),
                ("p99".into(), Value::u64(bucket_ms(lat.percentile(99.0)))),
            ]),
        ),
        (
            "counters".into(),
            Value::Obj(
                [
                    Counter::ServeRequests,
                    Counter::ServeQueued,
                    Counter::ServeCacheHits,
                    Counter::ServeRejected,
                    Counter::ServeCancelledCells,
                ]
                .iter()
                .map(|&c| (c.name().to_string(), Value::u64(m.get(c))))
                .collect(),
            ),
        ),
    ])
    .render();
    drop(m);
    http::write_response(out, 200, "application/json", body.as_bytes())
}

fn shutdown(out: &mut TcpStream, inner: &Inner) -> io::Result<()> {
    http::write_response(out, 200, "application/json", b"{\"draining\":true}")?;
    inner.draining.store(true, Ordering::Release);
    // The accept loop is blocked in accept(); poke it awake so it can
    // observe the flag and begin the drain.
    let _ = TcpStream::connect(inner.addr);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Condvar;
    use std::time::Duration;

    /// A handler that "runs" a two-cell batch instantly, echoing the
    /// request back and reporting one cache hit per prior run of the
    /// same body — enough to exercise streaming, concurrency and
    /// drain.
    struct MockHandler {
        seen: Mutex<Vec<String>>,
        quiesced: Arc<AtomicBool>,
    }

    impl MockHandler {
        fn new() -> (MockHandler, Arc<AtomicBool>) {
            let quiesced = Arc::new(AtomicBool::new(false));
            (
                MockHandler {
                    seen: Mutex::new(Vec::new()),
                    quiesced: Arc::clone(&quiesced),
                },
                quiesced,
            )
        }
    }

    impl Handler for MockHandler {
        fn run(
            &self,
            kind: RequestKind,
            body: &Value,
            progress: &mut dyn FnMut(&Value) -> bool,
        ) -> Result<RunResult, HandlerError> {
            let rendered = body.render();
            let hits = {
                let mut seen = self.seen.lock().unwrap();
                let hits = seen.iter().filter(|b| **b == rendered).count() as u64;
                seen.push(rendered.clone());
                hits
            };
            for done in 1..=2u64 {
                progress(&Value::Obj(vec![
                    ("event".into(), Value::str("progress")),
                    ("done".into(), Value::u64(done)),
                    ("total".into(), Value::u64(2)),
                ]));
            }
            Ok(RunResult {
                output: format!("{kind:?}: {rendered}"),
                exit_code: 0,
                cache_hits: hits * 2,
                simulated: 2 - hits.min(2),
                cancelled: 0,
            })
        }

        fn stats(&self) -> HandlerStats {
            HandlerStats {
                workers: 2,
                queued_cells: 0,
                running_cells: 0,
                cancelled_cells: 0,
            }
        }

        fn quiesce(&self) {
            self.quiesced.store(true, Ordering::SeqCst);
        }
    }

    fn start_service() -> (
        String,
        std::thread::JoinHandle<ServiceSummary>,
        Arc<AtomicBool>,
    ) {
        let (handler, quiesced) = MockHandler::new();
        let svc = Service::bind("127.0.0.1:0", Box::new(handler)).expect("bind ephemeral port");
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        (addr, worker, quiesced)
    }

    fn parse_events(body: &[u8]) -> Vec<Value> {
        std::str::from_utf8(body)
            .unwrap()
            .lines()
            .map(|l| Value::parse(l).expect("each line is JSON"))
            .collect()
    }

    #[test]
    fn sweep_streams_progress_then_result() {
        let (addr, worker, quiesced) = start_service();
        let mut chunks = 0usize;
        let resp = http::request(&addr, "POST", "/sweep", b"{\"grid\":1}", &mut |_| {
            chunks += 1
        })
        .unwrap();
        assert_eq!(resp.status, 200);
        assert!(chunks >= 3, "2 progress + 1 result, each its own chunk");
        let events = parse_events(&resp.body);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("event").unwrap().as_str(), Some("progress"));
        let result = &events[2];
        assert_eq!(result.get("event").unwrap().as_str(), Some("result"));
        assert_eq!(result.get("exit_code").unwrap().as_u64(), Some(0));
        assert_eq!(
            result.get("output").unwrap().as_str(),
            Some("Sweep: {\"grid\":1}")
        );

        // Same body again: the handler reports its cells as cache hits
        // and the service accounts them.
        let resp = http::request(&addr, "POST", "/sweep", b"{\"grid\":1}", &mut |_| {}).unwrap();
        let events = parse_events(&resp.body);
        assert_eq!(events[2].get("cache_hits").unwrap().as_u64(), Some(2));

        let resp = http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let summary = worker.join().unwrap();
        assert_eq!(summary.requests, 3);
        assert_eq!(summary.cache_hits, 2);
        assert_eq!(summary.rejected, 0);
        assert!(quiesced.load(Ordering::SeqCst), "drain quiesces the pool");
    }

    #[test]
    fn status_reports_pool_latency_and_unknown_routes_404() {
        let (addr, worker, _q) = start_service();
        let resp = http::request(&addr, "POST", "/analyze", b"{}", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let resp = http::request(&addr, "GET", "/status", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("in_flight").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("workers").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("queued_cells").unwrap().as_u64(), Some(0));
        let lat = v.get("latency_ms").unwrap();
        assert_eq!(lat.get("samples").unwrap().as_u64(), Some(1));
        assert!(lat.get("p50").unwrap().as_u64().is_some());
        let counters = v.get("counters").unwrap();
        assert_eq!(
            counters.get("serve_requests").unwrap().as_u64(),
            Some(2),
            "the status request itself is counted"
        );
        assert_eq!(counters.get("serve_rejected").unwrap().as_u64(), Some(0));
        let resp = http::request(&addr, "GET", "/nope", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 404);
        let resp = http::request(&addr, "POST", "/sweep", b"not json", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 400);
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        worker.join().unwrap();
    }

    #[test]
    fn shutdown_drains_and_stops_accepting() {
        let (addr, worker, quiesced) = start_service();
        let resp = http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 200);
        let summary = worker.join().unwrap();
        assert_eq!(summary.requests, 1);
        assert!(quiesced.load(Ordering::SeqCst));
        // The listener is gone: a fresh connection is refused (or at
        // best connects to nothing and sees EOF/reset).
        assert!(http::request(&addr, "GET", "/status", b"", &mut |_| {}).is_err());
    }

    /// A handler whose `run` blocks until `n` requests are inside it
    /// simultaneously — proof the service stopped serialising batches.
    struct RendezvousHandler {
        inside: Mutex<usize>,
        all_in: Condvar,
        n: usize,
    }

    impl Handler for RendezvousHandler {
        fn run(
            &self,
            _kind: RequestKind,
            _body: &Value,
            _progress: &mut dyn FnMut(&Value) -> bool,
        ) -> Result<RunResult, HandlerError> {
            let mut inside = self.inside.lock().unwrap();
            *inside += 1;
            if *inside >= self.n {
                self.all_in.notify_all();
            }
            while *inside < self.n {
                let (guard, timeout) = self
                    .all_in
                    .wait_timeout(inside, Duration::from_secs(10))
                    .unwrap();
                inside = guard;
                assert!(
                    !timeout.timed_out(),
                    "batches serialised: peers never arrived"
                );
            }
            drop(inside);
            Ok(RunResult {
                output: "met".into(),
                exit_code: 0,
                cache_hits: 0,
                simulated: 1,
                cancelled: 0,
            })
        }
    }

    #[test]
    fn overlapping_batches_run_concurrently() {
        let svc = Service::bind(
            "127.0.0.1:0",
            Box::new(RendezvousHandler {
                inside: Mutex::new(0),
                all_in: Condvar::new(),
                n: 3,
            }),
        )
        .unwrap();
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        let clients: Vec<_> = (0..3)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    http::request(&addr, "POST", "/sweep", b"{}", &mut |_| {}).unwrap()
                })
            })
            .collect();
        for c in clients {
            let resp = c.join().unwrap();
            assert_eq!(resp.status, 200);
            let events = parse_events(&resp.body);
            assert_eq!(
                events.last().unwrap().get("output").unwrap().as_str(),
                Some("met")
            );
        }
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        let summary = worker.join().unwrap();
        // All three batches overlapped, so at least two of them saw
        // another batch already in flight when they were admitted.
        assert!(summary.queued >= 2, "queued = {}", summary.queued);
    }

    /// A handler that always refuses: the wire side of admission.
    struct SaturatedHandler;

    impl Handler for SaturatedHandler {
        fn run(
            &self,
            _kind: RequestKind,
            _body: &Value,
            _progress: &mut dyn FnMut(&Value) -> bool,
        ) -> Result<RunResult, HandlerError> {
            Err(HandlerError::Saturated {
                queued: 7,
                wanted: 3,
                limit: 8,
            })
        }
    }

    #[test]
    fn saturated_batches_get_a_typed_503() {
        let svc = Service::bind("127.0.0.1:0", Box::new(SaturatedHandler)).unwrap();
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        let resp = http::request(&addr, "POST", "/sweep", b"{}", &mut |_| {}).unwrap();
        assert_eq!(resp.status, 503);
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(v.get("error").unwrap().as_str(), Some("saturated"));
        assert_eq!(v.get("queued").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("wanted").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("limit").unwrap().as_u64(), Some(8));
        // The refusal is visible both live and in the drain summary.
        let resp = http::request(&addr, "GET", "/status", b"", &mut |_| {}).unwrap();
        let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("serve_rejected")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        let summary = worker.join().unwrap();
        assert_eq!(summary.rejected, 1);
    }

    /// A handler that keeps emitting until the stream breaks, then
    /// reports how many "cells" it abandoned — the disconnect contract.
    struct TalkativeHandler;

    impl Handler for TalkativeHandler {
        fn run(
            &self,
            _kind: RequestKind,
            _body: &Value,
            progress: &mut dyn FnMut(&Value) -> bool,
        ) -> Result<RunResult, HandlerError> {
            let total = 200u64;
            let mut cancelled = 0;
            for done in 1..=total {
                let alive = progress(&Value::Obj(vec![
                    ("event".into(), Value::str("progress")),
                    ("done".into(), Value::u64(done)),
                    ("total".into(), Value::u64(total)),
                ]));
                if !alive {
                    cancelled = total - done;
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(RunResult {
                output: "partial".into(),
                exit_code: 0,
                cache_hits: 0,
                simulated: 200 - cancelled,
                cancelled,
            })
        }
    }

    #[test]
    fn client_disconnect_cancels_and_is_counted() {
        use std::io::Write;
        let svc = Service::bind("127.0.0.1:0", Box::new(TalkativeHandler)).unwrap();
        let addr = svc.local_addr().to_string();
        let worker = std::thread::spawn(move || svc.run().expect("service run"));
        {
            // Raw client: send the request, then vanish mid-stream.
            let mut s = TcpStream::connect(&addr).unwrap();
            write!(
                s,
                "POST /sweep HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{{}}"
            )
            .unwrap();
            s.flush().unwrap();
            std::thread::sleep(Duration::from_millis(50));
        } // drop = RST/FIN while the handler is still emitting
          // The batch keeps running server-side; wait for it to finish.
        let deadline = Instant::now() + Duration::from_secs(10);
        let cancelled = loop {
            let resp = http::request(&addr, "GET", "/status", b"", &mut |_| {}).unwrap();
            let v = Value::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
            let n = v
                .get("counters")
                .unwrap()
                .get("serve_cancelled_cells")
                .unwrap()
                .as_u64()
                .unwrap();
            if n > 0 || Instant::now() > deadline {
                break n;
            }
            std::thread::sleep(Duration::from_millis(20));
        };
        assert!(cancelled > 0, "the broken stream must cancel queued cells");
        http::request(&addr, "POST", "/shutdown", b"", &mut |_| {}).unwrap();
        let summary = worker.join().unwrap();
        assert_eq!(summary.cancelled_cells, cancelled);
    }
}
