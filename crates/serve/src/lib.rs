//! # ctcp-serve — the resident sweep service
//!
//! A one-shot `ctcp sweep` pays full process startup for every grid
//! and holds its warm memoized cache for exactly one invocation. This
//! crate turns the harness into a *service*: a long-running daemon
//! (`ctcp serve --addr 127.0.0.1:PORT`) that accepts sweep and analyze
//! requests over a hand-rolled, offline-safe HTTP/1.1 + JSON protocol,
//! runs them through one shared execution backend, streams per-cell
//! progress back as chunked NDJSON, and lets every connected client
//! share the same warm result cache backed by the sharded result
//! store in `ctcp-harness`. Requests are served *concurrently*: each
//! connection gets a thread, the handler is `&self + Sync`, and the
//! CLI backend interleaves all in-flight batches cell-by-cell on one
//! fair scheduler — so a two-cell analyze never waits behind a
//! ninety-six-cell sweep, and a fully-memoized request is answered
//! from the store while the pool is busy.
//!
//! The crate deliberately depends on nothing but `std::net` and
//! `ctcp-telemetry` (for the JSON value and the service counters). The
//! simulator side plugs in through the [`Handler`] trait — the CLI
//! implements it around a persistent `Harness`, and tests implement it
//! with mocks — so the wire layer, queueing, counters and drain logic
//! are all testable without running a single simulation.
//!
//! See [`http`] for the wire protocol and [`service`] for routing,
//! admission, disconnect and graceful-drain contracts; DESIGN.md §7f
//! and §7h in the repository root document both, and §7i documents
//! the crash-recovery layer (request journal, worker supervision,
//! read-only degradation, and the reconnect/resume protocol).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod service;

pub use service::{
    resume_token, Handler, HandlerError, HandlerStats, RequestKind, RunResult, Service,
    ServiceSummary,
};

#[cfg(test)]
pub(crate) mod testutil {
    /// Fail-point state is process-global; unit tests that arm points
    /// serialise behind this lock.
    pub(crate) static FAILPOINT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}
