//! # Trace cache and fill unit for the CTCP simulator
//!
//! Implements the instruction-supply mechanism the paper's contribution
//! lives in (Bhargava & John, ISCA 2003):
//!
//! * a 1K-entry, 2-way, 3-cycle **trace cache** whose lines hold up to 16
//!   instructions spanning up to three basic blocks, in a *physical* order
//!   that may differ from logical (program) order, plus per-instruction
//!   **profile fields** — the 2-bit chain-cluster and 2-bit leader/follower
//!   values the FDRT strategy feeds on (§4.2 of the paper),
//! * the **fill unit**, which snoops the retire stream, segments it into
//!   traces, performs intra-trace dependency analysis, and hands the
//!   resulting [`RawTrace`] to a retire-time cluster-assignment strategy
//!   (implemented in `ctcp-core`) before installation.
//!
//! Physical reordering never changes logical order: every line records the
//! logical position of each slot, and the simulator retires instructions
//! in logical order regardless of slot placement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod fill;
mod profile;
mod trace;

pub use cache::{TraceCache, TraceCacheConfig, TraceCacheStats};
pub use fill::{FillUnit, FillUnitConfig, FillUnitStats, TraceHead};
pub use profile::{ChainRole, ExecFeedback, ProducerInfo, ProfileFields, TcLocation};
pub use trace::{PendingInst, RawTrace, TraceLine, TraceSlot};
