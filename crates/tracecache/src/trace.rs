//! Traces: the fill unit's raw traces and installed trace cache lines.

use crate::{ExecFeedback, ProfileFields, TcLocation};
use ctcp_isa::Instruction;

/// One retired instruction buffered in the fill unit, with the profile it
/// carried through the pipeline and the core's execution feedback.
#[derive(Debug, Clone, Copy)]
pub struct PendingInst {
    /// Global dynamic sequence number.
    pub seq: u64,
    /// Static instruction index in the program.
    pub index: u32,
    /// Static PC.
    pub pc: u64,
    /// The instruction itself.
    pub inst: Instruction,
    /// Profile fields carried with the instruction (possibly updated by
    /// the chaining logic before the trace is finalised).
    pub profile: ProfileFields,
    /// Trace cache location the instruction was fetched from, if any
    /// (used to update its old line's profile fields in place).
    pub tc_loc: Option<TcLocation>,
    /// Execution feedback from the core.
    pub feedback: ExecFeedback,
    /// Dynamic direction, for control transfers (`None` otherwise).
    pub taken: Option<bool>,
}

/// A finalised but not-yet-assigned trace: instructions in logical order
/// plus the fill unit's intra-trace dependency analysis. A retire-time
/// cluster assignment strategy turns this into a [`TraceLine`].
#[derive(Debug, Clone)]
pub struct RawTrace {
    /// Instructions in logical (program) order.
    pub insts: Vec<PendingInst>,
    /// For each instruction, the logical position of the intra-trace
    /// producer of RS1/RS2, if the register was last written within this
    /// trace before the consumer.
    pub intra_producers: Vec<[Option<u8>; 2]>,
    /// For each instruction, whether a later instruction of this trace
    /// consumes its destination.
    pub has_intra_consumer: Vec<bool>,
    /// Number of control-transfer instructions in the trace.
    pub branch_count: u8,
}

impl RawTrace {
    /// Builds a raw trace from logical-order instructions, running the
    /// fill unit's intra-trace dependency analysis.
    ///
    /// # Panics
    ///
    /// Panics if `insts` is empty or longer than 255 instructions.
    pub fn analyze(insts: Vec<PendingInst>) -> Self {
        assert!(!insts.is_empty() && insts.len() <= 255);
        let n = insts.len();
        let mut last_writer: [Option<u8>; ctcp_isa::Reg::NUM] = [None; ctcp_isa::Reg::NUM];
        let mut intra_producers = vec![[None; 2]; n];
        let mut has_intra_consumer = vec![false; n];
        let mut branch_count = 0u8;
        for (i, p) in insts.iter().enumerate() {
            if let Some(r) = p.inst.dep_src1() {
                if let Some(w) = last_writer[r.index()] {
                    intra_producers[i][0] = Some(w);
                    has_intra_consumer[w as usize] = true;
                }
            }
            if let Some(r) = p.inst.dep_src2() {
                if let Some(w) = last_writer[r.index()] {
                    intra_producers[i][1] = Some(w);
                    has_intra_consumer[w as usize] = true;
                }
            }
            if let Some(d) = p.inst.dest {
                last_writer[d.index()] = Some(i as u8);
            }
            if p.inst.op.is_cti() {
                branch_count += 1;
            }
        }
        RawTrace {
            insts,
            intra_producers,
            has_intra_consumer,
            branch_count,
        }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if the trace holds no instructions (never for analysed traces).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// PC of the first (logically oldest) instruction.
    pub fn start_pc(&self) -> u64 {
        self.insts[0].pc
    }

    /// The logical position of the *critical* intra-trace producer of
    /// instruction `i`: the intra-trace producer of the source the core
    /// reported as last-arriving, falling back to either intra-trace
    /// producer if criticality is unknown.
    pub fn critical_intra_producer(&self, i: usize) -> Option<u8> {
        let ip = &self.intra_producers[i];
        if let Some(cs) = self.insts[i].feedback.critical_src {
            if let Some(p) = ip[cs as usize] {
                return Some(p);
            }
        }
        ip[0].or(ip[1])
    }
}

/// One instruction slot of an installed trace cache line.
#[derive(Debug, Clone, Copy)]
pub struct TraceSlot {
    /// Static instruction index in the program.
    pub index: u32,
    /// Static PC.
    pub pc: u64,
    /// The instruction.
    pub inst: Instruction,
    /// Run-time profile fields (updated in place by the feedback loop).
    pub profile: ProfileFields,
    /// Dynamic direction recorded when the trace was built (control
    /// transfers only).
    pub taken: Option<bool>,
}

/// An installed trace cache line: up to `capacity` slots in *physical*
/// order (slot `s` issues to cluster `s / slots_per_cluster`), plus the
/// logical ordering needed to retire in program order.
#[derive(Debug, Clone)]
pub struct TraceLine {
    /// Unique id assigned at install time.
    pub id: u64,
    /// PC of the logically first instruction (the lookup tag).
    pub start_pc: u64,
    /// Physical slots; `None` for empty slots.
    pub slots: Vec<Option<TraceSlot>>,
    /// `logical_to_phys[l]` = physical slot of the `l`-th logical
    /// instruction.
    pub logical_to_phys: Vec<u8>,
}

impl TraceLine {
    /// Builds a line from a raw trace and a physical placement.
    ///
    /// `placement[l]` gives the physical slot of logical instruction `l`;
    /// it must be injective and within `capacity`.
    ///
    /// # Panics
    ///
    /// Panics if the placement is not a valid injection into
    /// `0..capacity`.
    pub fn from_raw(raw: &RawTrace, placement: &[u8], capacity: usize) -> Self {
        assert_eq!(placement.len(), raw.len());
        let mut slots: Vec<Option<TraceSlot>> = vec![None; capacity];
        for (l, &p) in placement.iter().enumerate() {
            let p = p as usize;
            assert!(p < capacity, "placement out of range");
            assert!(slots[p].is_none(), "placement not injective");
            let src = &raw.insts[l];
            slots[p] = Some(TraceSlot {
                index: src.index,
                pc: src.pc,
                inst: src.inst,
                profile: src.profile,
                taken: src.taken,
            });
        }
        TraceLine {
            id: 0, // assigned by the cache at install
            start_pc: raw.start_pc(),
            slots,
            logical_to_phys: placement.to_vec(),
        }
    }

    /// Number of instructions in the line.
    pub fn len(&self) -> usize {
        self.logical_to_phys.len()
    }

    /// True if the line holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.logical_to_phys.is_empty()
    }

    /// Iterates instructions in logical order as
    /// `(physical_slot, &TraceSlot)`.
    pub fn logical_iter(&self) -> impl Iterator<Item = (u8, &TraceSlot)> + '_ {
        self.logical_to_phys.iter().map(move |&p| {
            (
                p,
                self.slots[p as usize]
                    .as_ref()
                    .expect("logical_to_phys points at filled slots"),
            )
        })
    }

    /// The recorded direction of each conditional branch, in logical
    /// order, paired with its PC.
    pub fn branch_path(&self) -> impl Iterator<Item = (u64, bool)> + '_ {
        self.logical_iter().filter_map(|(_, s)| {
            if s.inst.op.is_conditional_branch() {
                Some((s.pc, s.taken.unwrap_or(false)))
            } else {
                None
            }
        })
    }

    /// Identity placement for `n` instructions (baseline: physical order
    /// equals logical order).
    pub fn identity_placement(n: usize) -> Vec<u8> {
        (0..n as u8).collect()
    }

    /// Reorder distance of logical instruction `l`: how far the
    /// assignment strategy moved it from its program-order slot,
    /// `|physical - logical|`. The fill unit's reordering freedom is
    /// what retire-time strategies trade on, so the distribution of
    /// these distances is a direct measure of how aggressive a strategy
    /// was.
    pub fn reorder_distance(&self, l: usize) -> u64 {
        u64::from(self.logical_to_phys[l]).abs_diff(l as u64)
    }

    /// Iterates the reorder distance of every instruction in the line,
    /// in logical order.
    pub fn reorder_distances(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len()).map(|l| self.reorder_distance(l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChainRole;
    use ctcp_isa::{Opcode, Reg};

    fn pi(seq: u64, inst: Instruction, taken: Option<bool>) -> PendingInst {
        PendingInst {
            seq,
            index: seq as u32,
            pc: 0x1000 + 4 * seq,
            inst,
            profile: ProfileFields::default(),
            tc_loc: None,
            feedback: ExecFeedback::default(),
            taken,
        }
    }

    fn add(d: Reg, a: Reg, b: Reg) -> Instruction {
        Instruction::new(Opcode::Add, Some(d), Some(a), Some(b), 0)
    }

    #[test]
    fn intra_trace_dependency_analysis() {
        // i0: r1 = r2 + r3
        // i1: r4 = r1 + r2   (src1 -> i0)
        // i2: r1 = r4 + r4   (src1,src2 -> i1)
        // i3: r5 = r1 + r9   (src1 -> i2, not i0)
        let insts = vec![
            pi(0, add(Reg::R1, Reg::R2, Reg::R3), None),
            pi(1, add(Reg::R4, Reg::R1, Reg::R2), None),
            pi(2, add(Reg::R1, Reg::R4, Reg::R4), None),
            pi(3, add(Reg::R5, Reg::R1, Reg::R9), None),
        ];
        let t = RawTrace::analyze(insts);
        assert_eq!(t.intra_producers[0], [None, None]);
        assert_eq!(t.intra_producers[1], [Some(0), None]);
        assert_eq!(t.intra_producers[2], [Some(1), Some(1)]);
        assert_eq!(t.intra_producers[3], [Some(2), None]);
        assert_eq!(t.has_intra_consumer, vec![true, true, true, false]);
    }

    #[test]
    fn critical_intra_producer_uses_feedback() {
        let mut insts = vec![
            pi(0, add(Reg::R1, Reg::R8, Reg::R9), None),
            pi(1, add(Reg::R2, Reg::R8, Reg::R9), None),
            pi(2, add(Reg::R3, Reg::R1, Reg::R2), None),
        ];
        insts[2].feedback.critical_src = Some(1); // RS2 (r2 from i1)
        let t = RawTrace::analyze(insts);
        assert_eq!(t.critical_intra_producer(2), Some(1));
        // Without feedback, falls back to RS1's producer.
        assert_eq!(t.critical_intra_producer(1), None);
    }

    #[test]
    fn branch_count_counts_ctis() {
        let br = Instruction::new(Opcode::Bne, None, Some(Reg::R1), Some(Reg::R2), 0);
        let insts = vec![
            pi(0, add(Reg::R1, Reg::R2, Reg::R3), None),
            pi(1, br, Some(true)),
            pi(2, add(Reg::R2, Reg::R1, Reg::R1), None),
            pi(3, br, Some(false)),
        ];
        let t = RawTrace::analyze(insts);
        assert_eq!(t.branch_count, 2);
    }

    #[test]
    fn line_round_trips_logical_order() {
        let insts: Vec<_> = (0..4)
            .map(|i| pi(i, add(Reg::R1, Reg::R2, Reg::R3), None))
            .collect();
        let t = RawTrace::analyze(insts);
        // Scramble: logical l -> physical slot.
        let placement = vec![12u8, 0, 7, 3];
        let line = TraceLine::from_raw(&t, &placement, 16);
        let seqs: Vec<u32> = line.logical_iter().map(|(_, s)| s.index).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        let phys: Vec<u8> = line.logical_iter().map(|(p, _)| p).collect();
        assert_eq!(phys, placement);
        assert_eq!(line.len(), 4);
    }

    #[test]
    fn branch_path_reports_conditionals_only() {
        let cond = Instruction::new(Opcode::Blt, None, Some(Reg::R1), Some(Reg::R2), 0);
        let jmp = Instruction::new(Opcode::Jmp, None, None, None, 0);
        let insts = vec![
            pi(0, cond, Some(true)),
            pi(1, jmp, Some(true)),
            pi(2, cond, Some(false)),
        ];
        let t = RawTrace::analyze(insts);
        let line = TraceLine::from_raw(&t, &TraceLine::identity_placement(3), 16);
        let path: Vec<bool> = line.branch_path().map(|(_, d)| d).collect();
        assert_eq!(path, vec![true, false]);
    }

    #[test]
    fn reorder_distance_measures_displacement() {
        let insts: Vec<_> = (0..4)
            .map(|i| pi(i, add(Reg::R1, Reg::R2, Reg::R3), None))
            .collect();
        let t = RawTrace::analyze(insts);
        let line = TraceLine::from_raw(&t, &[12u8, 0, 7, 3], 16);
        let d: Vec<u64> = line.reorder_distances().collect();
        assert_eq!(d, vec![12, 1, 5, 0]);
        // Identity placement never moves anything.
        let line = TraceLine::from_raw(&t, &TraceLine::identity_placement(4), 16);
        assert!(line.reorder_distances().all(|d| d == 0));
    }

    #[test]
    #[should_panic]
    fn non_injective_placement_panics() {
        let insts = vec![
            pi(0, add(Reg::R1, Reg::R2, Reg::R3), None),
            pi(1, add(Reg::R2, Reg::R1, Reg::R3), None),
        ];
        let t = RawTrace::analyze(insts);
        let _ = TraceLine::from_raw(&t, &[5, 5], 16);
    }

    #[test]
    fn profile_fields_flow_into_line() {
        let mut insts = vec![pi(0, add(Reg::R1, Reg::R2, Reg::R3), None)];
        insts[0].profile = ProfileFields {
            role: ChainRole::Leader,
            chain_cluster: Some(3),
        };
        let t = RawTrace::analyze(insts);
        let line = TraceLine::from_raw(&t, &[0], 16);
        let (_, slot) = line.logical_iter().next().unwrap();
        assert_eq!(slot.profile.chain_cluster, Some(3));
        assert_eq!(slot.profile.role, ChainRole::Leader);
    }
}
