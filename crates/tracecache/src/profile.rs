//! Per-instruction run-time profile fields stored in the trace cache, and
//! the execution feedback the core reports at retirement.

/// The 2-bit leader/follower value of §4.2: whether the instruction is a
/// cluster-chain leader, a follower, or neither.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChainRole {
    /// Not part of any cluster chain.
    #[default]
    None,
    /// First instruction of a cluster chain; its suggested cluster is
    /// pinned.
    Leader,
    /// Subsequent link of a chain, inheriting the leader's cluster.
    Follower,
}

impl ChainRole {
    /// True for leaders and followers.
    pub fn is_chain_member(self) -> bool {
        self != ChainRole::None
    }
}

/// The per-instruction profile stored in a trace cache line: the chain
/// cluster (2 bits) and leader/follower value (2 bits) of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileFields {
    /// Leader / follower / none.
    pub role: ChainRole,
    /// Suggested destination cluster for this chain (only meaningful for
    /// chain members).
    pub chain_cluster: Option<u8>,
}

impl ProfileFields {
    /// True if this instruction belongs to a cluster chain with a known
    /// suggested cluster.
    pub fn is_chain_member(&self) -> bool {
        self.role.is_chain_member() && self.chain_cluster.is_some()
    }
}

/// Identifies one slot of one resident trace cache line, so the feedback
/// mechanism can update profile fields in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcLocation {
    /// Unique id of the line (assigned at install).
    pub line_id: u64,
    /// Physical slot within the line.
    pub slot: u8,
}

/// What the execution core learned about one source operand's forwarding
/// producer, reported to the fill unit at the consumer's retirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProducerInfo {
    /// Producer's static PC.
    pub pc: u64,
    /// Cluster the producer executed on.
    pub cluster: u8,
    /// True if producer and consumer were fetched in the same trace.
    pub same_trace: bool,
    /// Producer's chain role at the time it forwarded.
    pub role: ChainRole,
    /// Producer's chain cluster at the time it forwarded.
    pub chain_cluster: Option<u8>,
    /// Where the producer's profile lives in the trace cache, if it was
    /// fetched from a still-identifiable line.
    pub tc_location: Option<TcLocation>,
}

/// Execution feedback for one retired instruction: which inputs were
/// data-forwarded, by whom, and which input arrived last (was *critical*).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecFeedback {
    /// Cluster the instruction executed on.
    pub executed_cluster: u8,
    /// Forwarding producer of RS1/RS2, if the operand was satisfied by
    /// data forwarding rather than the register file.
    pub src_producers: [Option<ProducerInfo>; 2],
    /// Index (0 = RS1, 1 = RS2) of the critical (last-arriving) input, if
    /// the instruction had any register inputs.
    pub critical_src: Option<u8>,
    /// True if the critical input was satisfied by data forwarding.
    pub critical_forwarded: bool,
}

impl ExecFeedback {
    /// The forwarding producer of the critical input, if the critical
    /// input was forwarded.
    pub fn critical_producer(&self) -> Option<&ProducerInfo> {
        if !self.critical_forwarded {
            return None;
        }
        self.critical_src
            .and_then(|s| self.src_producers[s as usize].as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_not_chain_member() {
        let p = ProfileFields::default();
        assert_eq!(p.role, ChainRole::None);
        assert!(!p.is_chain_member());
    }

    #[test]
    fn chain_membership_requires_cluster() {
        let p = ProfileFields {
            role: ChainRole::Leader,
            chain_cluster: None,
        };
        assert!(!p.is_chain_member());
        let p = ProfileFields {
            role: ChainRole::Leader,
            chain_cluster: Some(2),
        };
        assert!(p.is_chain_member());
    }

    #[test]
    fn critical_producer_resolution() {
        let prod = ProducerInfo {
            pc: 0x100,
            cluster: 1,
            same_trace: false,
            role: ChainRole::None,
            chain_cluster: None,
            tc_location: None,
        };
        let fb = ExecFeedback {
            executed_cluster: 0,
            src_producers: [Some(prod), None],
            critical_src: Some(0),
            critical_forwarded: true,
        };
        assert_eq!(fb.critical_producer().unwrap().pc, 0x100);

        let fb_rf = ExecFeedback {
            critical_forwarded: false,
            ..fb
        };
        assert!(fb_rf.critical_producer().is_none());
    }
}
