//! The trace cache proper.

use crate::{ProfileFields, TcLocation, TraceLine};
use std::collections::HashMap;

/// Trace cache geometry (defaults match Table 7: 2-way, 1K entries,
/// 3-cycle access, 16-instruction lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCacheConfig {
    /// Total number of lines (power-of-two multiple of `assoc`).
    pub entries: usize,
    /// Associativity.
    pub assoc: usize,
    /// Access latency in cycles (pipelined).
    pub access_latency: u64,
    /// Maximum instructions per line.
    pub line_capacity: usize,
    /// Maximum basic blocks (control transfers) per line.
    pub max_blocks: usize,
}

impl Default for TraceCacheConfig {
    fn default() -> Self {
        TraceCacheConfig {
            entries: 1024,
            assoc: 2,
            access_latency: 3,
            line_capacity: 16,
            max_blocks: 3,
        }
    }
}

/// Hit/miss statistics of the trace cache.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TraceCacheStats {
    /// Lookups that found a matching line (tag + path).
    pub hits: u64,
    /// Lookups that found no usable line.
    pub misses: u64,
    /// Lines installed.
    pub installs: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
}

#[derive(Debug)]
struct WaySlot {
    line: TraceLine,
    lru: u64,
}

/// The trace cache: a set-associative store of [`TraceLine`]s indexed by
/// start PC, with path matching against a supplied multiple-branch
/// prediction.
///
/// Lines are located by `(start_pc, conditional branch directions)`: a
/// lookup hits only if a resident line's tag matches and every recorded
/// conditional-branch direction agrees with the predictor's current
/// prediction for that branch (the fetch mechanism of Rotenberg et al.
/// that the paper builds on).
#[derive(Debug)]
pub struct TraceCache {
    config: TraceCacheConfig,
    sets: Vec<Vec<WaySlot>>,
    set_mask: u64,
    tick: u64,
    next_id: u64,
    stats: TraceCacheStats,
    /// line id -> (set, position-independent id lookup)
    resident: HashMap<u64, usize>,
}

impl TraceCache {
    /// Creates an empty trace cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two number of sets.
    pub fn new(config: TraceCacheConfig) -> Self {
        assert!(config.assoc > 0 && config.entries.is_multiple_of(config.assoc));
        let num_sets = config.entries / config.assoc;
        assert!(num_sets.is_power_of_two());
        TraceCache {
            config,
            sets: (0..num_sets).map(|_| Vec::new()).collect(),
            set_mask: num_sets as u64 - 1,
            tick: 0,
            next_id: 1,
            stats: TraceCacheStats::default(),
            resident: HashMap::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TraceCacheConfig {
        &self.config
    }

    /// Statistics so far.
    pub fn stats(&self) -> TraceCacheStats {
        self.stats
    }

    #[inline]
    fn set_of(&self, pc: u64) -> usize {
        ((pc >> 2) & self.set_mask) as usize
    }

    /// Looks up a line starting at `pc` whose recorded conditional-branch
    /// path matches `predict` (called once per conditional branch in
    /// logical order). Returns the matching line and updates LRU/stats.
    pub fn lookup(&mut self, pc: u64, mut predict: impl FnMut(u64) -> bool) -> Option<&TraceLine> {
        self.tick += 1;
        let set_idx = self.set_of(pc);
        let tick = self.tick;
        let set = &mut self.sets[set_idx];
        let pos = set.iter().position(|w| {
            w.line.start_pc == pc && w.line.branch_path().all(|(bpc, dir)| predict(bpc) == dir)
        });
        match pos {
            Some(i) => {
                set[i].lru = tick;
                self.stats.hits += 1;
                Some(&set[i].line)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Installs `line`. An existing line with the same start PC and
    /// identical conditional path is replaced in place and **keeps its
    /// line id**, so `TcLocation`s held by in-flight instructions stay
    /// valid across the rebuild (slot contents are still verified by PC
    /// at update time). Otherwise a fresh id is assigned and the set's
    /// LRU way is evicted if full. Returns the line's id.
    pub fn install(&mut self, mut line: TraceLine) -> u64 {
        self.tick += 1;
        let set_idx = self.set_of(line.start_pc);
        let new_path: Vec<(u64, bool)> = line.branch_path().collect();
        let set = &mut self.sets[set_idx];

        // Replace a same-pc same-path line in place, keeping its id.
        if let Some(i) = set.iter().position(|w| {
            w.line.start_pc == line.start_pc && w.line.branch_path().collect::<Vec<_>>() == new_path
        }) {
            let id = set[i].line.id;
            line.id = id;
            set[i] = WaySlot {
                line,
                lru: self.tick,
            };
            self.stats.installs += 1;
            return id;
        }

        let id = self.next_id;
        self.next_id += 1;
        line.id = id;

        if set.len() >= self.config.assoc {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .map(|(i, _)| i)
                .expect("set non-empty");
            let evicted = set.remove(victim);
            self.resident.remove(&evicted.line.id);
            self.stats.evictions += 1;
        }
        set.push(WaySlot {
            line,
            lru: self.tick,
        });
        self.resident.insert(id, set_idx);
        self.stats.installs += 1;
        id
    }

    /// Mutable access to the profile fields of a resident line's slot, for
    /// in-place feedback updates (leader promotion, chain propagation).
    /// Returns `None` if the line has been evicted or the slot is empty.
    pub fn profile_mut(&mut self, loc: TcLocation) -> Option<&mut ProfileFields> {
        let &set_idx = self.resident.get(&loc.line_id)?;
        let set = &mut self.sets[set_idx];
        let way = set.iter_mut().find(|w| w.line.id == loc.line_id)?;
        way.line
            .slots
            .get_mut(loc.slot as usize)?
            .as_mut()
            .map(|s| &mut s.profile)
    }

    /// Read-only access to a resident line by id (for tests/diagnostics).
    pub fn line(&self, line_id: u64) -> Option<&TraceLine> {
        let &set_idx = self.resident.get(&line_id)?;
        self.sets[set_idx]
            .iter()
            .find(|w| w.line.id == line_id)
            .map(|w| &w.line)
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.resident.len()
    }
}

impl Default for TraceCache {
    fn default() -> Self {
        TraceCache::new(TraceCacheConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecFeedback, PendingInst, RawTrace};
    use ctcp_isa::{Instruction, Opcode, Reg};

    fn mk_line(start_pc: u64, dirs: &[bool]) -> TraceLine {
        let mut insts = Vec::new();
        let mut pc = start_pc;
        for (i, &d) in dirs.iter().enumerate() {
            insts.push(PendingInst {
                seq: i as u64,
                index: i as u32,
                pc,
                inst: Instruction::new(Opcode::Bne, None, Some(Reg::R1), Some(Reg::R2), 0),
                profile: ProfileFields::default(),
                tc_loc: None,
                feedback: ExecFeedback::default(),
                taken: Some(d),
            });
            pc += 4;
        }
        if dirs.is_empty() {
            insts.push(PendingInst {
                seq: 0,
                index: 0,
                pc,
                inst: Instruction::new(Opcode::Add, Some(Reg::R1), Some(Reg::R2), None, 0),
                profile: ProfileFields::default(),
                tc_loc: None,
                feedback: ExecFeedback::default(),
                taken: None,
            });
        }
        let raw = RawTrace::analyze(insts);
        let n = raw.len();
        TraceLine::from_raw(&raw, &TraceLine::identity_placement(n), 16)
    }

    #[test]
    fn lookup_matches_tag_and_path() {
        let mut tc = TraceCache::default();
        tc.install(mk_line(0x1000, &[true, false]));
        // Matching path.
        assert!(tc
            .lookup(0x1000, |bpc| bpc == 0x1000) // predicts T then N
            .is_some());
        // Wrong path.
        assert!(tc.lookup(0x1000, |_| true).is_none());
        // Wrong pc.
        assert!(tc.lookup(0x2000, |_| true).is_none());
        assert_eq!(tc.stats().hits, 1);
        assert_eq!(tc.stats().misses, 2);
    }

    #[test]
    fn path_associativity_same_pc_two_paths() {
        let mut tc = TraceCache::default();
        tc.install(mk_line(0x1000, &[true]));
        tc.install(mk_line(0x1000, &[false]));
        assert_eq!(tc.resident_lines(), 2);
        assert!(tc.lookup(0x1000, |_| true).is_some());
        assert!(tc.lookup(0x1000, |_| false).is_some());
    }

    #[test]
    fn same_pc_same_path_replaces_and_keeps_id() {
        let mut tc = TraceCache::default();
        let id1 = tc.install(mk_line(0x1000, &[true]));
        let id2 = tc.install(mk_line(0x1000, &[true]));
        // Rebuilds keep the line id so in-flight TcLocations stay valid.
        assert_eq!(id1, id2);
        assert_eq!(tc.resident_lines(), 1);
        assert!(tc.line(id1).is_some());
        assert_eq!(tc.stats().evictions, 0);
        assert_eq!(tc.stats().installs, 2);
        // A different path gets a fresh id.
        let id3 = tc.install(mk_line(0x1000, &[false]));
        assert_ne!(id3, id1);
    }

    #[test]
    fn lru_eviction_in_a_set() {
        let mut tc = TraceCache::new(TraceCacheConfig {
            entries: 4,
            assoc: 2,
            ..TraceCacheConfig::default()
        });
        // Two sets; pcs 0x1000 and 0x1008 share set (pc>>2 & 1).
        let a = tc.install(mk_line(0x1000, &[]));
        let b = tc.install(mk_line(0x1008, &[]));
        tc.lookup(0x1000, |_| true); // refresh a
        let c = tc.install(mk_line(0x1010, &[]));
        assert!(tc.line(a).is_some());
        assert!(tc.line(b).is_none(), "b was LRU and should be evicted");
        assert!(tc.line(c).is_some());
        assert_eq!(tc.stats().evictions, 1);
    }

    #[test]
    fn profile_mut_updates_in_place() {
        let mut tc = TraceCache::default();
        let id = tc.install(mk_line(0x1000, &[true]));
        let loc = TcLocation {
            line_id: id,
            slot: 0,
        };
        {
            let p = tc.profile_mut(loc).unwrap();
            p.chain_cluster = Some(2);
            p.role = crate::ChainRole::Leader;
        }
        let line = tc.line(id).unwrap();
        let slot = line.slots[0].as_ref().unwrap();
        assert_eq!(slot.profile.chain_cluster, Some(2));
        // Empty slot and evicted line return None.
        assert!(tc
            .profile_mut(TcLocation {
                line_id: id,
                slot: 15
            })
            .is_none());
        assert!(tc
            .profile_mut(TcLocation {
                line_id: 999,
                slot: 0
            })
            .is_none());
    }
}
