//! The fill unit: trace selection and construction from the retire
//! stream.
//!
//! Trace *selection* follows the classic scheme the paper builds on
//! (Rotenberg et al., Patel et al.): a new trace begins at a fetch
//! address — either the head of a trace-cache line being rebuilt, or a
//! fetch address that missed the trace cache while the fill unit was
//! idle. This alignment is what makes constructed traces start at PCs
//! that fetch will actually request again; free-running segmentation of
//! the retire stream would precess around loops and never hit.

use crate::{PendingInst, RawTrace};

/// How the retired instruction relates to fetch-group boundaries, which
/// drives trace selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceHead {
    /// Not the first instruction of its fetch group.
    None,
    /// First instruction of a group fetched from the trace cache: the
    /// current trace ends here and a rebuild of the line begins.
    TraceCacheLine,
    /// First instruction of a group whose fetch address missed the trace
    /// cache: starts a new trace if the fill unit is idle.
    TraceCacheMiss,
}

/// Fill unit parameters (defaults: 16-instruction, 3-basic-block traces
/// and a short install latency — the paper shows latencies up to 1000
/// cycles do not materially change results).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillUnitConfig {
    /// Maximum instructions per trace.
    pub max_insts: usize,
    /// Maximum basic blocks (control transfers) per trace.
    pub max_blocks: usize,
    /// Cycles between trace completion and installation in the trace
    /// cache.
    pub latency: u64,
    /// Also terminate traces at backward taken branches (loop-back
    /// edges), aligning trace families with loop iterations. Without
    /// this, trace boundaries precess around loops and the same static
    /// instruction lands in several overlapping trace families, churning
    /// retire-time cluster assignments.
    pub end_at_backward_branch: bool,
}

impl Default for FillUnitConfig {
    fn default() -> Self {
        FillUnitConfig {
            max_insts: 16,
            max_blocks: 3,
            latency: 3,
            end_at_backward_branch: true,
        }
    }
}

/// Aggregate fill-unit counters, reported as one snapshot so consumers
/// do not stitch together individual accessors.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FillUnitStats {
    /// Traces finalised.
    pub traces_built: u64,
    /// Instructions accepted into traces (the unit idles between trace
    /// heads, so this can be less than retired instructions).
    pub insts_buffered: u64,
}

/// The fill unit buffers retiring instructions and emits finalised
/// [`RawTrace`]s. A trace ends when it holds `max_insts` instructions,
/// `max_blocks` control transfers, an indirect control transfer (whose
/// target varies), or when the retire stream crosses into a rebuilt
/// trace-cache line. Between traces the unit idles until the next trace
/// head retires.
#[derive(Debug)]
pub struct FillUnit {
    config: FillUnitConfig,
    pending: Vec<PendingInst>,
    branches: usize,
    filling: bool,
    traces_built: u64,
    insts_buffered: u64,
}

impl FillUnit {
    /// Creates an idle fill unit.
    ///
    /// # Panics
    ///
    /// Panics if `max_insts` or `max_blocks` is zero.
    pub fn new(config: FillUnitConfig) -> Self {
        assert!(config.max_insts > 0 && config.max_blocks > 0);
        FillUnit {
            config,
            pending: Vec::new(),
            branches: 0,
            filling: false,
            traces_built: 0,
            insts_buffered: 0,
        }
    }

    /// Install latency configured for this fill unit.
    pub fn latency(&self) -> u64 {
        self.config.latency
    }

    /// Number of traces finalised so far.
    pub fn traces_built(&self) -> u64 {
        self.traces_built
    }

    /// Total instructions accepted into traces so far.
    pub fn insts_buffered(&self) -> u64 {
        self.insts_buffered
    }

    /// Every fill-unit counter in one snapshot.
    pub fn stats(&self) -> FillUnitStats {
        FillUnitStats {
            traces_built: self.traces_built,
            insts_buffered: self.insts_buffered,
        }
    }

    /// Instructions waiting in the partial trace.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// True while a trace is being collected.
    pub fn is_filling(&self) -> bool {
        self.filling
    }

    /// Accepts one retired instruction with its trace-head marker;
    /// returns zero, one, or two finalised traces (a line-boundary flush
    /// plus a completion).
    pub fn push(&mut self, inst: PendingInst, head: TraceHead) -> Vec<RawTrace> {
        let mut out = Vec::new();
        match head {
            TraceHead::TraceCacheLine => {
                // Re-align: finish whatever was collecting, rebuild the
                // line from its head.
                if let Some(t) = self.finalize() {
                    out.push(t);
                }
                self.filling = true;
            }
            TraceHead::TraceCacheMiss => {
                if !self.filling {
                    self.filling = true;
                }
                // Already filling: the trace extends across the group
                // boundary.
            }
            TraceHead::None => {
                if !self.filling {
                    // Idle: not collected into any trace.
                    return out;
                }
            }
        }
        let is_cti = inst.inst.op.is_cti();
        let is_indirect = inst.inst.op.is_indirect();
        let is_backward_taken = self.config.end_at_backward_branch
            && inst.taken == Some(true)
            && inst.inst.op.is_conditional_branch()
            && ctcp_isa::Program::pc_of(inst.inst.imm as usize) <= inst.pc;
        self.insts_buffered += 1;
        self.pending.push(inst);
        if is_cti {
            self.branches += 1;
        }
        if self.pending.len() >= self.config.max_insts
            || self.branches >= self.config.max_blocks
            || is_indirect
            || is_backward_taken
        {
            if let Some(t) = self.finalize() {
                out.push(t);
            }
            self.filling = false;
        }
        out
    }

    /// Forces the partial trace out (end of simulation).
    pub fn flush(&mut self) -> Option<RawTrace> {
        let t = self.finalize();
        self.filling = false;
        t
    }

    fn finalize(&mut self) -> Option<RawTrace> {
        self.branches = 0;
        if self.pending.is_empty() {
            return None;
        }
        self.traces_built += 1;
        Some(RawTrace::analyze(std::mem::take(&mut self.pending)))
    }
}

impl Default for FillUnit {
    fn default() -> Self {
        FillUnit::new(FillUnitConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExecFeedback, ProfileFields};
    use ctcp_isa::{Instruction, Opcode, Reg};

    fn pi(seq: u64, op: Opcode, taken: Option<bool>) -> PendingInst {
        let inst = match op {
            Opcode::Add => Instruction::new(op, Some(Reg::R1), Some(Reg::R2), Some(Reg::R3), 0),
            Opcode::Jr => Instruction::new(op, None, Some(Reg::R1), None, 0),
            // Forward target so the backward-taken-branch trace
            // terminator does not fire in these tests.
            _ => Instruction::new(op, None, Some(Reg::R1), Some(Reg::R2), 500),
        };
        PendingInst {
            seq,
            index: seq as u32,
            pc: 0x1000 + 4 * seq,
            inst,
            profile: ProfileFields::default(),
            tc_loc: None,
            feedback: ExecFeedback::default(),
            taken,
        }
    }

    #[test]
    fn idle_unit_drops_non_heads() {
        let mut fu = FillUnit::default();
        assert!(fu
            .push(pi(0, Opcode::Add, None), TraceHead::None)
            .is_empty());
        assert_eq!(fu.pending_len(), 0);
        assert!(!fu.is_filling());
    }

    #[test]
    fn miss_head_starts_collection_and_capacity_ends_it() {
        let mut fu = FillUnit::default();
        assert!(fu
            .push(pi(0, Opcode::Add, None), TraceHead::TraceCacheMiss)
            .is_empty());
        assert!(fu.is_filling());
        for i in 1..15 {
            assert!(fu
                .push(pi(i, Opcode::Add, None), TraceHead::None)
                .is_empty());
        }
        let out = fu.push(pi(15, Opcode::Add, None), TraceHead::None);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 16);
        assert!(!fu.is_filling());
        assert_eq!(fu.traces_built(), 1);
    }

    #[test]
    fn trace_extends_across_miss_group_boundaries() {
        let mut fu = FillUnit::default();
        fu.push(pi(0, Opcode::Add, None), TraceHead::TraceCacheMiss);
        fu.push(pi(1, Opcode::Bne, Some(true)), TraceHead::None);
        // Next group also missed, but the unit keeps filling.
        assert!(fu
            .push(pi(2, Opcode::Add, None), TraceHead::TraceCacheMiss)
            .is_empty());
        assert_eq!(fu.pending_len(), 3);
    }

    #[test]
    fn tc_line_head_flushes_and_realigns() {
        let mut fu = FillUnit::default();
        fu.push(pi(0, Opcode::Add, None), TraceHead::TraceCacheMiss);
        fu.push(pi(1, Opcode::Add, None), TraceHead::None);
        // Crossing into a trace-cache group finalises the partial trace
        // and starts collecting the rebuilt line.
        let out = fu.push(pi(2, Opcode::Add, None), TraceHead::TraceCacheLine);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 2);
        assert!(fu.is_filling());
        assert_eq!(fu.pending_len(), 1);
    }

    #[test]
    fn three_branches_end_a_trace() {
        let mut fu = FillUnit::default();
        fu.push(pi(0, Opcode::Add, None), TraceHead::TraceCacheMiss);
        fu.push(pi(1, Opcode::Bne, Some(true)), TraceHead::None);
        fu.push(pi(2, Opcode::Bne, Some(false)), TraceHead::None);
        let out = fu.push(pi(3, Opcode::Bne, Some(true)), TraceHead::None);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].branch_count, 3);
        assert!(!fu.is_filling());
    }

    #[test]
    fn indirect_ends_a_trace() {
        let mut fu = FillUnit::default();
        fu.push(pi(0, Opcode::Add, None), TraceHead::TraceCacheMiss);
        let out = fu.push(pi(1, Opcode::Jr, Some(true)), TraceHead::None);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 2);
    }

    #[test]
    fn flush_emits_partial_trace_once() {
        let mut fu = FillUnit::default();
        fu.push(pi(0, Opcode::Add, None), TraceHead::TraceCacheMiss);
        let t = fu.flush().unwrap();
        assert_eq!(t.len(), 1);
        assert!(fu.flush().is_none());
    }

    #[test]
    fn backward_taken_branch_ends_a_trace() {
        let mut fu = FillUnit::default();
        fu.push(pi(5, Opcode::Add, None), TraceHead::TraceCacheMiss);
        // Taken conditional branch whose target (instruction 0) is behind
        // its own pc: a loop-back edge.
        let mut back = pi(6, Opcode::Bne, Some(true));
        back.inst.imm = 0;
        let out = fu.push(back, TraceHead::None);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), 2);
        assert!(!fu.is_filling());
        // The same branch not taken does not end the trace.
        let mut fu = FillUnit::default();
        fu.push(pi(5, Opcode::Add, None), TraceHead::TraceCacheMiss);
        let mut nt = pi(6, Opcode::Bne, Some(false));
        nt.inst.imm = 0;
        assert!(fu.push(nt, TraceHead::None).is_empty());
    }

    #[test]
    fn branch_count_resets_between_traces() {
        let mut fu = FillUnit::default();
        fu.push(pi(0, Opcode::Bne, Some(true)), TraceHead::TraceCacheMiss);
        fu.push(pi(1, Opcode::Bne, Some(true)), TraceHead::None);
        let out = fu.push(pi(2, Opcode::Bne, Some(true)), TraceHead::None);
        assert_eq!(out.len(), 1);
        // New trace: the branch counter starts fresh.
        fu.push(pi(3, Opcode::Bne, Some(true)), TraceHead::TraceCacheMiss);
        assert!(fu.is_filling());
        assert_eq!(fu.pending_len(), 1);
    }
}
