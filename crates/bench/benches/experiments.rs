//! Self-timed wrappers around the paper-reproduction experiments: one
//! case per table/figure, at reduced instruction counts so `cargo bench`
//! terminates in minutes. Use the `repro` binary for full-length runs.

use ctcp_bench::{run_experiment, ExperimentId, RunOptions};
use std::time::Instant;

fn quick_opts() -> RunOptions {
    RunOptions {
        max_insts: 8_000,
        suite_insts: 4_000,
        ..RunOptions::default()
    }
}

fn main() {
    for id in ExperimentId::ALL {
        let t0 = Instant::now();
        let len = run_experiment(id, quick_opts()).len();
        println!(
            "{:<16} {:>10.3} ms  ({len} rendered bytes)",
            id.to_string(),
            t0.elapsed().as_secs_f64() * 1e3
        );
    }
}
