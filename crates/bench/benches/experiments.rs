//! Criterion wrappers around the paper-reproduction experiments: one
//! bench per table/figure, at reduced instruction counts so `cargo bench`
//! terminates in minutes. Use the `repro` binary for full-length runs.

use criterion::{criterion_group, criterion_main, Criterion};
use ctcp_bench::{run_experiment, ExperimentId, RunOptions};

fn quick_opts() -> RunOptions {
    RunOptions {
        max_insts: 8_000,
        suite_insts: 4_000,
    }
}

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_experiments");
    group.sample_size(10);
    for id in ExperimentId::ALL {
        group.bench_function(id.to_string(), |b| {
            b.iter(|| run_experiment(id, quick_opts()).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
