//! Self-timed microbenchmarks of the simulator's hot components.
//!
//! The workspace builds offline, so this is a plain `harness = false`
//! binary rather than a Criterion bench: each case runs a warmup pass
//! and then reports the best-of-N wall time. Run with `cargo bench
//! --bench microbench`.

use ctcp_frontend::{BranchPredictor, HybridPredictor};
use ctcp_isa::Executor;
use ctcp_memory::{AccessKind, DataMemory, MemoryConfig};
use ctcp_sim::{SimConfig, Simulation, Strategy};
use ctcp_tracecache::{TraceCache, TraceCacheConfig};
use ctcp_workload::Benchmark;
use std::time::Instant;

/// Runs `f` `reps` times (after one warmup) and prints the fastest rep.
fn bench(name: &str, reps: u32, mut f: impl FnMut() -> u64) {
    let mut sink = f(); // warmup; keep the result alive
    let mut best = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        sink = sink.wrapping_add(f());
        let dt = t0.elapsed();
        best = Some(best.map_or(dt, |b: std::time::Duration| b.min(dt)));
    }
    println!(
        "{name:<32} {:>10.3} ms  (best of {reps}, sink {})",
        best.unwrap().as_secs_f64() * 1e3,
        sink & 1
    );
}

fn main() {
    let program = Benchmark::by_name("gzip").unwrap().program();

    bench("executor_10k_insts", 10, || {
        let ex = Executor::new(&program);
        ex.take(10_000).count() as u64
    });

    bench("hybrid_predictor_10k_updates", 10, || {
        let mut p = HybridPredictor::default();
        let mut agree = 0u64;
        for i in 0..10_000u64 {
            let pc = 0x1000 + (i % 64) * 4;
            let taken = (i / (1 + pc % 7)) % 2 == 0;
            if p.predict(pc) == taken {
                agree += 1;
            }
            p.update(pc, taken);
        }
        agree
    });

    bench("dcache_10k_accesses", 10, || {
        let mut m = DataMemory::new(MemoryConfig::default());
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc = acc.wrapping_add(
                m.access(AccessKind::Load, (i * 72) % (1 << 18), i)
                    .ready_cycle,
            );
        }
        acc
    });

    bench("trace_cache_lookup_miss", 10, || {
        let mut tc = TraceCache::new(TraceCacheConfig::default());
        let mut hits = 0u64;
        for i in 0..100_000u64 {
            if tc.lookup(0x1000 + (i % 4096) * 4, |_| true).is_some() {
                hits += 1;
            }
        }
        hits
    });

    for strategy in [Strategy::Baseline, Strategy::Fdrt { pinning: true }] {
        bench(&format!("simulate_20k[{}]", strategy.name()), 3, || {
            let cfg = SimConfig {
                strategy,
                max_insts: 20_000,
                ..SimConfig::default()
            };
            Simulation::builder(&program)
                .config(cfg)
                .build()
                .unwrap()
                .run()
                .cycles
        });
    }
}
