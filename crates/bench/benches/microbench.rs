//! Self-timed microbenchmarks of the simulator's hot components.
//!
//! The workspace builds offline, so this is a plain `harness = false`
//! binary rather than a Criterion bench: each case runs a warmup pass
//! and then reports the best-of-N wall time. Run with `cargo bench
//! --bench microbench`.

use ctcp_core::{Engine, EngineConfig, FetchedInst, SteeringMode, TickResult};
use ctcp_frontend::{BranchPredictor, HybridPredictor};
use ctcp_isa::{Executor, Instruction, Opcode, Reg};
use ctcp_memory::{AccessKind, DataMemory, MemoryConfig};
use ctcp_sim::{SimConfig, Simulation, Strategy};
use ctcp_tracecache::{ProfileFields, TraceCache, TraceCacheConfig};
use ctcp_workload::Benchmark;
use std::time::Instant;

/// Runs `f` `reps` times (after one warmup) and prints the fastest rep.
fn bench(name: &str, reps: u32, mut f: impl FnMut() -> u64) {
    let mut sink = f(); // warmup; keep the result alive
    let mut best = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        sink = sink.wrapping_add(f());
        let dt = t0.elapsed();
        best = Some(best.map_or(dt, |b: std::time::Duration| b.min(dt)));
    }
    println!(
        "{name:<32} {:>10.3} ms  (best of {reps}, sink {})",
        best.unwrap().as_secs_f64() * 1e3,
        sink & 1
    );
}

fn fetched(seq: u64, group: u64, slot: usize, inst: Instruction) -> FetchedInst {
    FetchedInst {
        seq,
        pc: 0x1000 + seq * 4,
        index: seq as u32,
        inst,
        mem_addr: None,
        taken: None,
        slot: slot as u8,
        group,
        from_tc: false,
        tc_loc: None,
        profile: ProfileFields::default(),
        mispredicted: false,
    }
}

/// Times `cycles` engine ticks under a synthetic fetch stream, once per
/// scheduler, so the legacy scan and the event-driven paths can be
/// compared on the same wakeup/completion pattern.
fn sched_bench(name: &str, cycles: u64, make: impl Fn(usize) -> Instruction + Copy) {
    for legacy in [true, false] {
        let tag = if legacy { "legacy" } else { "event" };
        bench(&format!("{name}[{tag}]"), 5, || {
            let mut engine = Engine::new(EngineConfig::default(), SteeringMode::Slot);
            engine.set_legacy_scheduler(legacy);
            let mut out = TickResult::default();
            let (mut seq, mut group) = (0u64, 0u64);
            let mut retired = 0u64;
            for now in 0..cycles {
                if engine.can_accept(16) {
                    let g: [FetchedInst; 16] =
                        std::array::from_fn(|i| fetched(seq + i as u64, group, i, make(i)));
                    engine.accept(&g, now);
                    seq += 16;
                    group += 1;
                }
                engine.tick_into(now, &mut out);
                retired += out.retired.len() as u64;
            }
            retired
        });
    }
}

fn main() {
    let program = Benchmark::by_name("gzip").unwrap().program();

    bench("executor_10k_insts", 10, || {
        let ex = Executor::new(&program);
        ex.take(10_000).count() as u64
    });

    bench("hybrid_predictor_10k_updates", 10, || {
        let mut p = HybridPredictor::default();
        let mut agree = 0u64;
        for i in 0..10_000u64 {
            let pc = 0x1000 + (i % 64) * 4;
            let taken = (i / (1 + pc % 7)) % 2 == 0;
            if p.predict(pc) == taken {
                agree += 1;
            }
            p.update(pc, taken);
        }
        agree
    });

    bench("dcache_10k_accesses", 10, || {
        let mut m = DataMemory::new(MemoryConfig::default());
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            acc = acc.wrapping_add(
                m.access(AccessKind::Load, (i * 72) % (1 << 18), i)
                    .ready_cycle,
            );
        }
        acc
    });

    bench("trace_cache_lookup_miss", 10, || {
        let mut tc = TraceCache::new(TraceCacheConfig::default());
        let mut hits = 0u64;
        for i in 0..100_000u64 {
            if tc.lookup(0x1000 + (i % 4096) * 4, |_| true).is_some() {
                hits += 1;
            }
        }
        hits
    });

    // Scheduler microbenches: the same synthetic fetch stream driven
    // through the legacy scan-per-cycle scheduler and the event-driven
    // one. Each case isolates one of the costs the rewrite attacks.

    // ROB pressure: long-latency producers keep the window full, so the
    // legacy per-cycle completion/select scans walk ~128 entries while
    // the indexed path touches only the instructions that change state.
    sched_bench("sched_rob_pressure_20k", 20_000, |i| {
        if i == 0 {
            Instruction::new(Opcode::Div, Some(Reg::int(0)), Some(Reg::int(1)), None, 0)
        } else {
            Instruction::new(
                Opcode::Add,
                Some(Reg::int((i % 8) as u8)),
                Some(Reg::int(0)),
                None,
                0,
            )
        }
    });

    // Wakeup fan-out: fifteen consumers per group all wait on one div,
    // stressing the completion broadcast (legacy: finishers x ROB x
    // sources; event: one wakeup-list drain).
    sched_bench("sched_wakeup_fanout_20k", 20_000, |i| {
        if i == 0 {
            Instruction::new(Opcode::Div, Some(Reg::int(7)), Some(Reg::int(1)), None, 0)
        } else {
            Instruction::new(
                Opcode::Add,
                Some(Reg::int((i % 4) as u8)),
                Some(Reg::int(7)),
                Some(Reg::int(7)),
                0,
            )
        }
    });

    // Completion pop: independent ops with mixed latencies spread
    // completions across cycles, stressing find-the-finishers (legacy:
    // full ROB scan per cycle; event: pop the wheel's current slot).
    sched_bench("sched_completion_pop_20k", 20_000, |i| {
        let op = match i % 3 {
            0 => Opcode::Add,
            1 => Opcode::Mul,
            _ => Opcode::Div,
        };
        Instruction::new(op, Some(Reg::int((i % 8) as u8)), None, None, 0)
    });

    for strategy in [Strategy::Baseline, Strategy::Fdrt { pinning: true }] {
        for legacy in [true, false] {
            let tag = if legacy { "legacy" } else { "event" };
            bench(
                &format!("simulate_20k[{}/{tag}]", strategy.name()),
                3,
                || {
                    let cfg = SimConfig {
                        strategy,
                        max_insts: 20_000,
                        ..SimConfig::default()
                    };
                    Simulation::builder(&program)
                        .config(cfg)
                        .legacy_scheduler(legacy)
                        .build()
                        .unwrap()
                        .run()
                        .cycles
                },
            );
        }
    }
}
