//! Criterion microbenchmarks of the simulator's hot components.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ctcp_frontend::{BranchPredictor, HybridPredictor};
use ctcp_isa::Executor;
use ctcp_memory::{AccessKind, DataMemory, MemoryConfig};
use ctcp_sim::{SimConfig, Simulation, Strategy};
use ctcp_tracecache::{TraceCache, TraceCacheConfig};
use ctcp_workload::Benchmark;

fn bench_functional_executor(c: &mut Criterion) {
    let program = Benchmark::by_name("gzip").unwrap().program();
    c.bench_function("executor_10k_insts", |b| {
        b.iter(|| {
            let ex = Executor::new(&program);
            ex.take(10_000).count()
        })
    });
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("hybrid_predictor_10k_updates", |b| {
        b.iter_batched(
            HybridPredictor::default,
            |mut p| {
                for i in 0..10_000u64 {
                    let pc = 0x1000 + (i % 64) * 4;
                    let taken = (i / (1 + pc % 7)) % 2 == 0;
                    let _ = p.predict(pc);
                    p.update(pc, taken);
                }
                p
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_data_memory(c: &mut Criterion) {
    c.bench_function("dcache_10k_accesses", |b| {
        b.iter_batched(
            || DataMemory::new(MemoryConfig::default()),
            |mut m| {
                for i in 0..10_000u64 {
                    m.access(AccessKind::Load, (i * 72) % (1 << 18), i);
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_trace_cache(c: &mut Criterion) {
    c.bench_function("trace_cache_lookup_miss", |b| {
        let mut tc = TraceCache::new(TraceCacheConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            tc.lookup(0x1000 + (i % 4096) * 4, |_| true).is_some()
        })
    });
}

fn bench_simulation(c: &mut Criterion) {
    let program = Benchmark::by_name("gzip").unwrap().program();
    let mut group = c.benchmark_group("simulate_20k_insts");
    group.sample_size(10);
    for strategy in [Strategy::Baseline, Strategy::Fdrt { pinning: true }] {
        group.bench_function(strategy.name(), |b| {
            b.iter(|| {
                let cfg = SimConfig {
                    strategy,
                    max_insts: 20_000,
                    ..SimConfig::default()
                };
                Simulation::new(&program, cfg).run().cycles
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_functional_executor,
    bench_predictor,
    bench_data_memory,
    bench_trace_cache,
    bench_simulation
);
criterion_main!(benches);
