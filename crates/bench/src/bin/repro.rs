//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro <id>... [--insts N] [--suite-insts N]
//! repro all
//! ids: table1 table2 table3 fig4 fig5 fig6 fig7 table8 table9 table10
//!      fig8 fig9 ablation
//! ```

use ctcp_bench::{run_experiment, ExperimentId, RunOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <id>|all [--insts N] [--suite-insts N]");
        eprintln!("ids: {}", ids_help());
        std::process::exit(2);
    }
    let mut opts = RunOptions::default();
    let mut ids: Vec<ExperimentId> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--insts" => {
                i += 1;
                opts.max_insts = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bail("--insts needs a number"));
            }
            "--suite-insts" => {
                i += 1;
                opts.suite_insts = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bail("--suite-insts needs a number"));
            }
            "all" => ids.extend(ExperimentId::ALL),
            other => match other.parse::<ExperimentId>() {
                Ok(id) => ids.push(id),
                Err(e) => bail(&e),
            },
        }
        i += 1;
    }
    for id in ids {
        let started = std::time::Instant::now();
        let out = run_experiment(id, opts);
        println!("{out}");
        eprintln!("[{id} took {:.1}s]\n", started.elapsed().as_secs_f64());
    }
}

fn ids_help() -> String {
    ExperimentId::ALL
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn bail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
