//! Regenerates the paper's tables and figures.
//!
//! ```text
//! repro <id>... [--insts N] [--suite-insts N] [--jobs N] [--no-cache]
//!               [--metrics-out FILE]
//! repro all
//! ids: table1 table2 table3 fig4 fig5 fig6 fig7 table8 table9 table10
//!      fig8 fig9 ablation fill-latency tc-size trace-select
//! ```
//!
//! All experiments share one harness: cells are simulated by `--jobs`
//! workers (default: all cores) and memoized in `target/ctcp-results/`
//! unless `--no-cache` is given, so identical cells across experiments
//! and across invocations run only once. Tables go to stdout; progress
//! and timing go to stderr. Exits non-zero if any experiment fails.
//! `--metrics-out FILE` appends one JSONL telemetry-metrics line per
//! freshly simulated cell (store hits emit nothing).

use ctcp_bench::{run_experiment_in, ExperimentId, RunOptions};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    let mut opts = RunOptions {
        cache: true,
        ..RunOptions::default()
    };
    let mut ids: Vec<ExperimentId> = Vec::new();
    let mut metrics_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--insts" => {
                i += 1;
                opts.max_insts = number(&args, i, "--insts");
            }
            "--suite-insts" => {
                i += 1;
                opts.suite_insts = number(&args, i, "--suite-insts");
            }
            "--jobs" => {
                i += 1;
                opts.jobs = number(&args, i, "--jobs") as usize;
            }
            "--no-cache" => opts.cache = false,
            "--metrics-out" => {
                i += 1;
                metrics_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| bail("--metrics-out needs a path")),
                );
            }
            "-h" | "--help" => {
                usage();
                return;
            }
            flag if flag.starts_with('-') => bail(&format!("unknown flag: {flag}")),
            "all" => ids.extend(ExperimentId::ALL),
            other => match other.parse::<ExperimentId>() {
                Ok(id) => ids.push(id),
                Err(e) => bail(&e),
            },
        }
        i += 1;
    }
    if ids.is_empty() {
        bail("no experiment ids given");
    }
    // The same id listed twice (or `all` plus an explicit id) runs once,
    // keeping its first position.
    let mut seen = Vec::new();
    ids.retain(|id| {
        let new = !seen.contains(id);
        seen.push(*id);
        new
    });

    let mut harness = opts.harness();
    if let Some(path) = metrics_out {
        harness = harness.metrics_out(path);
    }
    let mut failures = 0u32;
    for id in ids {
        let started = std::time::Instant::now();
        match catch_unwind(AssertUnwindSafe(|| {
            run_experiment_in(id, opts, &mut harness)
        })) {
            Ok(out) => {
                println!("{out}");
                eprintln!("[{id} took {:.1}s]\n", started.elapsed().as_secs_f64());
            }
            Err(panic) => {
                failures += 1;
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                eprintln!(
                    "[{id} FAILED after {:.1}s: {msg}]\n",
                    started.elapsed().as_secs_f64()
                );
            }
        }
    }
    if let Some(s) = harness.store_stats() {
        eprintln!(
            "[store: {} entries, {} hits, {} misses, {} written]",
            s.entries, s.hits, s.misses, s.puts
        );
    }
    if failures > 0 {
        eprintln!("error: {failures} experiment(s) failed");
        std::process::exit(1);
    }
}

fn number(args: &[String], i: usize, flag: &str) -> u64 {
    args.get(i)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| bail(&format!("{flag} needs a number")))
}

fn usage() {
    eprintln!(
        "usage: repro <id>|all [--insts N] [--suite-insts N] [--jobs N] [--no-cache] \
         [--metrics-out FILE]"
    );
    eprintln!("ids: {}", ids_help());
}

fn ids_help() -> String {
    ExperimentId::ALL
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn bail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
